#!/usr/bin/env python
"""Performance-regression gate over pytest-benchmark JSON reports.

Compares the current run (``BENCH_pr.json``, produced by the CI bench-smoke
job) against a committed baseline and fails when any shared benchmark got
more than ``--max-regression`` slower.

Raw wall-clock means are not comparable across runner generations, so by
default every benchmark is **normalized by a calibration benchmark** from
the same report (``--calibration``, a pure-Python micro benchmark): the
gate then compares machine-speed-invariant ratios, catching "this code path
got slower relative to the interpreter" rather than "this runner is slower
than the one that minted the baseline".  ``--absolute`` disables the
normalization for same-machine comparisons.

Usage::

    python scripts/check_bench.py \
        --baseline benchmarks/BENCH_baseline.json \
        --current BENCH_pr.json \
        --max-regression 0.20

Exit status: 0 when every shared benchmark is within the threshold,
1 on regression, 2 on malformed/incomparable inputs.

Refreshing the committed baseline after an intentional perf change::

    BENCH_SMOKE=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_micro_substrates.py benchmarks/test_ablation_batching.py \
        benchmarks/test_ablation_fusion.py benchmarks/test_ablation_planner.py \
        benchmarks/test_ablation_warm_submit.py \
        -q --benchmark-json=benchmarks/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple


def load_means(path: Path) -> Tuple[Dict[str, float], Dict[str, bool]]:
    """Name -> mean seconds and name -> gateable, from a benchmark report.

    A benchmark is *gateable* when its mean is statistically meaningful:
    several timed rounds, or a single round long enough (>= 1 s) that
    scheduler jitter is amortized.  One-shot sub-second cells (the pedantic
    workload grids at smoke scale) are compared informationally only --
    their round-to-round noise exceeds any sane regression threshold.
    """
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_bench: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    means: Dict[str, float] = {}
    gateable: Dict[str, bool] = {}
    for bench in report.get("benchmarks", []):
        stats = bench.get("stats", {})
        mean = stats.get("mean")
        if not mean:
            continue
        name = bench["name"]
        means[name] = float(mean)
        gateable[name] = stats.get("rounds", 1) > 1 or float(mean) >= 1.0
    if not means:
        print(f"check_bench: no benchmarks with stats in {path}", file=sys.stderr)
        sys.exit(2)
    return means, gateable


def calibration_mean(means: Dict[str, float], needle: str, path: str) -> float:
    matches = sorted(name for name in means if needle in name)
    if not matches:
        print(
            f"check_bench: calibration benchmark {needle!r} not found in {path}",
            file=sys.stderr,
        )
        sys.exit(2)
    return means[matches[0]]


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    gateable: Dict[str, bool],
    max_regression: float,
) -> Tuple[List[str], List[str]]:
    """Rows for every shared benchmark plus the names that regressed."""
    rows: List[str] = []
    regressions: List[str] = []
    for name in sorted(set(baseline) & set(current)):
        change = current[name] / baseline[name] - 1.0
        if not gateable.get(name, True):
            status = "info (one-shot, not gated)"
        elif change > max_regression:
            status = "REGRESSION"
            regressions.append(name)
        elif change < -max_regression:
            status = "improved"
        else:
            status = "ok"
        rows.append(f"  {name:<55} {change:+8.1%}  {status}")
    return rows, regressions


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail CI when benchmarks regress beyond a threshold."
    )
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed slowdown fraction (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--calibration",
        default="tracked_queue",
        help="substring of the benchmark used to normalize for machine "
        "speed (default: the pure-Python tracked-queue micro benchmark)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw means without calibration (same-machine runs)",
    )
    args = parser.parse_args(argv)

    baseline, base_gateable = load_means(args.baseline)
    current, cur_gateable = load_means(args.current)
    # Gate only entries meaningful in BOTH runs.
    gateable = {
        name: base_gateable.get(name, True) and cur_gateable.get(name, True)
        for name in set(baseline) | set(current)
    }
    if not args.absolute:
        base_cal = calibration_mean(baseline, args.calibration, str(args.baseline))
        cur_cal = calibration_mean(current, args.calibration, str(args.current))
        baseline = {name: mean / base_cal for name, mean in baseline.items()}
        current = {name: mean / cur_cal for name, mean in current.items()}
        print(
            f"calibrated by {args.calibration!r}: baseline unit "
            f"{base_cal * 1e6:.1f}us, current unit {cur_cal * 1e6:.1f}us"
        )

    shared = set(baseline) & set(current)
    only_base = sorted(set(baseline) - shared)
    only_cur = sorted(set(current) - shared)
    if only_base:
        print(f"note: {len(only_base)} baseline benchmark(s) missing from current run")
    if only_cur:
        print(f"note: {len(only_cur)} new benchmark(s) without a baseline")
    if not shared:
        print("check_bench: no comparable benchmarks", file=sys.stderr)
        return 2

    rows, regressions = compare(baseline, current, gateable, args.max_regression)
    print(f"benchmark comparison (threshold {args.max_regression:.0%}):")
    for row in rows:
        print(row)
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.max_regression:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: {len(rows)} benchmark(s) within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
