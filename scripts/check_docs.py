#!/usr/bin/env python
"""Docs-site gate: relative links resolve, capability matrix matches code.

Two checks over ``docs/*.md`` and ``README.md``:

1. **Link resolution** -- every relative markdown link target (after
   stripping any ``#fragment``) must exist on disk.  External links
   (``http(s)://``, ``mailto:``) and same-page anchors are skipped.
2. **Capability-matrix drift** -- the table between the
   ``capability-matrix`` markers in ``docs/capabilities.md`` must be
   byte-identical to what the live mapping registry renders (same column
   definitions as ``repro list``, via :data:`repro.cli._CAPABILITY_COLUMNS`).
   Registering a new mapping or flipping a capability bit without
   regenerating the docs fails CI.

Usage::

    python scripts/check_docs.py            # check, exit 1 on any failure
    python scripts/check_docs.py --write    # regenerate the matrix block

Exit status: 0 clean, 1 on broken links or matrix drift, 2 when the
markers or files the checks need are missing.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
CAPABILITIES_DOC = DOCS_DIR / "capabilities.md"
MATRIX_BEGIN = "<!-- capability-matrix:begin -->"
MATRIX_END = "<!-- capability-matrix:end -->"

#: ``[text](target)`` -- target up to the first ``)`` or whitespace, which
#: is all the docs tree uses (no titles, no nested parens in URLs).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _import_repro() -> None:
    """Make ``repro`` importable from a plain checkout (no install)."""
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(REPO_ROOT / "src"))


def doc_files() -> List[Path]:
    """The markdown files under the gate: the docs tree plus the README."""
    return sorted(DOCS_DIR.glob("*.md")) + [REPO_ROOT / "README.md"]


def check_links(path: Path) -> List[str]:
    """Broken relative links in one file, as printable error strings."""
    errors: List[str] = []
    for target in LINK_RE.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue  # same-page anchor
        if not (path.parent / file_part).resolve().exists():
            rel = path.relative_to(REPO_ROOT)
            errors.append(f"{rel}: broken link -> {target}")
    return errors


def render_matrix() -> str:
    """The capability matrix as a markdown table, from the live registry."""
    _import_repro()
    from repro.cli import _CAPABILITY_COLUMNS
    from repro.mappings import capability_table

    headers = [header for header, _ in _CAPABILITY_COLUMNS] + ["description"]
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for name, caps in capability_table():
        cells = [render(name, caps) for _, render in _CAPABILITY_COLUMNS]
        cells[0] = f"`{cells[0]}`"
        cells.append(caps.description)
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def check_matrix(write: bool) -> List[str]:
    """Compare (or with ``write`` rewrite) the generated matrix block."""
    if not CAPABILITIES_DOC.exists():
        print(f"check_docs: {CAPABILITIES_DOC} does not exist", file=sys.stderr)
        sys.exit(2)
    text = CAPABILITIES_DOC.read_text(encoding="utf-8")
    if MATRIX_BEGIN not in text or MATRIX_END not in text:
        print(
            f"check_docs: {CAPABILITIES_DOC.name} is missing the "
            f"{MATRIX_BEGIN} / {MATRIX_END} markers",
            file=sys.stderr,
        )
        sys.exit(2)
    head, rest = text.split(MATRIX_BEGIN, 1)
    _stale, tail = rest.split(MATRIX_END, 1)
    expected = f"{MATRIX_BEGIN}\n{render_matrix()}\n{MATRIX_END}"
    if text == head + expected + tail:
        return []
    if write:
        CAPABILITIES_DOC.write_text(head + expected + tail, encoding="utf-8")
        print(f"regenerated capability matrix in {CAPABILITIES_DOC.name}")
        return []
    return [
        f"docs/{CAPABILITIES_DOC.name}: capability matrix drifted from the "
        f"mapping registry (run `python scripts/check_docs.py --write`)"
    ]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Check docs links and capability-matrix freshness."
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="regenerate the capability matrix block instead of diffing it",
    )
    args = parser.parse_args(argv)

    errors: List[str] = []
    files = doc_files()
    for path in files:
        if not path.exists():
            print(f"check_docs: {path} does not exist", file=sys.stderr)
            return 2
        errors.extend(check_links(path))
    errors.extend(check_matrix(write=args.write))

    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"\nFAIL: {len(errors)} docs problem(s)", file=sys.stderr)
        return 1
    print(f"OK: {len(files)} file(s) checked, links resolve, matrix is fresh")
    return 0


if __name__ == "__main__":
    sys.exit(main())
