"""A scalable clock.

All synthetic workloads in this repository are expressed in *nominal* seconds
-- the durations reported in the paper (e.g. the ``beta(2, 5)`` sleeps of the
"heavy" galaxy workload range over 0..1 s).  Running the full evaluation grid
at nominal speed would take hours, so every component that consumes time goes
through a :class:`Clock`, which multiplies nominal durations by a
``time_scale`` factor before actually sleeping.

Scheduling decisions (queue polling intervals, auto-scaler thresholds, retry
timeouts) are expressed in nominal seconds too and scaled by the same clock,
so the *relative* dynamics -- which is what the paper's figures report -- are
preserved at any scale.

The clock also serves as the single source of wall-time measurements so that
tests can substitute a fake clock if needed.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Monotonic clock with a nominal-to-real time scale.

    Parameters
    ----------
    time_scale:
        Multiplier applied to nominal durations before sleeping.  ``1.0``
        replays workloads in real time; ``0.01`` makes a nominal second last
        10 ms.  Must be positive.

    Notes
    -----
    ``now()`` returns *real* monotonic seconds; use :meth:`to_nominal` to
    convert measured real durations back into nominal units when comparing
    against paper-scale numbers.

    **Sub-resolution sleeps.**  ``time.sleep`` cannot honour sub-millisecond
    durations (the OS floor is ~0.5-1 ms), so naively sleeping a 50 us
    scaled latency would cost 10-20x its nominal share and drown the very
    dynamics being measured.  Instead, each thread accumulates
    sub-resolution sleeps as *debt* and flushes them in one batch once the
    debt crosses :data:`SLEEP_RESOLUTION` -- total slept time is preserved,
    per-op floor inflation is not.
    """

    __slots__ = ("time_scale", "_debt")

    #: Real durations below this are accumulated as per-thread debt rather
    #: than slept individually (matches the practical time.sleep floor).
    SLEEP_RESOLUTION = 0.0012

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale!r}")
        self.time_scale = float(time_scale)
        self._debt = threading.local()

    def now(self) -> float:
        """Real monotonic timestamp in seconds."""
        return time.monotonic()

    def sleep(self, nominal_seconds: float) -> None:
        """Sleep for ``nominal_seconds * time_scale`` real seconds.

        Sub-resolution durations are batched per thread, and the OS
        overshoot of each actual ``time.sleep`` (Linux timer slack makes a
        1.3 ms request take ~2.2 ms) is carried as *negative* debt, so every
        thread's cumulative slept time converges to the requested total.
        Without this correction all scaled workloads would silently inflate
        by 50-100%.
        """
        if nominal_seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {nominal_seconds!r}")
        real = nominal_seconds * self.time_scale
        if real <= 0:
            return
        debt = getattr(self._debt, "value", 0.0) + real
        if debt >= self.SLEEP_RESOLUTION:
            started = time.monotonic()
            time.sleep(debt)
            debt -= time.monotonic() - started
        self._debt.value = debt

    def to_real(self, nominal_seconds: float) -> float:
        """Convert a nominal duration to real seconds."""
        return nominal_seconds * self.time_scale

    def to_nominal(self, real_seconds: float) -> float:
        """Convert a measured real duration back to nominal seconds."""
        return real_seconds / self.time_scale

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(time_scale={self.time_scale})"
