"""Execution substrate for the workflow engine.

This package provides the low-level machinery every mapping is built on:

- :mod:`repro.runtime.clock` -- a scalable clock so that workloads expressed
  in "paper seconds" can be replayed in milliseconds without changing any
  scheduling logic.
- :mod:`repro.runtime.cores` -- a token-semaphore *core limiter* that emulates
  a machine with a fixed number of CPU cores, reproducing oversubscription
  effects (the paper's 8-core *cloud* platform running 16 processes).
- :mod:`repro.runtime.queues` -- closeable/tracked queues with poison-pill
  support and in-flight task accounting used by the termination strategies.
- :mod:`repro.runtime.workers` -- a ``multiprocessing.Pool``-style thread pool
  (``apply_async`` + completion callbacks) used by the auto-scaler, plus
  dedicated-worker helpers used by the static mappings.
- :mod:`repro.runtime.accounting` -- per-worker activity meters implementing
  the paper's *total process time* metric (sum of active process durations).

The paper runs workers as OS processes; we run them as threads (see
DESIGN.md, substitution table).  All workloads in this repository are
sleep/IO-dominated, so threads preserve the queueing and contention dynamics
while keeping the suite portable and fast.
"""

from repro.runtime.accounting import ActivityMeter
from repro.runtime.clock import Clock
from repro.runtime.cores import CoreLimiter
from repro.runtime.queues import POISON_PILL, CloseableQueue, TrackedQueue
from repro.runtime.workers import AsyncResult, WorkerPool

__all__ = [
    "ActivityMeter",
    "AsyncResult",
    "Clock",
    "CloseableQueue",
    "CoreLimiter",
    "POISON_PILL",
    "TrackedQueue",
    "WorkerPool",
]
