"""Core limiter: emulate a machine with a fixed number of CPU cores.

The paper evaluates three platforms -- *server* (16 cores), *cloud* (8
cores) and *HPC* (64 cores) -- while running up to 16 (or 64) workflow
processes.  When processes outnumber cores, the OS time-slices them and
runtime degrades (visible as the dip at 12/16 processes in the paper's
cloud figures).

We reproduce that effect with a counting semaphore holding one token per
emulated core.  A worker must hold a token while it "computes"; sleeps that
model *waiting* (network, disk, blocking reads) do not consume a core.  This
mirrors how a real OS scheduler treats CPU-bound vs. blocked processes.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.runtime.clock import Clock


class CoreLimiter:
    """Token semaphore with one token per emulated core.

    Parameters
    ----------
    cores:
        Number of emulated cores, or ``None`` for an unconstrained machine
        (useful in unit tests).
    """

    def __init__(self, cores: Optional[int] = None) -> None:
        if cores is not None and cores < 1:
            raise ValueError(f"cores must be >= 1 or None, got {cores!r}")
        self.cores = cores
        self._sem = threading.Semaphore(cores) if cores is not None else None
        self._held = 0
        self._held_lock = threading.Lock()

    @property
    def in_use(self) -> int:
        """Number of core tokens currently held (approximate, for metrics)."""
        return self._held

    @contextmanager
    def core(self) -> Iterator[None]:
        """Hold one core token for the duration of the ``with`` block."""
        if self._sem is None:
            yield
            return
        self._sem.acquire()
        with self._held_lock:
            self._held += 1
        try:
            yield
        finally:
            with self._held_lock:
                self._held -= 1
            self._sem.release()

    def compute(self, clock: Clock, nominal_seconds: float) -> None:
        """Burn ``nominal_seconds`` of CPU time on one emulated core.

        The calling worker blocks until a core token is available, then
        holds it while the (scaled) duration elapses.  This is the primitive
        all synthetic CPU-bound PE workloads are built on.
        """
        with self.core():
            clock.sleep(nominal_seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoreLimiter(cores={self.cores})"
