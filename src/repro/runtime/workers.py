"""Worker pool with ``multiprocessing.Pool``-compatible dispatch.

Algorithm 1 of the paper drives workers through ``Pool.apply_async(func,
args, callback=done)``.  :class:`WorkerPool` reproduces that interface on
threads: a fixed set of pool threads pulls submitted calls from an internal
dispatch queue, executes them, resolves an :class:`AsyncResult` and fires the
completion callback.  The auto-scaler's ``start``/``done`` bookkeeping (the
``active_count`` guard) sits on top of this, exactly as in the paper.

The pool is also used directly by the dynamic mappings without an
auto-scaler, in which case one long-running worker session is submitted per
process.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, List, Optional, Tuple


class AsyncResult:
    """Handle for a submitted call, mirroring ``multiprocessing.pool.AsyncResult``."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def ready(self) -> bool:
        return self._event.is_set()

    def successful(self) -> bool:
        if not self._event.is_set():
            raise ValueError("result is not ready")
        return self._error is None

    def wait(self, timeout: Optional[float] = None) -> None:
        self._event.wait(timeout=timeout)

    def get(self, timeout: Optional[float] = None) -> Any:
        """Block for the result; re-raises the worker's exception if any."""
        if not self._event.wait(timeout=timeout):
            raise TimeoutError("AsyncResult.get timed out")
        if self._error is not None:
            raise self._error
        return self._value


class CallbackError(RuntimeError):
    """A completion callback raised; chained from the original exception."""


_STOP = object()


class WorkerPool:
    """Fixed-size thread pool with ``apply_async`` semantics.

    Parameters
    ----------
    size:
        Number of pool workers (the paper's ``max_pool_size``).
    name:
        Prefix for worker thread names (useful in stack dumps).
    """

    def __init__(self, size: int, name: str = "pool") -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size!r}")
        self.size = size
        self.name = name
        self._dispatch: "List[Tuple[Callable[..., Any], tuple, Optional[Callable[[Any], None]], AsyncResult]]" = []
        self._dispatch_lock = threading.Condition()
        self._closed = False
        self._threads: List[threading.Thread] = []
        self._errors: List[BaseException] = []
        self._errors_lock = threading.Lock()
        for index in range(size):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"{name}-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    # -- submission ---------------------------------------------------------
    def apply_async(
        self,
        func: Callable[..., Any],
        args: tuple = (),
        callback: Optional[Callable[[Any], None]] = None,
    ) -> AsyncResult:
        """Schedule ``func(*args)`` on a pool worker.

        ``callback`` fires (on the worker thread) with the return value after
        successful completion -- this is the hook the auto-scaler's ``done``
        procedure uses to decrement ``active_count``.  If ``func`` raises,
        the exception is stored on the :class:`AsyncResult` *and* the
        callback still fires with ``None`` so active-count accounting cannot
        leak on worker errors.
        """
        result = AsyncResult()
        with self._dispatch_lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed pool")
            self._dispatch.append((func, args, callback, result))
            self._dispatch_lock.notify()
        return result

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Stop accepting work and shut pool threads down after the backlog."""
        with self._dispatch_lock:
            if self._closed:
                return
            self._closed = True
            self._dispatch_lock.notify_all()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for pool threads to exit (``close`` must be called first)."""
        if not self._closed:
            raise RuntimeError("join() before close()")
        deadline = None if timeout is None else (timeout / max(len(self._threads), 1))
        for thread in self._threads:
            thread.join(timeout=deadline)

    @property
    def errors(self) -> List[BaseException]:
        """Exceptions raised by submitted calls (for post-run assertions)."""
        with self._errors_lock:
            return list(self._errors)

    # -- internals ----------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._dispatch_lock:
                while not self._dispatch and not self._closed:
                    self._dispatch_lock.wait()
                if self._dispatch:
                    func, args, callback, result = self._dispatch.pop(0)
                elif self._closed:
                    return
                else:  # pragma: no cover - spurious wakeup
                    continue
            try:
                value = func(*args)
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                with self._errors_lock:
                    self._errors.append(exc)
                result._reject(exc)
                traceback.print_exc()
                if callback is not None:
                    # The result already carries func's error; a callback
                    # failure here is only recorded.
                    self._fire_callback(callback, None)
            else:
                if callback is not None:
                    cb_exc = self._fire_callback(callback, value)
                    if cb_exc is not None:
                        # The callback is part of the completion contract
                        # (the auto-scaler's ``done`` bookkeeping runs
                        # there): if it raises, the submission did not
                        # complete cleanly.  Reject the result so ``get()``
                        # surfaces the failure -- otherwise it is lost to
                        # the pool thread, and a never-resolved result
                        # would hang its waiters.
                        try:
                            raise CallbackError(
                                "completion callback raised after the call succeeded"
                            ) from cb_exc
                        except CallbackError as wrapped:
                            result._reject(wrapped)
                        continue
                result._resolve(value)

    def _fire_callback(
        self, callback: Callable[[Any], None], value: Any
    ) -> Optional[BaseException]:
        """Run a completion callback; returns the exception it raised, if any."""
        try:
            callback(value)
        except BaseException as exc:  # noqa: BLE001 - callback boundary
            with self._errors_lock:
                self._errors.append(exc)
            traceback.print_exc()
            return exc
        return None
