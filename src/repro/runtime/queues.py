"""Queues used by the mappings.

Two queue flavours are provided:

- :class:`CloseableQueue` -- a thin wrapper over :class:`queue.Queue` with
  poison-pill close semantics, used for the port-to-port channels of the
  static ``multi`` mapping.
- :class:`TrackedQueue` -- a global task queue with *outstanding-work*
  accounting.  A task is outstanding from the moment it is put until the
  worker that consumed it calls :meth:`TrackedQueue.mark_done` (having
  already enqueued any child tasks).  ``outstanding == 0`` therefore proves
  no further work can ever appear, which is the safe termination condition
  the paper's retry + poison-pill strategy (Section 3.2.3) approximates.

Both flavours also count puts/gets so the monitoring framework (queue size
for the ``dyn_auto_multi`` auto-scaling strategy, Figure 13) can observe them
without touching internals.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Optional


class _PoisonPill:
    """Sentinel broadcast on queues to accelerate worker termination."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<POISON_PILL>"


#: Module-level singleton; identity-compared by workers.
POISON_PILL = _PoisonPill()


class Empty(Exception):
    """Raised by non-blocking/timed gets when no item is available."""


class CloseableQueue:
    """FIFO queue with poison-pill close, for port-to-port channels.

    ``close(n)`` enqueues ``n`` poison pills so that ``n`` consumers each
    observe end-of-stream exactly once.  Counted-termination logic (waiting
    for one pill per upstream producer instance) lives in the mappings.
    """

    def __init__(self, maxsize: int = 0) -> None:
        self._q: "queue.Queue[Any]" = queue.Queue(maxsize=maxsize)
        self._close_lock = threading.Lock()
        self._closed = False

    def put(self, item: Any) -> None:
        self._q.put(item)

    def get(self, timeout: Optional[float] = None) -> Any:
        """Blocking get; raises :class:`Empty` on timeout."""
        try:
            if timeout is None:
                return self._q.get()
            return self._q.get(timeout=timeout)
        except queue.Empty:
            raise Empty() from None

    def get_nowait(self) -> Any:
        try:
            return self._q.get_nowait()
        except queue.Empty:
            raise Empty() from None

    def qsize(self) -> int:
        return self._q.qsize()

    def empty(self) -> bool:
        return self._q.empty()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, consumers: int = 1) -> None:
        """Signal end-of-stream to ``consumers`` readers.  Idempotent.

        Only the first call broadcasts pills: re-closing (e.g. an error
        path unwinding after a clean shutdown already closed the channel)
        must not enqueue ``consumers`` more pills, which counted-termination
        consumers downstream would misread as extra finished producers.
        """
        if consumers < 0:
            raise ValueError("consumers must be >= 0")
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for _ in range(consumers):
            self._q.put(POISON_PILL)


class TrackedQueue:
    """Global task queue with outstanding-work accounting.

    Used by the dynamic mappings: workers ``get`` a task, process it (which
    may ``put`` child tasks), then call :meth:`mark_done`.  The queue counts
    *outstanding* work items -- tasks that have been put but whose processing
    has not completed.  When ``outstanding`` drops to zero the workflow is
    provably drained, because a completed task graph can no longer grow.

    The paper's native dynamic termination merely checks queue emptiness,
    which races with a worker that is about to enqueue children (the
    "extreme cases" of Section 3.2.3).  The outstanding counter closes that
    race; the retry/poison-pill strategy is layered on top of it in
    :mod:`repro.mappings.termination`.
    """

    def __init__(self, maxsize: int = 0) -> None:
        self._q: "queue.Queue[Any]" = queue.Queue(maxsize=maxsize)
        self._lock = threading.Lock()
        self._outstanding = 0
        self._total_put = 0
        self._total_got = 0
        self._drained = threading.Event()

    # -- producer side -----------------------------------------------------
    def put(self, item: Any) -> None:
        if item is POISON_PILL:
            # Pills are control messages, not work; bypass accounting.
            self._q.put(item)
            return
        with self._lock:
            self._outstanding += 1
            self._total_put += 1
            self._drained.clear()
        self._q.put(item)

    def put_pill(self, count: int = 1) -> None:
        """Broadcast ``count`` poison pills (control messages, not work)."""
        for _ in range(count):
            self._q.put(POISON_PILL)

    # -- consumer side -----------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Any:
        try:
            if timeout is None:
                item = self._q.get()
            else:
                item = self._q.get(timeout=timeout)
        except queue.Empty:
            raise Empty() from None
        if item is not POISON_PILL:
            with self._lock:
                self._total_got += 1
        return item

    def mark_done(self) -> None:
        """Declare the most recently got task fully processed.

        Must be called exactly once per non-pill item returned by
        :meth:`get`, *after* any child tasks have been put.
        """
        with self._lock:
            if self._outstanding <= 0:
                raise RuntimeError("mark_done called more times than tasks were got")
            self._outstanding -= 1
            if self._outstanding == 0:
                self._drained.set()

    # -- monitoring --------------------------------------------------------
    def qsize(self) -> int:
        return self._q.qsize()

    def empty(self) -> bool:
        return self._q.empty()

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def total_put(self) -> int:
        return self._total_put

    @property
    def total_got(self) -> int:
        return self._total_got

    def is_drained(self) -> bool:
        """True when every task ever put has been fully processed."""
        with self._lock:
            return self._outstanding == 0

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until drained (or timeout); returns drained status."""
        with self._lock:
            if self._outstanding == 0:
                return True
        return self._drained.wait(timeout=timeout)
