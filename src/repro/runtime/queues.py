"""Queues and batched-transport primitives used by the mappings.

Two queue flavours are provided:

- :class:`CloseableQueue` -- a thin wrapper over :class:`queue.Queue` with
  poison-pill close semantics, used for the port-to-port channels of the
  static ``multi`` mapping.
- :class:`TrackedQueue` -- a global task queue with *outstanding-work*
  accounting.  A task is outstanding from the moment it is put until the
  worker that consumed it calls :meth:`TrackedQueue.mark_done` (having
  already enqueued any child tasks).  ``outstanding == 0`` therefore proves
  no further work can ever appear, which is the safe termination condition
  the paper's retry + poison-pill strategy (Section 3.2.3) approximates.

Both flavours also count puts/gets so the monitoring framework (queue size
for the ``dyn_auto_multi`` auto-scaling strategy, Figure 13) can observe them
without touching internals.

Batched transport
-----------------
Shipping every tuple as its own queue/stream operation makes the per-tuple
enactment overhead (lock handoffs, round trips, wakeups) the dominant cost
of fine-grained streams.  :class:`Batch` is the transport envelope that
amortizes it: ``k`` tuples travel as one queue item / one Redis command,
and batch-aware worker loops iterate the envelope without re-entering the
dispatch machinery per tuple.  :class:`BatchingBuffer` accumulates tuples
on the producer side and flushes on either trigger of the classic pair:

- **size** -- ``batch_size`` tuples are buffered (a full envelope), or
- **linger** -- the oldest buffered tuple has waited ``linger`` seconds
  (bounded staleness for trickle-rate producers).

Both queue flavours understand envelopes natively: a :class:`Batch` put on
a :class:`TrackedQueue` accounts one outstanding unit *per tuple*, so the
drain proof stays exact at any batch size, and :meth:`CloseableQueue.close`
flushes every attached buffer before broadcasting pills, so a
linger-buffered tail tuple can never be dropped at shutdown.

``batch_size=1`` (the default everywhere) bypasses the envelope entirely --
single tuples travel bare, exactly as before batching existed.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Iterable, Iterator, List, Optional, Union


class _PoisonPill:
    """Sentinel broadcast on queues to accelerate worker termination."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<POISON_PILL>"


#: Module-level singleton; identity-compared by workers.
POISON_PILL = _PoisonPill()


class Empty(Exception):
    """Raised by non-blocking/timed gets when no item is available."""


class Batch:
    """Transport envelope carrying several tuples as one queue/stream item.

    Deliberately minimal: a ``Batch`` is *transport*, not semantics.  The
    tuples inside are exactly what would otherwise have been shipped one by
    one, in the same order; consumers iterate the envelope and feed each
    tuple through the unchanged dispatch machinery.
    """

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Any]) -> None:
        self.items = list(items)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.items)

    def __repr__(self) -> str:
        return f"Batch({len(self.items)} items)"


def batch_items(item: Any) -> List[Any]:
    """The tuples carried by ``item``: its contents for a :class:`Batch`,
    the item itself (as a singleton list) otherwise."""
    if isinstance(item, Batch):
        return item.items
    return [item]


def batch_len(item: Any) -> int:
    """How many tuples ``item`` carries (1 for a bare tuple)."""
    if isinstance(item, Batch):
        return len(item.items)
    return 1


def chunked(items: List[Any], size: int) -> Iterator[List[Any]]:
    """Split ``items`` into consecutive runs of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    for start in range(0, len(items), size):
        yield items[start : start + size]


def as_envelope(items: List[Any]) -> Any:
    """The transport form of ``items``: bare for one tuple, else a Batch.

    Single tuples always travel unwrapped so the ``batch_size=1``
    configuration is byte-identical to pre-batching transport (and so
    consumers never pay envelope overhead for unbatchable traffic).
    """
    if len(items) == 1:
        return items[0]
    return Batch(items)


class BatchingBuffer:
    """Producer-side tuple accumulator with size- and linger-triggered flush.

    Parameters
    ----------
    sink:
        Where flushed envelopes go: a callable taking one transport item
        (a bare tuple or a :class:`Batch`).
    batch_size:
        Flush as soon as this many tuples are buffered.  ``1`` makes the
        buffer a transparent pass-through (every ``add`` forwards
        immediately, no envelope).
    linger:
        Maximum *real* seconds the oldest buffered tuple may wait before a
        flush is forced.  ``0`` disables the linger trigger (size-only).
        The check runs on every :meth:`add` and on :meth:`poll` -- this is
        a cooperative buffer, there is no background flusher thread, so
        owners must :meth:`flush` at natural barriers (end of stream,
        before termination markers).  :meth:`CloseableQueue.close` does
        this automatically for attached buffers.
    now:
        Clock used for the linger age (defaults to ``time.monotonic``).

    A buffer is intentionally **not** thread-safe: each producer owns its
    buffers, exactly as each producer owns its client connection in the
    Redis mappings.
    """

    def __init__(
        self,
        sink: Union[Callable[[Any], Any], "CloseableQueue"],
        batch_size: int = 1,
        linger: float = 0.0,
        now: Optional[Callable[[], float]] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if linger < 0:
            raise ValueError(f"linger must be >= 0, got {linger}")
        if isinstance(sink, CloseableQueue):
            queue_sink = sink
            sink.attach_buffer(self)
            self._sink: Callable[[Any], Any] = queue_sink.put
        else:
            self._sink = sink
        self.batch_size = batch_size
        self.linger = linger
        self._now = now if now is not None else time.monotonic
        self._items: List[Any] = []
        self._oldest: float = 0.0
        #: Envelopes flushed so far (monitoring).
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def pending(self) -> int:
        """Tuples currently buffered (0 right after a flush)."""
        return len(self._items)

    def _expired(self) -> bool:
        return (
            self.linger > 0
            and bool(self._items)
            and (self._now() - self._oldest) >= self.linger
        )

    def add(self, item: Any) -> bool:
        """Buffer one tuple; returns True when this call flushed."""
        if self.batch_size <= 1:
            self._sink(item)
            self.flushes += 1
            return True
        if not self._items:
            self._oldest = self._now()
        self._items.append(item)
        if len(self._items) >= self.batch_size or self._expired():
            self.flush()
            return True
        return False

    def poll(self) -> bool:
        """Flush if the linger deadline passed; returns True when flushed.

        For producers with idle periods: call between ``add`` bursts so a
        buffered tail does not wait past ``linger`` for a companion tuple
        that may never come.
        """
        if self._expired():
            self.flush()
            return True
        return False

    def flush(self) -> bool:
        """Emit everything buffered as one envelope; True if anything went."""
        if not self._items:
            return False
        items, self._items = self._items, []
        self._sink(as_envelope(items))
        self.flushes += 1
        return True


class CloseableQueue:
    """FIFO queue with poison-pill close, for port-to-port channels.

    ``close(n)`` enqueues ``n`` poison pills so that ``n`` consumers each
    observe end-of-stream exactly once.  Counted-termination logic (waiting
    for one pill per upstream producer instance) lives in the mappings.

    Batched producers should create their buffer via :meth:`buffer` (or
    attach an external one with :meth:`attach_buffer`): attached buffers
    are flushed by :meth:`close` *before* the pills go out, so end-of-stream
    can never overtake a linger-buffered tail tuple.
    """

    def __init__(self, maxsize: int = 0) -> None:
        self._q: "queue.Queue[Any]" = queue.Queue(maxsize=maxsize)
        self._close_lock = threading.Lock()
        self._closed = False
        self._buffers: List["BatchingBuffer"] = []

    def put(self, item: Any) -> None:
        self._q.put(item)

    def get(self, timeout: Optional[float] = None) -> Any:
        """Blocking get; raises :class:`Empty` on timeout."""
        try:
            if timeout is None:
                return self._q.get()
            return self._q.get(timeout=timeout)
        except queue.Empty:
            raise Empty() from None

    def get_nowait(self) -> Any:
        try:
            return self._q.get_nowait()
        except queue.Empty:
            raise Empty() from None

    def qsize(self) -> int:
        return self._q.qsize()

    def empty(self) -> bool:
        return self._q.empty()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- batching ----------------------------------------------------------
    def buffer(
        self,
        batch_size: int = 1,
        linger: float = 0.0,
        now: Optional[Callable[[], float]] = None,
    ) -> "BatchingBuffer":
        """A producer-side :class:`BatchingBuffer` feeding this queue.

        The buffer is attached, so :meth:`close` flushes it first.
        """
        return BatchingBuffer(self, batch_size=batch_size, linger=linger, now=now)

    def attach_buffer(self, buffer: "BatchingBuffer") -> None:
        """Register a buffer to be flushed by :meth:`close`."""
        with self._close_lock:
            self._buffers.append(buffer)

    def close(self, consumers: int = 1) -> None:
        """Signal end-of-stream to ``consumers`` readers.  Idempotent.

        Attached batching buffers are flushed before the pills are
        broadcast: a linger-buffered tail tuple must land ahead of
        end-of-stream, or counted-termination consumers would stop reading
        with data still in flight (and silently drop it).

        Only the first call broadcasts pills: re-closing (e.g. an error
        path unwinding after a clean shutdown already closed the channel)
        must not enqueue ``consumers`` more pills, which counted-termination
        consumers downstream would misread as extra finished producers.
        """
        if consumers < 0:
            raise ValueError("consumers must be >= 0")
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            buffers = list(self._buffers)
        for buffer in buffers:
            buffer.flush()
        for _ in range(consumers):
            self._q.put(POISON_PILL)


class TrackedQueue:
    """Global task queue with outstanding-work accounting.

    Used by the dynamic mappings: workers ``get`` a task, process it (which
    may ``put`` child tasks), then call :meth:`mark_done`.  The queue counts
    *outstanding* work items -- tasks that have been put but whose processing
    has not completed.  When ``outstanding`` drops to zero the workflow is
    provably drained, because a completed task graph can no longer grow.

    The paper's native dynamic termination merely checks queue emptiness,
    which races with a worker that is about to enqueue children (the
    "extreme cases" of Section 3.2.3).  The outstanding counter closes that
    race; the retry/poison-pill strategy is layered on top of it in
    :mod:`repro.mappings.termination`.
    """

    def __init__(self, maxsize: int = 0) -> None:
        self._q: "queue.Queue[Any]" = queue.Queue(maxsize=maxsize)
        self._lock = threading.Lock()
        self._outstanding = 0
        self._pending_tasks = 0
        self._total_put = 0
        self._total_got = 0
        self._drained = threading.Event()

    # -- producer side -----------------------------------------------------
    def put(self, item: Any) -> None:
        """Enqueue a task or a :class:`Batch` of tasks.

        A batch is one queue item but ``len(batch)`` outstanding work
        units: the drain proof counts *tuples*, not envelopes, so batching
        the transport cannot weaken the termination condition.
        """
        if item is POISON_PILL:
            # Pills are control messages, not work; bypass accounting.
            self._q.put(item)
            return
        count = batch_len(item)
        with self._lock:
            self._outstanding += count
            self._pending_tasks += count
            self._total_put += count
            self._drained.clear()
        self._q.put(item)

    def put_pill(self, count: int = 1) -> None:
        """Broadcast ``count`` poison pills (control messages, not work)."""
        for _ in range(count):
            self._q.put(POISON_PILL)

    # -- consumer side -----------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Any:
        try:
            if timeout is None:
                item = self._q.get()
            else:
                item = self._q.get(timeout=timeout)
        except queue.Empty:
            raise Empty() from None
        if item is not POISON_PILL:
            count = batch_len(item)
            with self._lock:
                self._total_got += count
                self._pending_tasks -= count
        return item

    def mark_done(self, count: int = 1) -> None:
        """Declare ``count`` consumed tasks fully processed.

        Must be called exactly once per non-pill *tuple* returned by
        :meth:`get` (a :class:`Batch` item carries several), *after* any
        child tasks have been put.  Batch consumers may settle tuple by
        tuple or once per envelope with ``count=len(batch)``.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        with self._lock:
            if self._outstanding < count:
                raise RuntimeError("mark_done called more times than tasks were got")
            self._outstanding -= count
            if self._outstanding == 0:
                self._drained.set()

    # -- monitoring --------------------------------------------------------
    def qsize(self) -> int:
        return self._q.qsize()

    @property
    def pending_tasks(self) -> int:
        """Tuples currently enqueued (not yet got), at tuple granularity.

        The backlog signal for auto-scaling under batched transport:
        ``qsize`` counts queue *items*, which undercounts the backlog by
        the batch factor once envelopes are in play, and pills inflate it.
        """
        with self._lock:
            return self._pending_tasks

    def empty(self) -> bool:
        return self._q.empty()

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def total_put(self) -> int:
        return self._total_put

    @property
    def total_got(self) -> int:
        return self._total_got

    def is_drained(self) -> bool:
        """True when every task ever put has been fully processed."""
        with self._lock:
            return self._outstanding == 0

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until drained (or timeout); returns drained status."""
        with self._lock:
            if self._outstanding == 0:
                return True
        return self._drained.wait(timeout=timeout)
