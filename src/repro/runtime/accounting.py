"""Per-worker activity accounting: the *total process time* metric.

The paper evaluates every mapping on two metrics (Section 5.1.2):

- **runtime** -- real-world execution time of the whole workflow, and
- **total process time** -- "all active process durations, reflecting
  overall efficiency".

A statically mapped process is *active* from launch to termination even when
it is merely polling an empty queue, so for ``multi``/``dyn_multi`` the
process time is roughly ``processes x runtime``.  The auto-scaling mappings
transition surplus processes into an *idle* standby state that does not
accumulate process time -- that difference is exactly what Tables 1-3
quantify.

:class:`ActivityMeter` records active intervals per worker.  Mappings bracket
each worker's active phases with :meth:`ActivityMeter.activate` /
:meth:`ActivityMeter.deactivate` (or the :meth:`ActivityMeter.active`
context manager) and read the aggregate at the end of the run.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator

from repro.runtime.clock import Clock


class ActivityMeter:
    """Thread-safe accumulator of per-worker active durations."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._accumulated: Dict[str, float] = {}
        self._open_since: Dict[str, float] = {}

    def activate(self, worker_id: str) -> None:
        """Mark ``worker_id`` active; no-op if already active."""
        now = self._clock.now()
        with self._lock:
            self._open_since.setdefault(worker_id, now)

    def deactivate(self, worker_id: str) -> None:
        """Mark ``worker_id`` idle, folding the open interval into the total."""
        now = self._clock.now()
        with self._lock:
            started = self._open_since.pop(worker_id, None)
            if started is not None:
                self._accumulated[worker_id] = (
                    self._accumulated.get(worker_id, 0.0) + now - started
                )

    @contextmanager
    def active(self, worker_id: str) -> Iterator[None]:
        """Context manager bracketing one active phase of a worker."""
        self.activate(worker_id)
        try:
            yield
        finally:
            self.deactivate(worker_id)

    def close(self) -> None:
        """Fold any still-open intervals (call once at end of run)."""
        with self._lock:
            now = self._clock.now()
            for worker_id, started in list(self._open_since.items()):
                self._accumulated[worker_id] = (
                    self._accumulated.get(worker_id, 0.0) + now - started
                )
            self._open_since.clear()

    def total(self) -> float:
        """Total process time (real seconds) across all workers so far."""
        with self._lock:
            now = self._clock.now()
            open_time = sum(now - started for started in self._open_since.values())
            return sum(self._accumulated.values()) + open_time

    def per_worker(self) -> Dict[str, float]:
        """Snapshot of accumulated active time per worker (closed intervals)."""
        with self._lock:
            now = self._clock.now()
            snapshot = dict(self._accumulated)
            for worker_id, started in self._open_since.items():
                snapshot[worker_id] = snapshot.get(worker_id, 0.0) + now - started
            return snapshot

    @property
    def active_workers(self) -> int:
        """Number of workers currently in the active state."""
        with self._lock:
            return len(self._open_since)
