"""Job handles for streaming enactment sessions.

:meth:`repro.engine.Engine.submit` starts enactment immediately and returns
a :class:`Job` -- the long-lived handle of one workflow run on a (possibly
warm) deployment:

- **incremental ingestion** -- :meth:`Job.send` pushes more tuples into a
  live source PE, :meth:`Job.close_input` signals end-of-stream;
- **streaming consumption** -- :meth:`Job.results` yields
  ``("<pe>.<port>", value)`` pairs as the collector receives them, before
  the run completes; :meth:`Job.wait` blocks for the final
  :class:`~repro.metrics.result.RunResult` (today's ``run()`` contract);
- **lifecycle control** -- :meth:`Job.cancel`, a ``deadline`` passed at
  submit time, and :attr:`Job.state` (:class:`JobState`).

On mappings declaring ``Capabilities.streaming`` the workflow runs while
input is still open; on other mappings the job *buffers* ingestion and
enacts once the input closes (results still stream out as produced).  The
handle itself is mapping-agnostic: the enactment side wires the three
callbacks (``send``/``close``/``cancel``) and drives the state machine
through the ``_mark_*``/``_finish*`` methods.
"""

from __future__ import annotations

import enum
import queue
import threading
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.metrics.result import RunResult


class JobState(enum.Enum):
    """Lifecycle states of a :class:`Job`.

    ``PENDING -> RUNNING -> DRAINING -> DONE`` is the happy path: a job is
    *pending* until its enactment actually starts (buffered jobs stay
    pending until :meth:`Job.close_input`), *running* while input is still
    open, *draining* once input closed but work remains, *done* when the
    final :class:`~repro.metrics.result.RunResult` is available.  ``FAILED``
    and ``CANCELLED`` are the terminal error states; a deadline expiry
    cancels the job.
    """

    PENDING = "pending"
    RUNNING = "running"
    DRAINING = "draining"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States from which no further transition happens.
TERMINAL_STATES = frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED})


class JobCancelledError(RuntimeError):
    """Raised by :meth:`Job.wait`/:meth:`Job.results` on a cancelled job."""


#: Sentinel closing the streaming results channel.
_END = object()


class Job:
    """Handle of one submitted workflow enactment.

    Jobs are created by :meth:`repro.mappings.base.Mapping.submit` (usually
    via :meth:`repro.engine.Engine.submit`); user code only consumes the
    public API below.  All methods are thread-safe; :meth:`results` is a
    single-consumer stream.
    """

    def __init__(self, mapping: str, workflow: str, streaming: bool) -> None:
        #: Registry name of the enacting mapping.
        self.mapping = mapping
        #: Name of the submitted workflow graph.
        self.workflow = workflow
        #: True when the mapping runs the full streaming path
        #: (``Capabilities.streaming``); False for buffered fallback.
        self.streaming = streaming
        self._lock = threading.Lock()
        self._state = JobState.PENDING
        self._input_closed = False
        self._terminal = threading.Event()
        self._results_q: "queue.Queue[Any]" = queue.Queue()
        self._result: Optional[RunResult] = None
        self._error: Optional[BaseException] = None
        self._cancel_reason: Optional[str] = None
        # Wired by the enactment side before the job is handed out.
        self._send_fn: Optional[Callable[[Any, Any], None]] = None
        self._close_fn: Optional[Callable[[], None]] = None
        self._cancel_fn: Optional[Callable[[], None]] = None
        self._deadline_timer: Optional[threading.Timer] = None
        self._terminal_hooks: List[Callable[["Job"], None]] = []
        self._first_result_hook: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------- inspection
    @property
    def state(self) -> JobState:
        """The current :class:`JobState` (thread-safe snapshot)."""
        with self._lock:
            return self._state

    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self._terminal.is_set()

    @property
    def result(self) -> Optional[RunResult]:
        """The final result if the job completed successfully, else None."""
        with self._lock:
            return self._result

    def __repr__(self) -> str:
        return (
            f"Job({self.workflow!r} on {self.mapping!r}, "
            f"{self.state.value}, streaming={self.streaming})"
        )

    # -------------------------------------------------------------- ingestion
    def send(self, pe_or_port: Any, tuples: Any) -> None:
        """Feed more input to a live source PE.

        Parameters
        ----------
        pe_or_port:
            A source PE (by name, PE object, or ``"<pe>.<port>"`` string
            targeting a named input port).
        tuples:
            An iterable of data items (or full input mappings); a single
            non-iterable value is not accepted -- wrap it in a list.

        On streaming mappings the tuples enter the running workflow
        immediately; on buffered mappings they are queued until
        :meth:`close_input` starts the enactment.  Raises ``RuntimeError``
        after :meth:`close_input`, and :class:`JobCancelledError` on a
        cancelled job.
        """
        with self._lock:
            if self._state is JobState.CANCELLED:
                raise JobCancelledError(self._cancel_message())
            if self._state in TERMINAL_STATES or self._input_closed:
                raise RuntimeError(
                    f"cannot send to job in state {self._state.value!r}: "
                    f"input is closed"
                )
            send = self._send_fn
        assert send is not None, "job was handed out before wiring"
        send(pe_or_port, tuples)

    def close_input(self) -> None:
        """Signal end-of-stream: no further :meth:`send` calls will come.

        Idempotent.  A running streaming job moves to ``DRAINING``; a
        pending buffered job starts enacting its buffered input.
        """
        with self._lock:
            if self._input_closed or self._state in TERMINAL_STATES:
                return
            self._input_closed = True
            if self._state is JobState.RUNNING:
                self._state = JobState.DRAINING
            close = self._close_fn
        if close is not None:
            close()

    # ------------------------------------------------------------ consumption
    def results(self, timeout: Optional[float] = None) -> Iterator[Tuple[str, Any]]:
        """Yield ``("<pe>.<port>", value)`` pairs as the run produces them.

        The stream ends when the job completes; a failed job re-raises its
        error after the last yielded pair, a cancelled one raises
        :class:`JobCancelledError`.  ``timeout`` bounds the wait for *each*
        pair (raising ``TimeoutError`` when exceeded).  Single consumer:
        each emitted pair is yielded exactly once across all iterators
        (the end-of-stream marker itself is sticky, so a late or second
        iterator terminates immediately instead of hanging).
        """
        while True:
            try:
                item = self._results_q.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"no result within {timeout}s (job is {self.state.value})"
                ) from None
            if item is _END:
                # Re-put the sentinel: it marks the channel closed for
                # every current and future iterator, not just this one.
                self._results_q.put(_END)
                break
            yield item
        self._raise_if_failed()

    def wait(self, timeout: Optional[float] = None) -> RunResult:
        """Close the input and block until the final result.

        This is the one-shot contract of ``Engine.run()``: waiting implies
        no further input is coming, so the input is closed first.  Raises
        ``TimeoutError`` if the job is not terminal within ``timeout``,
        re-raises the enactment error on failure, and raises
        :class:`JobCancelledError` on a cancelled job (after teardown has
        completed -- a returned ``wait()`` means no workers remain).
        """
        self.close_input()
        if not self._terminal.wait(timeout=timeout):
            raise TimeoutError(
                f"job {self.workflow!r} still {self.state.value} after {timeout}s"
            )
        self._raise_if_failed()
        result = self.result
        assert result is not None
        return result

    # --------------------------------------------------------------- control
    def cancel(self, reason: Optional[str] = None) -> bool:
        """Request cancellation; returns False if the job was already terminal.

        The state flips to ``CANCELLED`` immediately (further ``send`` calls
        raise) while workers unwind in the background; :meth:`wait` /
        :meth:`results` return only after teardown finished, so a joined
        cancelled job leaks no workers.
        """
        with self._lock:
            if self._state in TERMINAL_STATES:
                return False
            self._state = JobState.CANCELLED
            self._cancel_reason = reason
            cancel = self._cancel_fn
        if cancel is not None:
            cancel()
        return True

    # ----------------------------------------------- enactment-side plumbing
    def _wire(
        self,
        send: Callable[[Any, Any], None],
        close: Callable[[], None],
        cancel: Callable[[], None],
    ) -> None:
        """Install the enactment-side callbacks (before hand-out)."""
        self._send_fn = send
        self._close_fn = close
        self._cancel_fn = cancel

    def _arm_deadline(self, deadline: Optional[float]) -> None:
        """Cancel the job ``deadline`` real seconds from now (if set).

        The value was validated by ``Mapping.submit`` *before* any wiring
        (raising here would orphan the already-running driver thread).
        """
        if deadline is None:
            return
        timer = threading.Timer(
            deadline, lambda: self.cancel(reason=f"deadline of {deadline}s exceeded")
        )
        timer.daemon = True
        self._deadline_timer = timer
        timer.start()

    def _on_terminal(self, hook: Callable[["Job"], None]) -> None:
        """Register a hook fired once when the job reaches a terminal state."""
        with self._lock:
            if not self._terminal.is_set():
                self._terminal_hooks.append(hook)
                return
        hook(self)

    def _set_first_result_hook(self, hook: Callable[[], None]) -> None:
        """Register a hook fired once, just before the first emitted result.

        The scheduler's submit->first-result latency probe.  Installing it
        after results already flowed fires it on the *next* emission (close
        enough for a probe armed at submit time, before any enactment).
        """
        with self._lock:
            self._first_result_hook = hook

    def _emit(self, key: str, value: Any) -> None:
        """Collector tap target: one streamed result pair."""
        with self._lock:
            hook, self._first_result_hook = self._first_result_hook, None
        if hook is not None:
            hook()
        self._results_q.put((key, value))

    def _mark_running(self) -> None:
        with self._lock:
            if self._state is JobState.PENDING:
                self._state = (
                    JobState.DRAINING if self._input_closed else JobState.RUNNING
                )

    def _finish(self, result: RunResult) -> None:
        self._resolve(JobState.DONE, result=result)

    def _fail(self, error: BaseException) -> None:
        self._resolve(JobState.FAILED, error=error)

    def _finish_cancelled(self) -> None:
        self._resolve(JobState.CANCELLED)

    def _resolve(
        self,
        state: JobState,
        result: Optional[RunResult] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            if self._terminal.is_set():  # pragma: no cover - double resolve
                return
            # A cancel that already flipped the state wins over the driver's
            # outcome: the user asked for cancellation, the partial result
            # is discarded.
            if self._state is not JobState.CANCELLED:
                self._state = state
                self._result = result
                self._error = error
            self._input_closed = True
            hooks, self._terminal_hooks = self._terminal_hooks, []
            timer = self._deadline_timer
            self._terminal.set()
        if timer is not None:
            timer.cancel()
        self._results_q.put(_END)
        for hook in hooks:
            hook(self)

    def _cancel_message(self) -> str:
        base = f"job {self.workflow!r} was cancelled"
        if self._cancel_reason:
            return f"{base}: {self._cancel_reason}"
        return base

    def _raise_if_failed(self) -> None:
        with self._lock:
            state, error = self._state, self._error
        if state is JobState.FAILED:
            assert error is not None
            raise error
        if state is JobState.CANCELLED:
            raise JobCancelledError(self._cancel_message())
