"""Command-line interface.

Examples::

    # run a workflow with a mapping (auto-selects one by default)
    repro run galaxy --mapping auto --processes 10 --scale 1
    repro run sentiment --mapping hybrid_redis --processes 14

    # regenerate one paper artifact
    repro bench fig08
    repro bench table3

    # explain what the cost-based planner would do (no enactment)
    repro plan sentiment
    repro run galaxy --optimize --processes 8

    # list what is available (includes the mapping capability table)
    repro list

    # networked substrate: serve a RESP keyspace, join a run from outside
    repro serve-redis --port 6399
    repro run sentiment-scoring --mapping cluster_redis --address 127.0.0.1:6399
    repro join 127.0.0.1:6399 repro:my-run --index 5

    # multi-job daemon: clients submit named workflows, feed tuples and
    # stream results over line-JSON/TCP (wire protocol: docs/cli.md)
    repro serve --port 6388 --max-jobs 4
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench.experiments import get_experiment, list_experiments
from repro.bench.harness import BenchConfig
from repro.engine import Engine
from repro.mappings import capability_table, mapping_names
from repro.platforms.profiles import get_platform
from repro.scheduler.catalog import (
    build_named_workflow,
    workflow_names,
    workflow_params,
)


def _build_workflow(name: str, args: argparse.Namespace):
    """Build a catalog workflow from the CLI's workload flags."""
    params = {key: getattr(args, key) for key in workflow_params(name)}
    return build_named_workflow(name, **params)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stream-based workflow engine with auto-scaling and "
        "stateful hybrid mappings (WORKS 2023 reproduction).",
        epilog="Transport levers: --batch-size amortizes per-tuple queue/"
        "stream costs; --fuse removes hops entirely by collapsing 1:1 PE "
        "chains into in-process fused operators (see README, 'Operator "
        "fusion'); --stream consumes results as they are produced through "
        "the streaming Job API (see README, 'Streaming sessions').",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one workflow with one mapping")
    run_p.add_argument("workflow", choices=workflow_names())
    run_p.add_argument(
        "--mapping",
        default="auto",
        choices=["auto", *mapping_names()],
        help="enactment mapping; 'auto' selects by workflow capability",
    )
    run_p.add_argument("--processes", type=int, default=8)
    run_p.add_argument("--platform", default="laptop")
    run_p.add_argument("--time-scale", type=float, default=0.02)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--scale", type=int, default=1, help="galaxy workload multiplier")
    run_p.add_argument("--heavy", action="store_true", help="galaxy heavy variant")
    run_p.add_argument("--stations", type=int, default=50)
    run_p.add_argument("--articles", type=int, default=200)
    run_p.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint pinned stateful instances every N deliveries "
        "(enables crash recovery on recoverable mappings)",
    )
    run_p.add_argument(
        "--batch-size",
        type=int,
        default=1,
        metavar="N",
        help="micro-batch up to N tuples per queue/stream operation "
        "(1 = unbatched transport, identical to the classic engine)",
    )
    run_p.add_argument(
        "--batch-linger-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="max real milliseconds a buffered tuple may wait for batch "
        "companions on buffered port-to-port transport (0 = no linger)",
    )
    run_p.add_argument(
        "--address",
        default=None,
        metavar="HOST:PORT",
        help="RESP server address for networked mappings (cluster_redis); "
        "omit to self-provision a loopback server",
    )
    run_p.add_argument(
        "--fuse",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="collapse fusable 1:1 PE chains into in-process fused "
        "operators before enactment (--no-fuse, the default, runs the "
        "graph as written)",
    )
    run_p.add_argument(
        "--optimize",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="run the cost-based graph planner (all rewrite rules, "
        "profiled costs) before enactment; outputs are unchanged by "
        "contract -- see 'repro plan' for the dry-run explanation",
    )
    output_mode = run_p.add_mutually_exclusive_group()
    output_mode.add_argument(
        "--stream",
        action="store_true",
        help="submit as a streaming job and print results as they arrive "
        "(live ingestion on mappings with the 'stream' capability, "
        "buffered elsewhere)",
    )
    output_mode.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON run summary (mapping, timings, "
        "counters, output sizes) instead of the human-readable report",
    )

    plan_p = sub.add_parser(
        "plan",
        help="explain what the cost-based planner would do to a workflow",
    )
    plan_p.add_argument("workflow", choices=workflow_names())
    plan_p.add_argument("--platform", default="laptop")
    plan_p.add_argument("--seed", type=int, default=0)
    plan_p.add_argument("--scale", type=int, default=1, help="galaxy workload multiplier")
    plan_p.add_argument("--heavy", action="store_true", help="galaxy heavy variant")
    plan_p.add_argument("--stations", type=int, default=50)
    plan_p.add_argument("--articles", type=int, default=200)

    bench_p = sub.add_parser("bench", help="regenerate one paper figure/table")
    bench_p.add_argument("experiment", choices=list_experiments())
    bench_p.add_argument("--time-scale", type=float, default=None)
    bench_p.add_argument("--repeats", type=int, default=1)

    sub.add_parser("list", help="list workflows, mappings and experiments")

    serve_p = sub.add_parser(
        "serve-redis",
        help="serve the in-memory keyspace over RESP/TCP (redisim daemon)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=6399, help="0 picks an ephemeral port"
    )

    join_p = sub.add_parser(
        "join",
        help="join a cluster_redis run as an external worker process",
    )
    join_p.add_argument("address", metavar="HOST:PORT")
    join_p.add_argument("namespace", help="run namespace, e.g. repro:sentiment:ab12cd34")
    join_p.add_argument(
        "--index", type=int, default=0, help="worker index (names the consumer)"
    )

    daemon_p = sub.add_parser(
        "serve",
        help="serve the multi-job scheduler over line-JSON/TCP (repro daemon)",
        description="Run a JobScheduler daemon: clients submit catalog "
        "workflows, feed tuples and stream results over a newline-"
        "delimited JSON protocol (see docs/cli.md) without importing the "
        "library.",
    )
    daemon_p.add_argument("--host", default="127.0.0.1")
    daemon_p.add_argument(
        "--port", type=int, default=6388, help="0 picks an ephemeral port"
    )
    daemon_p.add_argument("--processes", type=int, default=8)
    daemon_p.add_argument("--platform", default="laptop")
    daemon_p.add_argument("--time-scale", type=float, default=0.02)
    daemon_p.add_argument("--seed", type=int, default=0)
    daemon_p.add_argument(
        "--max-jobs",
        type=int,
        default=4,
        metavar="N",
        help="admission cap: at most N jobs enact concurrently",
    )
    daemon_p.add_argument(
        "--pool-size",
        type=int,
        default=None,
        metavar="N",
        help="warm deployments kept per mapping (default: --max-jobs)",
    )
    daemon_p.add_argument(
        "--high-water",
        type=int,
        default=1024,
        metavar="N",
        help="max tuples a queued job may stage before backpressure",
    )
    daemon_p.add_argument(
        "--backpressure",
        choices=["block", "error"],
        default="block",
        help="what an over-high-water send does while a job waits for "
        "admission",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    graph, inputs = _build_workflow(args.workflow, args)
    extra = {"address": args.address} if args.address else {}
    engine = Engine(
        mapping=args.mapping,
        platform=get_platform(args.platform),
        processes=args.processes,
        time_scale=args.time_scale,
        seed=args.seed,
        batch_size=args.batch_size,
        batch_linger_ms=args.batch_linger_ms,
        fuse=args.fuse,
        optimize=args.optimize,
        checkpoint_interval=args.checkpoint_interval,
        **extra,
    )
    if args.json:
        # Machine-readable mode: the summary is the only stdout output.
        result = engine.run(graph, inputs=inputs)
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
        return 0
    if args.mapping == "auto":
        print(f"auto-selected mapping: {engine.resolve_mapping(graph)}")
    if args.stream:
        job = engine.submit(graph, inputs=inputs)
        job.close_input()
        streamed = 0
        for key, value in job.results():
            streamed += 1
            print(f"  -> {key}: {value!r}")
        result = job.wait()
        print(
            f"streamed     = {streamed} data units as they arrived "
            f"({'live' if job.streaming else 'buffered'} ingestion)"
        )
        engine.close()
    else:
        result = engine.run(graph, inputs=inputs)
    print(
        f"workflow={result.workflow} mapping={result.mapping} "
        f"processes={result.processes}"
    )
    print(f"runtime      = {result.runtime:.3f} s (real, time_scale={args.time_scale})")
    print(f"process time = {result.process_time:.3f} s")
    print(f"outputs      = {result.total_outputs()} data units")
    fused_chains = result.counters.get("fused_chains", 0)
    if fused_chains:
        print(
            f"fusion       = {fused_chains} chain(s), "
            f"{result.counters.get('fused_members', 0)} PEs collapsed"
        )
    planner_rules = result.counters.get("planner_rules", 0)
    if planner_rules:
        print(f"optimizer    = {planner_rules} rewrite rule(s) fired")
    top = result.top_pes(3)
    if top:
        ranked = ", ".join(f"{name} {seconds:.3f}s" for name, seconds in top)
        print(f"top PEs      = {ranked}")
    for key, values in sorted(result.outputs.items()):
        print(f"  {key}: {len(values)} items")
    if result.trace is not None:
        if len(result.trace):
            print(
                f"auto-scaler  = {len(result.trace)} iterations, "
                f"active size range [{result.trace.min_active()}, "
                f"{result.trace.max_active()}]"
            )
        events = result.trace.events
        if events:
            print(f"recovery     = {len(events)} events")
            for event in events:
                print(f"  t={event.timestamp:.3f} {event.kind}: {event.detail}")
    checkpoints = result.counters.get("checkpoints", 0)
    if checkpoints:
        print(
            f"checkpoints  = {checkpoints} taken, "
            f"{result.counters.get('restores', 0)} restores, "
            f"{result.counters.get('crashes', 0)} crashes"
        )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.mappings.base import normalize_inputs
    from repro.planner import Planner

    graph, inputs = _build_workflow(args.workflow, args)
    provided = normalize_inputs(graph, inputs)
    plan = Planner.default().plan(
        graph,
        provided=provided,
        platform=get_platform(args.platform),
        seed=args.seed,
    )
    print(plan.explain())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.experiment)
    config = experiment.config
    if args.time_scale is not None or args.repeats != 1:
        config = BenchConfig(
            time_scale=args.time_scale or config.time_scale,
            repeats=args.repeats,
        )
    report, _grids = experiment.run_and_report(config)
    print(report)
    return 0


#: ``repro list`` capability columns: header -> cell renderer.
_CAPABILITY_COLUMNS = (
    ("name", lambda name, caps: name),
    ("stateful", lambda name, caps: "yes" if caps.stateful else "no"),
    ("redis", lambda name, caps: "yes" if caps.requires_redis else "no"),
    ("autoscale", lambda name, caps: "yes" if caps.autoscaling else "no"),
    ("dynamic", lambda name, caps: "yes" if caps.dynamic else "no"),
    ("recover", lambda name, caps: "yes" if caps.recoverable else "no"),
    ("batch", lambda name, caps: "yes" if caps.batching else "no"),
    ("fuse", lambda name, caps: "yes" if caps.fusion else "no"),
    # The planner rides the fusion enactment plumbing, so the optimizer
    # capability follows the fusion bit.
    ("opt", lambda name, caps: "yes" if caps.fusion else "no"),
    ("stream", lambda name, caps: "yes" if caps.streaming else "no"),
    ("net", lambda name, caps: "yes" if caps.networked else "no"),
)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("workflows  :", ", ".join(workflow_names()))
    print("experiments:", ", ".join(list_experiments()))
    print("mappings   :")
    rows = capability_table()
    # Column widths come from the registry's actual contents (longest
    # registered name / cell, headers included), so out-of-tree backends
    # with long names can never shear the table.
    widths = [
        max(len(header), *(len(render(name, caps)) for name, caps in rows))
        for header, render in _CAPABILITY_COLUMNS
    ]
    cells = [header.ljust(width) for (header, _), width in zip(_CAPABILITY_COLUMNS, widths)]
    print("  " + " ".join(cells) + " description")
    for name, caps in rows:
        cells = [
            render(name, caps).ljust(width)
            for (_, render), width in zip(_CAPABILITY_COLUMNS, widths)
        ]
        print("  " + " ".join(cells) + " " + caps.description)
    return 0


def _cmd_serve_redis(args: argparse.Namespace) -> int:
    from repro.net.server import RespTCPServer

    server = RespTCPServer(host=args.host, port=args.port).start()
    print(f"redisim serving RESP on {server.address} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    from repro.mappings.cluster import run_worker

    print(f"joining {args.address} namespace={args.namespace} index={args.index}")
    run_worker(args.address, args.namespace, args.index)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.scheduler import JobScheduler, SchedulerService

    engine = Engine(
        mapping="auto",
        platform=get_platform(args.platform),
        processes=args.processes,
        time_scale=args.time_scale,
        seed=args.seed,
    )
    scheduler = JobScheduler(
        engine,
        max_concurrent=args.max_jobs,
        pool_size=args.pool_size,
        high_water=args.high_water,
        backpressure=args.backpressure,
    )
    service = SchedulerService(scheduler, host=args.host, port=args.port).start()
    # Flushed immediately so wrappers (tests, orchestrators) spawning the
    # daemon as a subprocess can read the bound address without a TTY.
    print(
        f"repro scheduler serving line-JSON on {service.address} "
        f"(Ctrl-C to stop)",
        flush=True,
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
        scheduler.close()
        engine.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "plan": _cmd_plan,
        "bench": _cmd_bench,
        "list": _cmd_list,
        "serve-redis": _cmd_serve_redis,
        "serve": _cmd_serve,
        "join": _cmd_join,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
