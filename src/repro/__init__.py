"""repro: a reproduction of "Optimization towards Efficiency and Stateful of
dispel4py" (WORKS/SC 2023, arXiv:2309.00595).

A stream-based scientific workflow engine in the style of dispel4py, with:

- static (``multi``) and dynamic (``dyn_multi``) parallel mappings,
- Redis-backed dynamic mappings (``dyn_redis``) built on an in-process
  Redis Stream substrate (:mod:`repro.redisim`),
- the paper's auto-scaling optimization (``dyn_auto_multi`` /
  ``dyn_auto_redis``, Algorithm 1),
- the stateful-aware hybrid mapping (``hybrid_redis``),
- a capability-aware mapping registry with ``mapping="auto"`` selection,
- the three evaluation workflows (:mod:`repro.workflows`) and a benchmark
  harness regenerating every figure and table (:mod:`repro.bench`).

Quickstart (fluent API + Engine facade)::

    from repro import Engine, IterativePE, Pipeline

    class Double(IterativePE):
        def _process(self, data):
            return 2 * data

    double = Double(name="double")
    graph = Pipeline("demo").then(double).build()

    with Engine(mapping="auto", processes=4) as engine:
        result = engine.run(graph, inputs=[1, 2, 3])
    print(result.output("double"))  # [2, 4, 6]

PEs compose with ``>>`` -- ``producer >> double >> sink`` chains default
ports, ``pe.out("a") >> other.in_("b")`` wires named ports, and
``>> GroupBy("key") >>`` attaches a grouping inline; see
:mod:`repro.core.fluent`.  The classic ``WorkflowGraph.connect`` string
API and the module-level :func:`run` shim keep working unchanged.

Long-lived callers stream instead of batching: ``engine.submit(graph)``
returns a :class:`Job` whose ``send``/``results``/``wait`` ingest and
consume incrementally while the engine keeps the deployment warm across
submissions (see README, "Streaming sessions").
"""

from typing import Any

from repro.core import (
    AllToOne,
    Chain,
    ConsumerPE,
    FunctionPE,
    FusedPE,
    GenericPE,
    GroupBy,
    Grouping,
    IterativePE,
    OneToAll,
    Pipeline,
    ProducerPE,
    Shuffle,
    WorkflowGraph,
)
from repro.engine import Engine, RunConfig
from repro.jobs import Job, JobCancelledError, JobState
from repro.mappings import (
    Capabilities,
    TerminationPolicy,
    capability_table,
    get_mapping,
    mapping_names,
    register_mapping,
    select_mapping,
)
from repro.metrics import RunResult
from repro.planner import CostModel, Plan, Planner, fuse_graph
from repro.platforms import CLOUD, HPC, LAPTOP, SERVER, PlatformProfile, get_platform
from repro.scheduler import (
    BackpressureError,
    JobScheduler,
    QuotaExceededError,
    SchedulerService,
    SchedulerStats,
    TenantQuota,
)
from repro.state import (
    CrashInjector,
    InMemoryStateStore,
    RedisSnapshotStore,
    Snapshot,
    StateStore,
)

__version__ = "1.2.0"


def run(
    graph: Any,
    inputs: Any = None,
    processes: int = 1,
    mapping: str = "simple",
    platform: PlatformProfile = LAPTOP,
    time_scale: float = 1.0,
    seed: int = 0,
    **options: Any,
) -> RunResult:
    """Enact ``graph`` with the named mapping and return the run result.

    Back-compat shim over the :class:`Engine` facade: each call builds a
    one-shot engine.  Long-lived callers should hold an :class:`Engine`
    instead -- it resolves the platform and mapping registry once and is
    reusable across runs.  ``mapping="auto"`` selects a mapping from the
    graph's requirements; see :func:`repro.mappings.select_mapping`.
    """
    engine = Engine(
        mapping=mapping,
        platform=platform,
        processes=processes,
        time_scale=time_scale,
        seed=seed,
        **options,
    )
    return engine.run(graph, inputs=inputs)


__all__ = [
    "AllToOne",
    "BackpressureError",
    "CLOUD",
    "Capabilities",
    "Chain",
    "CostModel",
    "ConsumerPE",
    "CrashInjector",
    "Engine",
    "FunctionPE",
    "FusedPE",
    "GenericPE",
    "GroupBy",
    "Grouping",
    "HPC",
    "InMemoryStateStore",
    "IterativePE",
    "Job",
    "JobCancelledError",
    "JobScheduler",
    "JobState",
    "LAPTOP",
    "OneToAll",
    "Pipeline",
    "Plan",
    "Planner",
    "PlatformProfile",
    "ProducerPE",
    "QuotaExceededError",
    "RedisSnapshotStore",
    "RunConfig",
    "RunResult",
    "SERVER",
    "SchedulerService",
    "SchedulerStats",
    "Shuffle",
    "Snapshot",
    "StateStore",
    "TenantQuota",
    "TerminationPolicy",
    "WorkflowGraph",
    "__version__",
    "capability_table",
    "fuse_graph",
    "get_mapping",
    "get_platform",
    "mapping_names",
    "register_mapping",
    "run",
    "select_mapping",
]
