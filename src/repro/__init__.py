"""repro: a reproduction of "Optimization towards Efficiency and Stateful of
dispel4py" (WORKS/SC 2023, arXiv:2309.00595).

A stream-based scientific workflow engine in the style of dispel4py, with:

- static (``multi``) and dynamic (``dyn_multi``) parallel mappings,
- Redis-backed dynamic mappings (``dyn_redis``) built on an in-process
  Redis Stream substrate (:mod:`repro.redisim`),
- the paper's auto-scaling optimization (``dyn_auto_multi`` /
  ``dyn_auto_redis``, Algorithm 1),
- the stateful-aware hybrid mapping (``hybrid_redis``),
- the three evaluation workflows (:mod:`repro.workflows`) and a benchmark
  harness regenerating every figure and table (:mod:`repro.bench`).

Quickstart::

    from repro import WorkflowGraph, IterativePE, run

    class Double(IterativePE):
        def _process(self, data):
            return 2 * data

    graph = WorkflowGraph("demo")
    double = graph.add(Double(name="double"))
    result = run(graph, inputs=[1, 2, 3], mapping="simple")
    print(result.output("double"))  # [2, 4, 6]
"""

from typing import Any

from repro.core import (
    AllToOne,
    ConsumerPE,
    FunctionPE,
    GenericPE,
    GroupBy,
    Grouping,
    IterativePE,
    OneToAll,
    ProducerPE,
    Shuffle,
    WorkflowGraph,
)
from repro.mappings import TerminationPolicy, get_mapping, mapping_names
from repro.metrics import RunResult
from repro.platforms import CLOUD, HPC, LAPTOP, SERVER, PlatformProfile, get_platform

__version__ = "1.0.0"


def run(
    graph: WorkflowGraph,
    inputs: Any = None,
    processes: int = 1,
    mapping: str = "simple",
    platform: PlatformProfile = LAPTOP,
    time_scale: float = 1.0,
    seed: int = 0,
    **options: Any,
) -> RunResult:
    """Enact ``graph`` with the named mapping and return the run result.

    This is the primary entry point of the library; see
    :meth:`repro.mappings.base.Mapping.execute` for parameter semantics.
    """
    engine = get_mapping(mapping)
    return engine.execute(
        graph,
        inputs=inputs,
        processes=processes,
        platform=platform,
        time_scale=time_scale,
        seed=seed,
        **options,
    )


__all__ = [
    "AllToOne",
    "CLOUD",
    "ConsumerPE",
    "FunctionPE",
    "GenericPE",
    "GroupBy",
    "Grouping",
    "HPC",
    "IterativePE",
    "LAPTOP",
    "OneToAll",
    "PlatformProfile",
    "ProducerPE",
    "RunResult",
    "SERVER",
    "Shuffle",
    "TerminationPolicy",
    "WorkflowGraph",
    "__version__",
    "get_mapping",
    "get_platform",
    "mapping_names",
    "run",
]
