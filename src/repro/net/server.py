"""Threaded RESP-over-TCP front-end for the redisim keyspace.

:class:`RespTCPServer` binds a listening socket, accepts one thread per
connection, and maps decoded RESP command arrays onto an existing
:class:`~repro.redisim.server.RedisServer` -- the same keyspace in-process
clients use, so a deployment can serve both transports at once.

Two properties matter for correctness:

- **Blocking commands never hold the keyspace lock across the wire.**
  ``BLPOP`` / ``BLMOVESEQ`` / blocking ``XREAD`` / ``XREADGROUP`` park in
  the keyspace's condition variable (which releases the lock while
  waiting) in bounded *slices*, re-issued until data arrives, the client's
  deadline passes, or the server shuts down.  Slicing is what lets
  :meth:`RespTCPServer.close` unwind a connection thread parked in an
  infinite block -- nothing would otherwise ever wake it.
- **``$``/last-ID cursors are resolved once.**  A sliced blocking ``XREAD``
  on ``$`` must pin the concrete last stream ID up front
  (:meth:`RedisServer.last_stream_id`); re-evaluating ``$`` per slice
  would skip entries that arrived between slices.

The command set is the one the mappings use: strings, lists, hashes, sets,
streams, consumer groups, XAUTOCLAIM -- plus redisim's own extensions
(``RPUSHSEQ``/``LRANGESEQ``/``BLMOVESEQ``, ``SNAPSHOT``/``RESTORE``,
``XACKDECR``).  Pipelining needs no special handling: a connection's
commands execute strictly in arrival order, which preserves the
INCRBY-before-XADD ordering the termination drain proof relies on, and
``XACKDECR`` keeps ack+decrement a single atomic command.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.resp import (
    INCOMPLETE,
    NIL_ARRAY,
    ErrorReply,
    ProtocolError,
    RespDecoder,
    SimpleString,
    encode_reply,
)
from repro.redisim.errors import ConnectionError as RedisConnectionError
from repro.redisim.errors import RedisError
from repro.redisim.server import RedisServer

OK = SimpleString("OK")

#: Upper bound (seconds) one blocking-wait slice may hold; shutdown and
#: client deadlines are both honoured within this granularity.
BLOCK_SLICE = 0.05


def _s(raw: bytes) -> str:
    return raw.decode("utf-8")


def _i(raw: bytes) -> int:
    try:
        return int(raw)
    except ValueError:
        raise RedisError(f"value is not an integer or out of range: {raw!r}") from None


def _f(raw: bytes) -> float:
    try:
        return float(raw)
    except ValueError:
        raise RedisError(f"value is not a valid float: {raw!r}") from None


def _value_bytes(value: Any) -> Any:
    """Keyspace value -> wire value.  Values written over the wire are
    bytes already; values written in-process may be ints (counters) or str."""
    if value is None or isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, (int, float)):
        return str(value).encode("ascii")
    raise RedisError(
        f"value of type {type(value).__name__} is not representable on the "
        f"wire (written by an in-process client?)"
    )


def _entries_reply(entries: List[Tuple[str, Dict[str, Any]]]) -> list:
    """Stream entries -> RESP shape ``[[id, [field, value, ...]], ...]``."""
    out = []
    for entry_id, fields in entries:
        flat: List[Any] = []
        for field, value in fields.items():
            flat.append(field)
            flat.append(_value_bytes(value))
        out.append([entry_id, flat])
    return out


def _streams_reply(reply: List[Tuple[str, list]]) -> Any:
    if not reply:
        return NIL_ARRAY
    return [[key, _entries_reply(entries)] for key, entries in reply]


def _flat_map(mapping: Dict[str, Any]) -> list:
    flat: List[Any] = []
    for field, value in mapping.items():
        flat.append(field)
        flat.append(value if isinstance(value, (int, list)) else _value_bytes(value))
    return flat


class _Connection:
    """One accepted client connection served by its own thread."""

    def __init__(self, server: "RespTCPServer", sock: socket.socket) -> None:
        self.server = server
        self.sock = sock
        self.alive = True

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def run(self) -> None:
        decoder = RespDecoder()
        try:
            while self.alive and not self.server._stopping.is_set():
                try:
                    data = self.sock.recv(65536)
                except OSError:
                    return
                if not data:
                    return
                decoder.feed(data)
                out: List[bytes] = []
                quit_seen = False
                while (command := decoder.decode()) is not INCOMPLETE:
                    reply, quit_seen = self.server._dispatch(self, command)
                    out.append(encode_reply(reply))
                    if quit_seen:
                        break
                if out:
                    try:
                        self.sock.sendall(b"".join(out))
                    except OSError:
                        return
                if quit_seen:
                    return
        except ProtocolError as exc:
            try:
                self.sock.sendall(encode_reply(ErrorReply(f"ERR protocol error: {exc}")))
            except OSError:
                pass
        finally:
            self.close()
            self.server._forget(self)


class RespTCPServer:
    """A TCP server speaking RESP2 over an in-process redisim keyspace.

    Parameters
    ----------
    keyspace:
        The :class:`RedisServer` to front.  ``None`` creates a private one
        that is closed together with this server (standalone daemon mode,
        ``repro serve-redis``); a provided keyspace is left open on close
        so in-process clients can keep using it.
    host / port:
        Bind address; port ``0`` picks a free ephemeral port (tests).
    """

    def __init__(
        self,
        keyspace: Optional[RedisServer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.keyspace = keyspace if keyspace is not None else RedisServer()
        self._owns_keyspace = keyspace is None
        self._host = host
        self._port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._conns: Dict[int, _Connection] = {}
        self._conns_lock = threading.Lock()
        self._commands = _build_command_table(self)

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "RespTCPServer":
        if self._listener is not None:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        # Bounded accept timeout so the accept loop notices shutdown.
        listener.settimeout(0.2)
        self._listener = listener
        self._port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"resp-accept-{self._port}", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    @property
    def address(self) -> str:
        """``host:port`` as workers and clients expect it."""
        return f"{self._host}:{self._port}"

    def close(self) -> None:
        """Stop accepting, unwind every connection thread, release the port.

        Closes the keyspace too when this server owns it (standalone mode);
        a fronted external keyspace stays open.  Idempotent.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        # Wake blocked keyspace waits so sliced blockers re-check _stopping
        # immediately instead of sleeping out their current slice.
        with self.keyspace._cond:
            self.keyspace._cond.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self.drop_connections()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._owns_keyspace:
            self.keyspace.close()

    def drop_connections(self) -> None:
        """Forcibly close every live client connection (chaos/testing hook).

        Clients with reconnect-and-backoff recover transparently; this is
        how the reconnect path is exercised deterministically.
        """
        with self._conns_lock:
            conns = list(self._conns.values())
        for conn in conns:
            conn.close()

    def serve_forever(self, poll: float = 0.5) -> None:
        """Block until :meth:`close` (daemon mode for ``repro serve-redis``)."""
        self.start()
        while not self._stopping.is_set():
            time.sleep(poll)

    # ------------------------------------------------------------ accept loop
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Connection(self, sock)
            with self._conns_lock:
                self._conns[id(conn)] = conn
            threading.Thread(
                target=conn.run, name=f"resp-conn-{self._port}", daemon=True
            ).start()

    def _forget(self, conn: _Connection) -> None:
        with self._conns_lock:
            self._conns.pop(id(conn), None)

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, conn: _Connection, command: Any) -> Tuple[Any, bool]:
        """Run one decoded command array; returns ``(reply, close_after)``."""
        if not isinstance(command, list) or not command:
            return ErrorReply("ERR protocol error: expected a command array"), False
        if not all(isinstance(part, bytes) for part in command):
            return ErrorReply("ERR protocol error: command of bulk strings expected"), False
        name = command[0].decode("ascii", "replace").upper()
        if name == "QUIT":
            return OK, True
        handler = self._commands.get(name)
        if handler is None:
            return ErrorReply(f"ERR unknown command {name!r}"), False
        try:
            return handler(command[1:]), False
        except RedisConnectionError:
            return ErrorReply("ERR redisim keyspace is closed"), True
        except RedisError as exc:
            message = str(exc)
            head = message.split(" ", 1)[0]
            if not head.isupper() or not head.isalpha():
                message = f"ERR {message}"
            return ErrorReply(message), False
        except ProtocolError as exc:
            return ErrorReply(f"ERR protocol error: {exc}"), False

    # --------------------------------------------------------- blocking waits
    def _sliced_block(
        self,
        attempt: Callable[[float], Any],
        timeout: Optional[float],
        empty: Any,
    ) -> Any:
        """Run a keyspace blocking call in bounded slices.

        ``attempt(seconds)`` issues the underlying blocking command with a
        short timeout; any truthy result wins.  ``timeout`` is the client's
        total budget in seconds (``None`` = block forever).  The keyspace
        lock is only ever held inside ``attempt`` -- never across slices,
        and never while bytes travel on the wire.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._stopping.is_set():
            slice_s = BLOCK_SLICE
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return empty
                slice_s = min(slice_s, remaining)
            hit = attempt(max(slice_s, 0.001))
            if hit:
                return hit
        return empty


def _build_command_table(server: RespTCPServer) -> Dict[str, Callable]:
    """The RESP command name -> handler table over ``server.keyspace``."""
    ks = server.keyspace

    def arity(args: List[bytes], at_least: int, name: str) -> None:
        if len(args) < at_least:
            raise RedisError(f"wrong number of arguments for '{name.lower()}' command")

    # ---------------------------------------------------------------- generic
    def ping(args: List[bytes]) -> Any:
        return SimpleString(_s(args[0])) if args else SimpleString("PONG")

    def echo(args: List[bytes]) -> Any:
        arity(args, 1, "ECHO")
        return args[0]

    def flushall(args: List[bytes]) -> Any:
        ks.flushall()
        return OK

    def dbsize(args: List[bytes]) -> Any:
        return ks.dbsize()

    def keys(args: List[bytes]) -> Any:
        arity(args, 1, "KEYS")
        return [k.encode() for k in ks.keys(_s(args[0]))]

    def type_(args: List[bytes]) -> Any:
        arity(args, 1, "TYPE")
        return SimpleString(ks.type(_s(args[0])))

    def delete(args: List[bytes]) -> Any:
        arity(args, 1, "DEL")
        return ks.delete(*(_s(a) for a in args))

    def exists(args: List[bytes]) -> Any:
        arity(args, 1, "EXISTS")
        return ks.exists(*(_s(a) for a in args))

    # ---------------------------------------------------------------- strings
    def set_(args: List[bytes]) -> Any:
        arity(args, 2, "SET")
        ks.set(_s(args[0]), args[1])
        return OK

    def get(args: List[bytes]) -> Any:
        arity(args, 1, "GET")
        return _value_bytes(ks.get(_s(args[0])))

    def incrby(args: List[bytes]) -> Any:
        arity(args, 2, "INCRBY")
        return ks.incrby(_s(args[0]), _i(args[1]))

    def incr(args: List[bytes]) -> Any:
        arity(args, 1, "INCR")
        return ks.incrby(_s(args[0]), 1)

    def decrby(args: List[bytes]) -> Any:
        arity(args, 2, "DECRBY")
        return ks.decrby(_s(args[0]), _i(args[1]))

    def decr(args: List[bytes]) -> Any:
        arity(args, 1, "DECR")
        return ks.decrby(_s(args[0]), 1)

    # ------------------------------------------------------------------ lists
    def lpush(args: List[bytes]) -> Any:
        arity(args, 2, "LPUSH")
        return ks.lpush(_s(args[0]), *args[1:])

    def rpush(args: List[bytes]) -> Any:
        arity(args, 2, "RPUSH")
        return ks.rpush(_s(args[0]), *args[1:])

    def lpop(args: List[bytes]) -> Any:
        arity(args, 1, "LPOP")
        return _value_bytes(ks.lpop(_s(args[0])))

    def rpop(args: List[bytes]) -> Any:
        arity(args, 1, "RPOP")
        return _value_bytes(ks.rpop(_s(args[0])))

    def llen(args: List[bytes]) -> Any:
        arity(args, 1, "LLEN")
        return ks.llen(_s(args[0]))

    def lrange(args: List[bytes]) -> Any:
        arity(args, 3, "LRANGE")
        return [_value_bytes(v) for v in ks.lrange(_s(args[0]), _i(args[1]), _i(args[2]))]

    def ltrim(args: List[bytes]) -> Any:
        arity(args, 3, "LTRIM")
        ks.ltrim(_s(args[0]), _i(args[1]), _i(args[2]))
        return OK

    def blpop(args: List[bytes]) -> Any:
        # BLPOP key [key ...] timeout -- Redis semantics: 0 blocks forever.
        arity(args, 2, "BLPOP")
        timeout = _f(args[-1])
        key_names = [_s(a) for a in args[:-1]]
        hit = server._sliced_block(
            lambda s: ks.blpop(key_names, timeout=s),
            None if timeout == 0 else timeout,
            empty=None,
        )
        if hit is None:
            return NIL_ARRAY
        key, value = hit
        return [key, _value_bytes(value)]

    # -------------------------------------------- redisim sequenced lists
    def rpushseq(args: List[bytes]) -> Any:
        arity(args, 2, "RPUSHSEQ")
        return ks.rpushseq(_s(args[0]), *args[1:])

    def blmoveseq(args: List[bytes]) -> Any:
        # BLMOVESEQ source destination timeout (0 blocks forever).
        arity(args, 3, "BLMOVESEQ")
        timeout = _f(args[2])
        src, dst = _s(args[0]), _s(args[1])
        hit = server._sliced_block(
            lambda s: ks.blmove(src, dst, timeout=s),
            None if timeout == 0 else timeout,
            empty=None,
        )
        if hit is None:
            return NIL_ARRAY
        seq, value = hit
        return [seq, _value_bytes(value)]

    def lrangeseq(args: List[bytes]) -> Any:
        arity(args, 3, "LRANGESEQ")
        return [
            [seq, _value_bytes(value)]
            for seq, value in ks.lrange(_s(args[0]), _i(args[1]), _i(args[2]))
        ]

    def snapshot(args: List[bytes]) -> Any:
        arity(args, 4, "SNAPSHOT")
        return int(ks.snapshot(_s(args[0]), _s(args[1]), _i(args[2]), args[3]))

    def restore(args: List[bytes]) -> Any:
        arity(args, 2, "RESTORE")
        hit = ks.restore(_s(args[0]), _s(args[1]))
        if hit is None:
            return NIL_ARRAY
        seq, blob = hit
        return [seq, _value_bytes(blob)]

    # ----------------------------------------------------------------- hashes
    def hset(args: List[bytes]) -> Any:
        arity(args, 3, "HSET")
        return ks.hset(_s(args[0]), _s(args[1]), args[2])

    def hget(args: List[bytes]) -> Any:
        arity(args, 2, "HGET")
        return _value_bytes(ks.hget(_s(args[0]), _s(args[1])))

    def hdel(args: List[bytes]) -> Any:
        arity(args, 2, "HDEL")
        return ks.hdel(_s(args[0]), *(_s(a) for a in args[1:]))

    def hgetall(args: List[bytes]) -> Any:
        arity(args, 1, "HGETALL")
        flat: List[Any] = []
        for field, value in ks.hgetall(_s(args[0])).items():
            flat.append(field)
            flat.append(_value_bytes(value))
        return flat

    def hlen(args: List[bytes]) -> Any:
        arity(args, 1, "HLEN")
        return ks.hlen(_s(args[0]))

    def hincrby(args: List[bytes]) -> Any:
        arity(args, 3, "HINCRBY")
        return ks.hincrby(_s(args[0]), _s(args[1]), _i(args[2]))

    # ------------------------------------------------------------------- sets
    def sadd(args: List[bytes]) -> Any:
        arity(args, 2, "SADD")
        return ks.sadd(_s(args[0]), *args[1:])

    def srem(args: List[bytes]) -> Any:
        arity(args, 2, "SREM")
        return ks.srem(_s(args[0]), *args[1:])

    def smembers(args: List[bytes]) -> Any:
        arity(args, 1, "SMEMBERS")
        return sorted(_value_bytes(m) for m in ks.smembers(_s(args[0])))

    def scard(args: List[bytes]) -> Any:
        arity(args, 1, "SCARD")
        return ks.scard(_s(args[0]))

    def sismember(args: List[bytes]) -> Any:
        arity(args, 2, "SISMEMBER")
        return int(ks.sismember(_s(args[0]), args[1]))

    # ---------------------------------------------------------------- streams
    def xadd(args: List[bytes]) -> Any:
        # XADD key [MAXLEN n] id field value [field value ...]
        arity(args, 4, "XADD")
        rest = list(args)
        key = _s(rest.pop(0))
        maxlen = None
        if rest and rest[0].upper() == b"MAXLEN":
            rest.pop(0)
            if rest and rest[0] in (b"~", b"="):
                rest.pop(0)
            maxlen = _i(rest.pop(0))
        entry_id = _s(rest.pop(0))
        if not rest or len(rest) % 2:
            raise RedisError("wrong number of arguments for 'xadd' command")
        fields = {_s(rest[i]): rest[i + 1] for i in range(0, len(rest), 2)}
        return ks.xadd(key, fields, entry_id=entry_id, maxlen=maxlen)

    def xlen(args: List[bytes]) -> Any:
        arity(args, 1, "XLEN")
        return ks.xlen(_s(args[0]))

    def xtrim(args: List[bytes]) -> Any:
        arity(args, 2, "XTRIM")
        rest = list(args)
        key = _s(rest.pop(0))
        if rest and rest[0].upper() == b"MAXLEN":
            rest.pop(0)
            if rest and rest[0] in (b"~", b"="):
                rest.pop(0)
        if not rest:
            raise RedisError("wrong number of arguments for 'xtrim' command")
        return ks.xtrim(key, _i(rest[0]))

    def xrange(args: List[bytes]) -> Any:
        arity(args, 3, "XRANGE")
        rest = list(args)
        key, min_id, max_id = _s(rest[0]), _s(rest[1]), _s(rest[2])
        count = None
        if len(rest) >= 5 and rest[3].upper() == b"COUNT":
            count = _i(rest[4])
        return _entries_reply(ks.xrange(key, min_id, max_id, count))

    def _parse_read_options(
        rest: List[bytes], name: str
    ) -> Tuple[Optional[int], Optional[int], bool, Dict[str, str]]:
        count = None
        block_ms = None
        noack = False
        while rest and rest[0].upper() not in (b"STREAMS",):
            word = rest.pop(0).upper()
            if word == b"COUNT":
                count = _i(rest.pop(0))
            elif word == b"BLOCK":
                block_ms = _i(rest.pop(0))
            elif word == b"NOACK":
                noack = True
            else:
                raise RedisError(f"syntax error in '{name}' near {word!r}")
        if not rest or rest.pop(0).upper() != b"STREAMS":
            raise RedisError(f"wrong number of arguments for '{name}' command")
        if len(rest) % 2 or not rest:
            raise RedisError(
                f"unbalanced '{name}' list of streams: keys and IDs must pair up"
            )
        half = len(rest) // 2
        streams = {_s(rest[i]): _s(rest[half + i]) for i in range(half)}
        return count, block_ms, noack, streams

    def xread(args: List[bytes]) -> Any:
        arity(args, 3, "XREAD")
        count, block_ms, _noack, streams = _parse_read_options(list(args), "xread")
        # Resolve $ once: sliced waits must not re-evaluate it (see module
        # docstring).  BLOCK 0 means block forever, as in Redis.
        streams = {
            key: ks.last_stream_id(key) if cursor == "$" else cursor
            for key, cursor in streams.items()
        }
        if block_ms is None:
            return _streams_reply(ks.xread(streams, count=count))
        reply = server._sliced_block(
            lambda s: ks.xread(streams, count=count, block_ms=int(s * 1000)),
            None if block_ms == 0 else block_ms / 1000.0,
            empty=[],
        )
        return _streams_reply(reply)

    def xreadgroup(args: List[bytes]) -> Any:
        # XREADGROUP GROUP g consumer [COUNT n] [BLOCK ms] [NOACK] STREAMS ...
        arity(args, 6, "XREADGROUP")
        rest = list(args)
        if rest.pop(0).upper() != b"GROUP":
            raise RedisError("syntax error: XREADGROUP must start with GROUP")
        group, consumer = _s(rest.pop(0)), _s(rest.pop(0))
        count, block_ms, noack, streams = _parse_read_options(rest, "xreadgroup")

        def attempt(slice_s: float) -> Any:
            return ks.xreadgroup(
                group, consumer, streams, count=count,
                block_ms=int(slice_s * 1000), noack=noack,
            )

        if block_ms is None:
            reply = ks.xreadgroup(group, consumer, streams, count=count, noack=noack)
        else:
            reply = server._sliced_block(
                attempt, None if block_ms == 0 else block_ms / 1000.0, empty=[]
            )
        # History reads (explicit cursor) legitimately return empty entry
        # lists; preserve the [[key, []]] shape rather than nil.
        if not reply and any(c != ">" for c in streams.values()):
            reply = ks.xreadgroup(group, consumer, streams, count=count, noack=noack)
        return _streams_reply(reply)

    def xgroup(args: List[bytes]) -> Any:
        arity(args, 2, "XGROUP")
        sub = args[0].upper()
        if sub == b"CREATE":
            arity(args, 4, "XGROUP CREATE")
            mkstream = any(a.upper() == b"MKSTREAM" for a in args[4:])
            ks.xgroup_create(_s(args[1]), _s(args[2]), entry_id=_s(args[3]), mkstream=mkstream)
            return OK
        if sub == b"DESTROY":
            arity(args, 3, "XGROUP DESTROY")
            return ks.xgroup_destroy(_s(args[1]), _s(args[2]))
        if sub == b"DELCONSUMER":
            arity(args, 4, "XGROUP DELCONSUMER")
            return ks.xgroup_delconsumer(_s(args[1]), _s(args[2]), _s(args[3]))
        raise RedisError(f"unknown XGROUP subcommand {sub!r}")

    def xack(args: List[bytes]) -> Any:
        arity(args, 3, "XACK")
        return ks.xack(_s(args[0]), _s(args[1]), *(_s(a) for a in args[2:]))

    def xackdecr(args: List[bytes]) -> Any:
        # XACKDECR key group entry_id counter_key amount (redisim extension).
        arity(args, 5, "XACKDECR")
        return ks.xackdecr(_s(args[0]), _s(args[1]), _s(args[2]), _s(args[3]), _i(args[4]))

    def xpending(args: List[bytes]) -> Any:
        arity(args, 2, "XPENDING")
        rest = list(args)
        key, group = _s(rest.pop(0)), _s(rest.pop(0))
        if not rest:
            summary = ks.xpending(key, group)
            consumers = [
                [name, str(count)] for name, count in sorted(summary["consumers"].items())
            ]
            return [
                summary["pending"],
                summary["min"],
                summary["max"],
                consumers or NIL_ARRAY,
            ]
        # Extended form: [IDLE ms] start end count [consumer]
        min_idle_ms = None
        if rest[0].upper() == b"IDLE":
            rest.pop(0)
            min_idle_ms = _f(rest.pop(0))
        if len(rest) < 3:
            raise RedisError("wrong number of arguments for 'xpending' command")
        start, end, count = _s(rest.pop(0)), _s(rest.pop(0)), _i(rest.pop(0))
        consumer = _s(rest.pop(0)) if rest else None
        rows = ks.xpending_range(
            key, group, start, end, count, consumer=consumer, min_idle_ms=min_idle_ms
        )
        return [
            [
                row["message_id"],
                row["consumer"],
                repr(float(row["time_since_delivered"])),
                row["times_delivered"],
            ]
            for row in rows
        ]

    def xclaim(args: List[bytes]) -> Any:
        arity(args, 5, "XCLAIM")
        return _entries_reply(
            ks.xclaim(
                _s(args[0]), _s(args[1]), _s(args[2]), _f(args[3]),
                [_s(a) for a in args[4:]],
            )
        )

    def xautoclaim(args: List[bytes]) -> Any:
        # XAUTOCLAIM key group consumer min-idle-time start [COUNT n]
        arity(args, 5, "XAUTOCLAIM")
        count = 100
        if len(args) >= 7 and args[5].upper() == b"COUNT":
            count = _i(args[6])
        cursor, claimed = ks.xautoclaim(
            _s(args[0]), _s(args[1]), _s(args[2]), _f(args[3]),
            start=_s(args[4]), count=count,
        )
        return [cursor, _entries_reply(claimed)]

    def xinfo(args: List[bytes]) -> Any:
        arity(args, 2, "XINFO")
        sub = args[0].upper()
        if sub == b"STREAM":
            return _flat_map(ks.xinfo_stream(_s(args[1])))
        if sub == b"GROUPS":
            return [_flat_map(row) for row in ks.xinfo_groups(_s(args[1]))]
        if sub == b"CONSUMERS":
            arity(args, 3, "XINFO CONSUMERS")
            return [_flat_map(row) for row in ks.xinfo_consumers(_s(args[1]), _s(args[2]))]
        raise RedisError(f"unknown XINFO subcommand {sub!r}")

    return {
        "PING": ping, "ECHO": echo, "FLUSHALL": flushall, "DBSIZE": dbsize,
        "KEYS": keys, "TYPE": type_, "DEL": delete, "EXISTS": exists,
        "SET": set_, "GET": get, "INCRBY": incrby, "INCR": incr,
        "DECRBY": decrby, "DECR": decr,
        "LPUSH": lpush, "RPUSH": rpush, "LPOP": lpop, "RPOP": rpop,
        "LLEN": llen, "LRANGE": lrange, "LTRIM": ltrim, "BLPOP": blpop,
        "RPUSHSEQ": rpushseq, "BLMOVESEQ": blmoveseq, "LRANGESEQ": lrangeseq,
        "SNAPSHOT": snapshot, "RESTORE": restore,
        "HSET": hset, "HGET": hget, "HDEL": hdel, "HGETALL": hgetall,
        "HLEN": hlen, "HINCRBY": hincrby,
        "SADD": sadd, "SREM": srem, "SMEMBERS": smembers, "SCARD": scard,
        "SISMEMBER": sismember,
        "XADD": xadd, "XLEN": xlen, "XTRIM": xtrim, "XRANGE": xrange,
        "XREAD": xread, "XREADGROUP": xreadgroup, "XGROUP": xgroup,
        "XACK": xack, "XACKDECR": xackdecr, "XPENDING": xpending,
        "XCLAIM": xclaim, "XAUTOCLAIM": xautoclaim, "XINFO": xinfo,
    }
