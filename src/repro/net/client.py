"""Socket-backed Redis client with the :class:`repro.redisim.client.RedisClient` facade.

:class:`SocketRedisClient` speaks RESP2 over TCP to a
:class:`~repro.net.server.RespTCPServer` (or genuine Redis -- the
``real_redis`` parity lane) while exposing byte-for-byte the same method
surface and return shapes as the in-process client, so the task-board and
mapping layers are transport-agnostic: hand them either client and they
cannot tell the difference.

Connection handling follows what production Redis clients do:

- **Pooling** -- a small pool of TCP connections checked out per command
  batch; a blocking command (``BLPOP``, blocking ``XREADGROUP``) parks one
  connection without starving concurrent callers on other threads.
- **Reconnect with backoff** -- a dead socket (server restart, dropped
  connection) is discarded and the command retried on a fresh dial after
  ``backoff * 2**attempt`` seconds, surfacing as redisim's
  :class:`~repro.redisim.errors.ConnectionError` only once retries are
  exhausted.
- **Fork safety** -- the pool records the PID that created each socket.
  After ``fork`` the child discards inherited connections before its first
  command (closing them is safe: the kernel refcounts the duplicated
  descriptors, so the parent's connections keep working) and dials its
  own.  Without this, parent and child interleave replies on one socket
  and both read garbage.  This is the SafeRedis/per-pid-cursor pattern,
  and it is what makes ``spawn`` and ``fork`` start methods behave
  identically for the cluster mapping.

Payload marshalling mirrors the in-process client exactly: list values and
stream fields pickle through ``_enc``/``_dec``; string/hash/counter values
travel raw and come back as ``bytes`` (callers already ``int(...)`` their
counters, which accepts ``b"5"``).
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.net.resp import (
    INCOMPLETE,
    ErrorReply,
    ProtocolError,
    RespDecoder,
    encode_command,
)
from repro.redisim.errors import ConnectionError as RedisConnectionError
from repro.redisim.errors import RedisError
from repro.runtime.clock import Clock


def _dumps(value: Any) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


class ReplyError(RedisError):
    """An application error (``-`` reply) raised client-side.

    Subclasses :class:`RedisError` so mapping code catching redisim errors
    works unchanged over the wire.  ``code`` is the conventional leading
    word of the message (``WRONGTYPE``, ``NOGROUP``, ``ERR``, ...).
    """

    def __init__(self, reply: ErrorReply) -> None:
        super().__init__(reply.message)
        self.code = reply.code


class _Connection:
    """One TCP connection with its own incremental decoder."""

    def __init__(self, host: str, port: int, connect_timeout: float) -> None:
        self.sock = socket.create_connection((host, port), timeout=connect_timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Reads must be able to park in server-side blocking commands, so
        # no read timeout; liveness comes from recv() returning b"" on a
        # closed peer.
        self.sock.settimeout(None)
        self.decoder = RespDecoder()
        self.pid = os.getpid()

    def send(self, payload: bytes) -> None:
        self.sock.sendall(payload)

    def read_reply(self) -> Any:
        while (value := self.decoder.decode()) is INCOMPLETE:
            data = self.sock.recv(65536)
            if not data:
                raise OSError("connection closed by server")
            self.decoder.feed(data)
        return value

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class ConnectionPool:
    """A small thread-safe pool of RESP connections to one server.

    ``max_connections`` bounds how many *idle* connections are retained;
    concurrent demand beyond it dials extra connections that are closed on
    release rather than pooled (a soft cap -- blocking commands must never
    deadlock waiting for a pool slot).
    """

    def __init__(
        self,
        host: str,
        port: int,
        max_connections: int = 4,
        connect_timeout: float = 5.0,
        retries: int = 3,
        backoff: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.connect_timeout = connect_timeout
        self.retries = retries
        self.backoff = backoff
        self._idle: List[_Connection] = []
        self._lock = threading.Lock()
        self._pid = os.getpid()

    # ----------------------------------------------------------- fork safety
    def _check_pid(self) -> None:
        """Discard connections inherited across ``fork``.

        Safe to close them in the child: the kernel reference-counts the
        dup'd file descriptors, so the parent's end stays usable.
        """
        if os.getpid() == self._pid:
            return
        with self._lock:
            if os.getpid() == self._pid:
                return
            stale, self._idle = self._idle, []
            self._pid = os.getpid()
        for conn in stale:
            conn.close()

    # ------------------------------------------------------------- lifecycle
    def _acquire(self) -> _Connection:
        with self._lock:
            while self._idle:
                conn = self._idle.pop()
                if conn.pid == os.getpid():
                    return conn
                conn.close()
        return _Connection(self.host, self.port, self.connect_timeout)

    def _release(self, conn: _Connection) -> None:
        # A decoder with buffered bytes means replies went unread
        # (interrupted batch) -- the connection is out of sync, drop it.
        if len(conn.decoder):
            conn.close()
            return
        with self._lock:
            if len(self._idle) < self.max_connections:
                self._idle.append(conn)
                return
        conn.close()

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    # --------------------------------------------------------------- execute
    def execute(self, commands: List[List[Any]]) -> List[Any]:
        """Send a command batch on one connection; return its replies.

        One ``sendall`` of the concatenated frames, then exactly
        ``len(commands)`` replies read back in order -- pipelining.  Dead
        connections are replaced and the batch retried with exponential
        backoff before giving up with redisim's ``ConnectionError``.
        """
        self._check_pid()
        payload = b"".join(encode_command(command) for command in commands)
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            try:
                conn = self._acquire()
            except OSError as exc:
                last_error = exc
                continue
            try:
                conn.send(payload)
                replies = [conn.read_reply() for _ in commands]
            except OSError as exc:
                conn.close()
                last_error = exc
                continue
            self._release(conn)
            return replies
        raise RedisConnectionError(
            f"cannot reach redis server at {self.host}:{self.port} "
            f"after {self.retries + 1} attempts: {last_error}"
        )


def _str(value: Any) -> str:
    return value.decode("utf-8") if isinstance(value, bytes) else str(value)


def _num(value: Any) -> Any:
    """Best-effort numeric coercion for XINFO-style metadata values."""
    if isinstance(value, bytes):
        value = value.decode("utf-8", "replace")
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                return value
    return value


class SocketPipeline:
    """Batched commands over one socket round trip (mirrors ``Pipeline``)."""

    def __init__(self, client: "SocketRedisClient") -> None:
        self._client = client
        self._commands: List[List[Any]] = []
        self._decoders: List[Callable[[Any], Any]] = []

    def __len__(self) -> int:
        return len(self._commands)

    def _queue(
        self, command: List[Any], decode: Callable[[Any], Any] = lambda r: r
    ) -> "SocketPipeline":
        self._commands.append(command)
        self._decoders.append(decode)
        return self

    def set(self, key: str, value: Any) -> "SocketPipeline":
        return self._queue(["SET", key, value])

    def incrby(self, key: str, amount: int = 1) -> "SocketPipeline":
        return self._queue(["INCRBY", key, amount])

    incr = incrby

    def decrby(self, key: str, amount: int = 1) -> "SocketPipeline":
        return self._queue(["DECRBY", key, amount])

    decr = decrby

    def rpush(self, key: str, *values: Any) -> "SocketPipeline":
        return self._queue(["RPUSH", key, *(self._client._enc(v) for v in values)])

    def rpush_seq(self, key: str, *values: Any) -> "SocketPipeline":
        return self._queue(["RPUSHSEQ", key, *(self._client._enc(v) for v in values)])

    def ltrim(self, key: str, start: int, end: int) -> "SocketPipeline":
        return self._queue(["LTRIM", key, start, end])

    def lpush(self, key: str, *values: Any) -> "SocketPipeline":
        return self._queue(["LPUSH", key, *(self._client._enc(v) for v in values)])

    def xadd(self, key: str, fields: Mapping[str, Any], id: str = "*") -> "SocketPipeline":  # noqa: A002
        command: List[Any] = ["XADD", key, id]
        for field, value in fields.items():
            command.append(field)
            command.append(self._client._enc(value))
        return self._queue(command, _str)

    def xack(self, key: str, group: str, *entry_ids: str) -> "SocketPipeline":
        return self._queue(["XACK", key, group, *entry_ids])

    def xack_decr(
        self, key: str, group: str, entry_id: str, counter_key: str, amount: int = 1
    ) -> "SocketPipeline":
        return self._queue(["XACKDECR", key, group, entry_id, counter_key, amount])

    def delete(self, *keys: str) -> "SocketPipeline":
        return self._queue(["DEL", *keys])

    def execute(self) -> List[Any]:
        """Run the batch; clears the pipeline and returns per-command results."""
        if not self._commands:
            return []
        self._client._charge()
        commands, self._commands = self._commands, []
        decoders, self._decoders = self._decoders, []
        replies = self._client._pool.execute(commands)
        out = []
        for reply, decode in zip(replies, decoders):
            if isinstance(reply, ErrorReply):
                raise ReplyError(reply)
            out.append(decode(reply))
        return out


class SocketRedisClient:
    """Drop-in for :class:`~repro.redisim.client.RedisClient` over TCP.

    Parameters
    ----------
    address:
        ``"host:port"`` string (the form workers are handed); overrides
        ``host``/``port`` when given.
    op_latency / clock / serialize:
        As on the in-process client.  ``op_latency`` usually stays 0 here
        -- the socket provides *real* latency, which is the point.
    max_connections / connect_timeout / retries / backoff:
        Pool tuning, see :class:`ConnectionPool`.
    """

    def __init__(
        self,
        address: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 6379,
        op_latency: float = 0.0,
        clock: Optional[Clock] = None,
        serialize: bool = True,
        max_connections: int = 4,
        connect_timeout: float = 5.0,
        retries: int = 3,
        backoff: float = 0.05,
    ) -> None:
        if op_latency < 0:
            raise ValueError("op_latency must be >= 0")
        if op_latency > 0 and clock is None:
            raise ValueError("a clock is required when op_latency > 0")
        if address is not None:
            host, _, raw_port = address.rpartition(":")
            if not host or not raw_port.isdigit():
                raise ValueError(f"address must look like 'host:port', got {address!r}")
            port = int(raw_port)
        self.host = host
        self.port = port
        self._pool = ConnectionPool(
            host,
            port,
            max_connections=max_connections,
            connect_timeout=connect_timeout,
            retries=retries,
            backoff=backoff,
        )
        self._latency = op_latency
        self._clock = clock
        self._serialize = serialize
        self.ops = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        self._pool.close()

    # ------------------------------------------------------------------ util
    def _charge(self) -> None:
        self.ops += 1
        if self._latency > 0 and self._clock is not None:
            self._clock.sleep(self._latency)

    def _enc(self, value: Any) -> Any:
        return _dumps(value) if self._serialize else value

    def _dec(self, value: Any) -> Any:
        if self._serialize and isinstance(value, bytes):
            return pickle.loads(value)
        return value

    def _execute(self, *args: Any) -> Any:
        self._charge()
        reply = self._pool.execute([list(args)])[0]
        if isinstance(reply, ErrorReply):
            raise ReplyError(reply)
        return reply

    def _entries(self, raw: Any) -> List[Tuple[str, Dict[str, Any]]]:
        entries = []
        for entry_id, flat in raw or []:
            fields = {
                _str(flat[i]): self._dec(flat[i + 1]) for i in range(0, len(flat), 2)
            }
            entries.append((_str(entry_id), fields))
        return entries

    def _streams(self, raw: Any) -> List[Tuple[str, List[Tuple[str, Dict[str, Any]]]]]:
        if raw is None:
            return []
        return [(_str(key), self._entries(entries)) for key, entries in raw]

    def pipeline(self) -> SocketPipeline:
        """Start a command batch (single round trip on execute)."""
        return SocketPipeline(self)

    def ping(self) -> bool:
        return _str(self._execute("PING")) == "PONG"

    # --------------------------------------------------------------- generic
    def flushall(self) -> None:
        self._execute("FLUSHALL")

    def dbsize(self) -> int:
        return self._execute("DBSIZE")

    def keys(self, pattern: str = "*") -> List[str]:
        return [_str(k) for k in self._execute("KEYS", pattern)]

    def type(self, key: str) -> str:
        return _str(self._execute("TYPE", key))

    def delete(self, *keys: str) -> int:
        if not keys:
            return 0
        return self._execute("DEL", *keys)

    def exists(self, *keys: str) -> int:
        return self._execute("EXISTS", *keys)

    # --------------------------------------------------------------- strings
    def set(self, key: str, value: Any) -> bool:
        return _str(self._execute("SET", key, value)) == "OK"

    def get(self, key: str) -> Any:
        return self._execute("GET", key)

    def incrby(self, key: str, amount: int = 1) -> int:
        return self._execute("INCRBY", key, amount)

    incr = incrby

    def decrby(self, key: str, amount: int = 1) -> int:
        return self._execute("DECRBY", key, amount)

    decr = decrby

    # ----------------------------------------------------------------- lists
    def lpush(self, key: str, *values: Any) -> int:
        return self._execute("LPUSH", key, *(self._enc(v) for v in values))

    def rpush(self, key: str, *values: Any) -> int:
        return self._execute("RPUSH", key, *(self._enc(v) for v in values))

    def lpop(self, key: str) -> Any:
        return self._dec(self._execute("LPOP", key))

    def rpop(self, key: str) -> Any:
        return self._dec(self._execute("RPOP", key))

    def blpop(
        self, keys: "str | Iterable[str]", timeout: Optional[float] = None
    ) -> Optional[Tuple[str, Any]]:
        if isinstance(keys, str):
            keys = [keys]
        # Redis wire semantics: timeout 0 blocks forever (= facade's None).
        reply = self._execute("BLPOP", *keys, timeout if timeout else 0)
        if reply is None:
            return None
        key, value = reply
        return _str(key), self._dec(value)

    def llen(self, key: str) -> int:
        return self._execute("LLEN", key)

    def lrange(self, key: str, start: int, end: int) -> List[Any]:
        return [self._dec(v) for v in self._execute("LRANGE", key, start, end)]

    def ltrim(self, key: str, start: int, end: int) -> bool:
        return _str(self._execute("LTRIM", key, start, end)) == "OK"

    # ------------------------------------------------- sequenced lists
    def rpush_seq(self, key: str, *values: Any) -> List[int]:
        """RPUSHSEQ: append values tagged with monotonic per-key sequences."""
        return self._execute("RPUSHSEQ", key, *(self._enc(v) for v in values))

    def blmove_seq(
        self, source: str, destination: str, timeout: Optional[float] = None
    ) -> Optional[Tuple[int, Any]]:
        """Blocking move of one sequenced entry; returns ``(seq, value)``."""
        reply = self._execute("BLMOVESEQ", source, destination, timeout if timeout else 0)
        if reply is None:
            return None
        seq, value = reply
        return seq, self._dec(value)

    def lrange_seq(self, key: str, start: int = 0, end: int = -1) -> List[Tuple[int, Any]]:
        """LRANGE over a sequenced list, decoding to ``(seq, value)`` pairs."""
        return [
            (seq, self._dec(value))
            for seq, value in self._execute("LRANGESEQ", key, start, end)
        ]

    # ------------------------------------------------------------- snapshots
    def snapshot(self, key: str, snapshot_id: str, seq: int, state: Any) -> bool:
        """SNAPSHOT: persist an instance-state blob guarded by ``seq``."""
        return bool(self._execute("SNAPSHOT", key, snapshot_id, seq, self._enc(state)))

    def restore(self, key: str, snapshot_id: str) -> Optional[Tuple[int, Any]]:
        """RESTORE: fetch the latest ``(seq, state)`` snapshot, or ``None``."""
        reply = self._execute("RESTORE", key, snapshot_id)
        if reply is None:
            return None
        seq, blob = reply
        return seq, self._dec(blob)

    # ---------------------------------------------------------------- hashes
    def hset(self, key: str, field: str, value: Any) -> int:
        return self._execute("HSET", key, field, value)

    def hget(self, key: str, field: str) -> Any:
        return self._execute("HGET", key, field)

    def hdel(self, key: str, *fields: str) -> int:
        return self._execute("HDEL", key, *fields)

    def hgetall(self, key: str) -> Dict[str, Any]:
        flat = self._execute("HGETALL", key)
        return {_str(flat[i]): flat[i + 1] for i in range(0, len(flat), 2)}

    def hlen(self, key: str) -> int:
        return self._execute("HLEN", key)

    def hincrby(self, key: str, field: str, amount: int = 1) -> int:
        return self._execute("HINCRBY", key, field, amount)

    # ------------------------------------------------------------------ sets
    def sadd(self, key: str, *members: Any) -> int:
        return self._execute("SADD", key, *members)

    def srem(self, key: str, *members: Any) -> int:
        return self._execute("SREM", key, *members)

    def smembers(self, key: str) -> set:
        return {_str(m) for m in self._execute("SMEMBERS", key)}

    def scard(self, key: str) -> int:
        return self._execute("SCARD", key)

    def sismember(self, key: str, member: Any) -> bool:
        return bool(self._execute("SISMEMBER", key, member))

    # --------------------------------------------------------------- streams
    def xadd(
        self,
        key: str,
        fields: Mapping[str, Any],
        id: str = "*",  # noqa: A002 - redis-py parameter name
        maxlen: Optional[int] = None,
    ) -> str:
        command: List[Any] = ["XADD", key]
        if maxlen is not None:
            command += ["MAXLEN", maxlen]
        command.append(id)
        for field, value in fields.items():
            command.append(field)
            command.append(self._enc(value))
        return _str(self._execute(*command))

    def xlen(self, key: str) -> int:
        return self._execute("XLEN", key)

    def xtrim(self, key: str, maxlen: int) -> int:
        return self._execute("XTRIM", key, "MAXLEN", maxlen)

    def xrange(
        self,
        key: str,
        min: str = "-",  # noqa: A002 - redis-py parameter name
        max: str = "+",  # noqa: A002 - redis-py parameter name
        count: Optional[int] = None,
    ) -> List[Tuple[str, Dict[str, Any]]]:
        command: List[Any] = ["XRANGE", key, min, max]
        if count is not None:
            command += ["COUNT", count]
        return self._entries(self._execute(*command))

    def xread(
        self,
        streams: Mapping[str, str],
        count: Optional[int] = None,
        block: Optional[int] = None,
    ) -> List[Tuple[str, List[Tuple[str, Dict[str, Any]]]]]:
        command: List[Any] = ["XREAD"]
        if count is not None:
            command += ["COUNT", count]
        if block is not None:
            command += ["BLOCK", block]
        command.append("STREAMS")
        command += list(streams.keys())
        command += list(streams.values())
        return self._streams(self._execute(*command))

    def xgroup_create(
        self, key: str, group: str, id: str = "$", mkstream: bool = False  # noqa: A002
    ) -> bool:
        command: List[Any] = ["XGROUP", "CREATE", key, group, id]
        if mkstream:
            command.append("MKSTREAM")
        return _str(self._execute(*command)) == "OK"

    def xgroup_destroy(self, key: str, group: str) -> int:
        return self._execute("XGROUP", "DESTROY", key, group)

    def xgroup_delconsumer(self, key: str, group: str, consumer: str) -> int:
        return self._execute("XGROUP", "DELCONSUMER", key, group, consumer)

    def xreadgroup(
        self,
        groupname: str,
        consumername: str,
        streams: Mapping[str, str],
        count: Optional[int] = None,
        block: Optional[int] = None,
        noack: bool = False,
    ) -> List[Tuple[str, List[Tuple[str, Dict[str, Any]]]]]:
        command: List[Any] = ["XREADGROUP", "GROUP", groupname, consumername]
        if count is not None:
            command += ["COUNT", count]
        if block is not None:
            command += ["BLOCK", block]
        if noack:
            command.append("NOACK")
        command.append("STREAMS")
        command += list(streams.keys())
        command += list(streams.values())
        return self._streams(self._execute(*command))

    def xack(self, key: str, group: str, *entry_ids: str) -> int:
        return self._execute("XACK", key, group, *entry_ids)

    def xack_decr(
        self, key: str, group: str, entry_id: str, counter_key: str, amount: int = 1
    ) -> int:
        """XACK + conditional DECRBY in one atomic server-side step."""
        return self._execute("XACKDECR", key, group, entry_id, counter_key, amount)

    def xpending(self, key: str, group: str) -> Dict[str, Any]:
        reply = self._execute("XPENDING", key, group)
        pending, min_id, max_id, consumers = reply
        return {
            "pending": pending,
            "min": None if min_id is None else _str(min_id),
            "max": None if max_id is None else _str(max_id),
            "consumers": {
                _str(name): int(count) for name, count in (consumers or [])
            },
        }

    def xpending_range(
        self,
        key: str,
        group: str,
        min: str = "-",  # noqa: A002
        max: str = "+",  # noqa: A002
        count: int = 10,
        consumername: Optional[str] = None,
        idle: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        command: List[Any] = ["XPENDING", key, group]
        if idle is not None:
            command += ["IDLE", idle]
        command += [min, max, count]
        if consumername is not None:
            command.append(consumername)
        return [
            {
                "message_id": _str(row[0]),
                "consumer": _str(row[1]),
                "time_since_delivered": float(_str(row[2])),
                "times_delivered": row[3],
            }
            for row in self._execute(*command)
        ]

    def xclaim(
        self,
        key: str,
        group: str,
        consumername: str,
        min_idle_time: float,
        message_ids: Iterable[str],
    ) -> List[Tuple[str, Dict[str, Any]]]:
        return self._entries(
            self._execute("XCLAIM", key, group, consumername, min_idle_time, *message_ids)
        )

    def xautoclaim(
        self,
        key: str,
        group: str,
        consumername: str,
        min_idle_time: float,
        start_id: str = "0-0",
        count: int = 100,
    ) -> Tuple[str, List[Tuple[str, Dict[str, Any]]]]:
        reply = self._execute(
            "XAUTOCLAIM", key, group, consumername, min_idle_time, start_id,
            "COUNT", count,
        )
        # Genuine Redis >= 7 appends a third element (deleted-ID list).
        cursor, raw = reply[0], reply[1]
        return _str(cursor), self._entries(raw)

    def _info_map(self, flat: Any) -> Dict[str, Any]:
        return {_str(flat[i]): _num(flat[i + 1]) for i in range(0, len(flat), 2)}

    def xinfo_stream(self, key: str) -> Dict[str, Any]:
        return self._info_map(self._execute("XINFO", "STREAM", key))

    def xinfo_groups(self, key: str) -> List[Dict[str, Any]]:
        return [self._info_map(row) for row in self._execute("XINFO", "GROUPS", key)]

    def xinfo_consumers(self, key: str, group: str) -> List[Dict[str, Any]]:
        return [
            self._info_map(row)
            for row in self._execute("XINFO", "CONSUMERS", key, group)
        ]
