"""Networked substrate: RESP over TCP for the redisim keyspace.

Everything "distributed" in the repro was single-host until this package:
the redisim server lives in-process and clients call it through a Python
method table.  ``repro.net`` puts a real socket in the middle:

- :mod:`repro.net.resp` -- an RESP2 wire codec (the protocol genuine Redis
  speaks): encoder for command arrays and reply values, and an incremental
  decoder that reassembles values from arbitrarily chunked socket reads.
- :mod:`repro.net.server` -- :class:`~repro.net.server.RespTCPServer`, a
  threaded TCP front-end mapping RESP command arrays onto an existing
  :class:`~repro.redisim.server.RedisServer` keyspace, including the
  blocking commands (``BLPOP``, blocking ``XREAD``/``XREADGROUP``) without
  holding the keyspace lock across the wire.
- :mod:`repro.net.client` -- :class:`~repro.net.client.SocketRedisClient`,
  a drop-in for :class:`~repro.redisim.client.RedisClient` backed by a
  pooled TCP connection with reconnect-and-backoff and per-pid fork
  safety.  Because it speaks real RESP, it also runs against a genuine
  Redis server (the ``real_redis`` parity lane), which keeps redisim
  honest.

The :mod:`cluster_redis mapping <repro.mappings.cluster>` builds on all
three: worker OS processes join a coordinator by ``host:port`` and consume
the task stream over the socket.
"""

from repro.net.client import ReplyError, SocketRedisClient
from repro.net.resp import ErrorReply, ProtocolError, RespDecoder, encode_command
from repro.net.server import RespTCPServer

__all__ = [
    "ErrorReply",
    "ProtocolError",
    "ReplyError",
    "RespDecoder",
    "RespTCPServer",
    "SocketRedisClient",
    "encode_command",
]
