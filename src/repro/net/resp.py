"""RESP2 wire codec (REdis Serialization Protocol, version 2).

The five RESP2 types and their markers, exactly as genuine Redis frames
them (redis.io/docs/reference/protocol-spec):

==============  ======  ===========================================
Type            Marker  Python mapping (decode)
==============  ======  ===========================================
Simple string   ``+``   :class:`SimpleString` (a ``str`` subclass)
Error           ``-``   :class:`ErrorReply`
Integer         ``:``   ``int``
Bulk string     ``$``   ``bytes`` (``None`` for the ``$-1`` nil)
Array           ``*``   ``list`` (``None`` for the ``*-1`` nil)
==============  ======  ===========================================

Encoding is symmetric: ``bytes``/``str`` become bulk strings, ``int``
integers, ``list``/``tuple`` arrays, ``None`` the nil bulk string, and the
:data:`NIL_ARRAY` sentinel the nil array (the shape ``BLPOP`` uses for a
timeout).  Commands are always encoded as arrays of bulk strings
(:func:`encode_command`), which is what every Redis client sends.

:class:`RespDecoder` is *incremental*: feed it whatever ``recv`` returned
-- half a bulk string, three pipelined replies, one byte -- and it yields
complete values as they become parseable, holding partial input across
calls.  This is the property the chunked-reassembly tests pin down.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Tuple, Union

CRLF = b"\r\n"

#: Returned by :meth:`RespDecoder.decode` when the buffer holds no
#: complete value yet (distinct from any decodable value, None included).
INCOMPLETE = object()

#: Encode sentinel for the RESP nil *array* (``*-1\r\n``); plain ``None``
#: encodes as the nil bulk string (``$-1\r\n``).  Both decode to ``None``.
NIL_ARRAY = object()


class ProtocolError(Exception):
    """Malformed RESP data on the wire (framing, not application, errors)."""


class SimpleString(str):
    """A decoded ``+`` reply; compares equal to the plain ``str`` it wraps."""

    __slots__ = ()


class ErrorReply(Exception):
    """A decoded ``-`` reply (an application error shipped as data).

    Decoders return it as a *value* (one reply of a pipelined batch may be
    an error while its neighbours succeed); clients decide whether to
    raise.  ``code`` is the conventional leading word (``ERR``,
    ``WRONGTYPE``, ``NOGROUP``, ...).
    """

    @property
    def message(self) -> str:
        return self.args[0]

    @property
    def code(self) -> str:
        head = self.message.split(" ", 1)[0]
        return head if head.isupper() else "ERR"


def _bulk(payload: bytes) -> bytes:
    return b"$%d\r\n%s\r\n" % (len(payload), payload)


def _as_bytes(value: Any) -> bytes:
    """Coerce one command argument / bulk payload to wire bytes."""
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, bool):
        # bool is an int subclass; Redis has no boolean wire type.
        return b"1" if value else b"0"
    if isinstance(value, int):
        return b"%d" % value
    if isinstance(value, float):
        return repr(value).encode("ascii")
    raise ProtocolError(f"cannot encode {type(value).__name__} as a RESP bulk string")


def encode_command(args: Iterable[Any]) -> bytes:
    """Encode one command as an array of bulk strings (the client frame)."""
    parts = [_as_bytes(arg) for arg in args]
    if not parts:
        raise ProtocolError("cannot encode an empty command")
    out = [b"*%d\r\n" % len(parts)]
    out.extend(_bulk(part) for part in parts)
    return b"".join(out)


def encode_reply(value: Any) -> bytes:
    """Encode one server reply value (the server frame).

    ``str`` payloads encode as bulk strings like every Redis reply value;
    use :class:`SimpleString` for the ``+OK`` style status replies.
    """
    if value is None:
        return b"$-1\r\n"
    if value is NIL_ARRAY:
        return b"*-1\r\n"
    if isinstance(value, SimpleString):
        return b"+%s\r\n" % value.encode("utf-8")
    if isinstance(value, ErrorReply):
        return b"-%s\r\n" % value.message.encode("utf-8")
    if isinstance(value, bool):
        return b":%d\r\n" % int(value)
    if isinstance(value, int):
        return b":%d\r\n" % value
    if isinstance(value, (bytes, str, float)):
        return _bulk(_as_bytes(value))
    if isinstance(value, (list, tuple)):
        return b"*%d\r\n" % len(value) + b"".join(encode_reply(v) for v in value)
    raise ProtocolError(f"cannot encode {type(value).__name__} as a RESP reply")


class _NeedMore(Exception):
    """Internal: the buffer ends before the value does."""


def _parse(buf: Union[bytes, bytearray, memoryview], pos: int) -> Tuple[Any, int]:
    """Parse one value at ``pos``; returns ``(value, next_pos)``.

    Raises :class:`_NeedMore` when the buffer is a prefix of a valid
    value, :class:`ProtocolError` when it cannot be one.
    """
    if pos >= len(buf):
        raise _NeedMore
    marker = buf[pos : pos + 1]
    line_end = buf.find(b"\r\n", pos + 1)
    if line_end < 0:
        raise _NeedMore
    line = bytes(buf[pos + 1 : line_end])
    body = line_end + 2
    if marker == b"+":
        return SimpleString(line.decode("utf-8", "replace")), body
    if marker == b"-":
        return ErrorReply(line.decode("utf-8", "replace")), body
    if marker == b":":
        try:
            return int(line), body
        except ValueError:
            raise ProtocolError(f"malformed integer reply {line!r}") from None
    if marker == b"$":
        try:
            length = int(line)
        except ValueError:
            raise ProtocolError(f"malformed bulk length {line!r}") from None
        if length == -1:
            return None, body
        if length < 0:
            raise ProtocolError(f"negative bulk length {length}")
        end = body + length
        if len(buf) < end + 2:
            raise _NeedMore
        if bytes(buf[end : end + 2]) != CRLF:
            raise ProtocolError("bulk string not terminated by CRLF")
        return bytes(buf[body:end]), end + 2
    if marker == b"*":
        try:
            count = int(line)
        except ValueError:
            raise ProtocolError(f"malformed array length {line!r}") from None
        if count == -1:
            return None, body
        if count < 0:
            raise ProtocolError(f"negative array length {count}")
        items: List[Any] = []
        cursor = body
        for _ in range(count):
            item, cursor = _parse(buf, cursor)
            items.append(item)
        return items, cursor
    raise ProtocolError(f"unknown RESP marker {bytes(marker)!r}")


class RespDecoder:
    """Incremental RESP decoder over a chunked byte stream.

    Usage::

        decoder = RespDecoder()
        decoder.feed(sock.recv(65536))
        while (value := decoder.decode()) is not INCOMPLETE:
            handle(value)

    Partial input stays buffered across :meth:`feed` calls; a complete
    value is consumed from the buffer exactly once.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        self._buf += data

    def decode(self) -> Any:
        """One complete value, or :data:`INCOMPLETE` if none is buffered."""
        try:
            value, consumed = _parse(self._buf, 0)
        except _NeedMore:
            return INCOMPLETE
        del self._buf[:consumed]
        return value

    def decode_all(self) -> List[Any]:
        """Every complete value currently buffered (pipelined batches)."""
        values = []
        while (value := self.decode()) is not INCOMPLETE:
            values.append(value)
        return values
