"""Shape assertions for reproduced experiments.

The reproduction cannot match the paper's absolute numbers (different
hardware, scaled time), but the *shape* of every result must hold.  These
helpers express the paper's qualitative claims as assertable predicates;
the benchmark suite and the integration tests share them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.metrics.ratios import summarize_ratios
from repro.metrics.result import RunResult

Grid = Dict[Tuple[str, int], RunResult]


def runtimes_decrease_with_processes(
    grid: Grid, mapping: str, tolerance: float = 1.40
) -> bool:
    """Section 5.2: "All techniques show a decreasing trend for runtime".

    Allows bounded local noise (``tolerance`` per step) but requires the
    endpoint to improve on the start.
    """
    series = sorted(
        ((p, r.runtime) for (m, p), r in grid.items() if m == mapping),
    )
    if len(series) < 2:
        return True
    for (_, earlier), (_, later) in zip(series, series[1:]):
        if later > earlier * tolerance:
            return False
    return series[-1][1] < series[0][1] * 1.05


def process_time_increases_with_processes(grid: Grid, mapping: str) -> bool:
    """Section 5.3: process time "exhibits an increased trend" with workers."""
    series = sorted(
        ((p, r.process_time) for (m, p), r in grid.items() if m == mapping),
    )
    if len(series) < 2:
        return True
    return series[-1][1] > series[0][1]


def autoscaling_saves_process_time(
    grid: Grid, auto_mapping: str, base_mapping: str, threshold: float = 1.0
) -> bool:
    """Tables 1-2: auto-scaling's mean process-time ratio is below 1."""
    summary = summarize_ratios(grid, auto_mapping, base_mapping)
    mean, _std = summary.process_time_mean_std
    return mean < threshold


def mapping_dominates(
    grid: Grid, fast: str, slow: str, processes: Iterable[int], metric: str = "runtime"
) -> bool:
    """True if ``fast`` beats ``slow`` on ``metric`` at every process count."""
    for p in processes:
        a = grid.get((fast, p))
        b = grid.get((slow, p))
        if a is None or b is None:
            continue
        if getattr(a, metric) >= getattr(b, metric):
            return False
    return True


def redis_slower_than_multiprocessing(grid: Grid, processes: Iterable[int]) -> bool:
    """Section 5.6: Multiprocessing optimizations outperform Redis ones.

    Compared pairwise (dyn vs dyn, auto vs auto) on mean runtime across the
    shared process counts.
    """
    def mean_runtime(mapping: str) -> float:
        values = [
            grid[(mapping, p)].runtime for p in processes if (mapping, p) in grid
        ]
        return sum(values) / len(values) if values else float("nan")

    return (
        mean_runtime("dyn_redis") > mean_runtime("dyn_multi")
        and mean_runtime("dyn_auto_redis") > mean_runtime("dyn_auto_multi")
    )
