"""Experiment definitions: one per figure/table of the paper's Section 5.

Each :class:`Experiment` bundles the platform, mapping set, process counts
and workload variants of one paper artifact, runs the grid through
:mod:`repro.bench.harness`, and renders the same rows/series the paper
reports.  The experiment ids mirror DESIGN.md's experiment index
(``fig08`` ... ``fig13``, ``table1`` ... ``table3``).

Process counts follow the published figures: {5, 7, 10, 12, 15} on server
and cloud, {4, 8, 16, 32, 64} on HPC, {8, 10, 12, 14, 16} for the
sentiment comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import BenchConfig, WorkflowFactory, run_cell, run_grid
from repro.core.partition import minimum_processes
from repro.metrics.ratios import RatioSummary, summarize_ratios
from repro.metrics.result import RunResult
from repro.metrics.tables import render_ratio_table, render_series, render_trace
from repro.platforms.profiles import get_platform
from repro.workflows import (
    build_internal_extinction_workflow,
    build_seismic_phase1_workflow,
    build_sentiment_workflow,
)

#: Server/cloud process axis (from the figures).
PROCS_SERVER = (5, 7, 10, 12, 15)
#: HPC process axis ("We employed 4, 8, 16, 32, and 64 CPUs").
PROCS_HPC = (4, 8, 16, 32, 64)
#: Sentiment comparison axis ("finer increments of 8, 10, 12, 14, and 16").
PROCS_SENTIMENT = (8, 10, 12, 14, 16)

#: The six techniques of Section 5 (Redis ones absent on HPC).
ALL_MAPPINGS = (
    "multi",
    "dyn_multi",
    "dyn_auto_multi",
    "dyn_redis",
    "dyn_auto_redis",
    "hybrid_redis",
)
MULTI_FAMILY = ("multi", "dyn_multi", "dyn_auto_multi")


def _galaxy(scale: int, heavy: bool) -> WorkflowFactory:
    return lambda: build_internal_extinction_workflow(scale=scale, heavy=heavy)


def _seismic(stations: int = 50, samples: int = 1200) -> WorkflowFactory:
    return lambda: build_seismic_phase1_workflow(stations=stations, samples=samples)


def _sentiment(articles: int = 400) -> WorkflowFactory:
    return lambda: build_sentiment_workflow(articles=articles)


def _min_procs(factory: WorkflowFactory) -> int:
    graph, _ = factory()
    return minimum_processes(graph)


def _skip_static_minimum(factory: WorkflowFactory) -> Callable[[str, int], bool]:
    """Skip static cells below the mapping's minimum process count.

    The paper's figures do the same ("multi initiates with 12 processes"
    for seismic; 14 for sentiment).
    """
    minimum = _min_procs(factory)

    def skip(mapping: str, processes: int) -> bool:
        return mapping in ("multi",) and processes < minimum

    return skip


GridsByWorkload = Dict[str, Dict[Tuple[str, int], RunResult]]


@dataclass
class Experiment:
    """One paper artifact: grid definition + reporting."""

    id: str
    title: str
    platform: str
    mappings: Sequence[str]
    processes: Sequence[int]
    workloads: Dict[str, WorkflowFactory]
    kind: str = "figure"  # "figure" | "table" | "trace"
    comparisons: Sequence[Tuple[str, str]] = field(default_factory=tuple)
    trace_mapping: Optional[str] = None
    config: BenchConfig = field(default_factory=BenchConfig)

    def run(self, config: Optional[BenchConfig] = None) -> GridsByWorkload:
        """Execute every cell of the experiment."""
        config = config or self.config
        grids: GridsByWorkload = {}
        for label, factory in self.workloads.items():
            grids[label] = run_grid(
                factory,
                self.mappings,
                self.processes,
                get_platform(self.platform),
                config=config,
                skip=_skip_static_minimum(factory),
            )
        return grids

    def report(self, grids: GridsByWorkload) -> str:
        """Render the paper-style rows/series for collected grids."""
        blocks: List[str] = [f"### {self.id}: {self.title} [platform={self.platform}]"]
        if self.kind == "figure":
            for label, grid in grids.items():
                present = [m for m in self.mappings if any(k[0] == m for k in grid)]
                blocks.append(
                    render_series(label, grid, present, list(self.processes))
                )
        elif self.kind == "table":
            for label, grid in grids.items():
                summaries: Dict[str, RatioSummary] = {}
                for numerator, denominator in self.comparisons:
                    if not any(k[0] == numerator for k in grid):
                        continue
                    summaries[f"{self.platform}:{numerator}/{denominator}"] = (
                        summarize_ratios(grid, numerator, denominator)
                    )
                blocks.append(render_ratio_table(label, summaries))
        elif self.kind == "trace":
            for label, grid in grids.items():
                for (mapping, p), result in sorted(grid.items()):
                    if result.trace is not None:
                        blocks.append(
                            render_trace(f"{label} [{mapping}, p={p}]", result.trace)
                        )
        return "\n\n".join(blocks)

    def run_and_report(self, config: Optional[BenchConfig] = None) -> Tuple[str, GridsByWorkload]:
        grids = self.run(config)
        return self.report(grids), grids


def _experiments() -> Dict[str, Callable[[], Experiment]]:
    defs: Dict[str, Callable[[], Experiment]] = {}

    defs["fig08"] = lambda: Experiment(
        id="fig08",
        title="Internal Extinction of Galaxies on server (16 cores)",
        platform="server",
        mappings=ALL_MAPPINGS,
        processes=PROCS_SERVER,
        workloads={
            "1X standard": _galaxy(1, heavy=False),
            "5X standard": _galaxy(5, heavy=False),
            "1X heavy": _galaxy(1, heavy=True),
        },
    )
    defs["fig09"] = lambda: Experiment(
        id="fig09",
        title="Internal Extinction of Galaxies on cloud (8 cores)",
        platform="cloud",
        mappings=ALL_MAPPINGS,
        processes=PROCS_SERVER,
        workloads={
            "1X standard": _galaxy(1, heavy=False),
            "5X standard": _galaxy(5, heavy=False),
            "1X heavy": _galaxy(1, heavy=True),
        },
    )
    defs["fig10"] = lambda: Experiment(
        id="fig10",
        title="Internal Extinction of Galaxies on HPC (64 cores, no Redis)",
        platform="hpc",
        mappings=MULTI_FAMILY,
        processes=PROCS_HPC,
        workloads={
            "5X standard": _galaxy(5, heavy=False),
            "10X standard": _galaxy(10, heavy=False),
            "5X heavy": _galaxy(5, heavy=True),
        },
        config=BenchConfig(time_scale=0.01),
    )
    defs["fig11a"] = lambda: Experiment(
        id="fig11a",
        title="Seismic Cross-Correlation on server",
        platform="server",
        mappings=ALL_MAPPINGS,
        processes=PROCS_SERVER,
        workloads={"50 stations": _seismic()},
    )
    defs["fig11b"] = lambda: Experiment(
        id="fig11b",
        title="Seismic Cross-Correlation on cloud",
        platform="cloud",
        mappings=ALL_MAPPINGS,
        processes=PROCS_SERVER,
        workloads={"50 stations": _seismic()},
    )
    defs["fig11c"] = lambda: Experiment(
        id="fig11c",
        title="Seismic Cross-Correlation on HPC",
        platform="hpc",
        mappings=MULTI_FAMILY,
        processes=PROCS_HPC,
        workloads={"50 stations": _seismic()},
        config=BenchConfig(time_scale=0.01),
    )
    # The sentiment comparison runs at a coarser time scale: the effect the
    # paper reports (hybrid's dynamic stateless pool beating multi's static
    # bottleneck stage) requires per-task compute to dominate per-op
    # messaging overhead, as it does on the paper's platforms.
    defs["fig12a"] = lambda: Experiment(
        id="fig12a",
        title="Sentiment Analyses for News Articles on server",
        platform="server",
        mappings=("multi", "hybrid_redis"),
        processes=PROCS_SENTIMENT,
        workloads={"400 articles": _sentiment()},
        config=BenchConfig(time_scale=0.04),
    )
    defs["fig12b"] = lambda: Experiment(
        id="fig12b",
        title="Sentiment Analyses for News Articles on cloud",
        platform="cloud",
        mappings=("multi", "hybrid_redis"),
        processes=PROCS_SENTIMENT,
        workloads={"400 articles": _sentiment()},
        config=BenchConfig(time_scale=0.04),
    )
    defs["fig13"] = lambda: Experiment(
        id="fig13",
        title="Auto-scaler traces (active size vs monitored metric)",
        platform="server",
        mappings=("dyn_auto_multi", "dyn_auto_redis"),
        processes=(15,),
        workloads={
            "galaxies 5X": _galaxy(5, heavy=False),
            "seismic 50": _seismic(),
        },
        kind="trace",
    )
    defs["table1"] = lambda: Experiment(
        id="table1",
        title="Galaxy ratio summary: auto-scaling vs dynamic scheduling",
        platform="server",
        mappings=("dyn_multi", "dyn_auto_multi", "dyn_redis", "dyn_auto_redis"),
        processes=PROCS_SERVER,
        workloads={"1X standard": _galaxy(1, heavy=False)},
        kind="table",
        comparisons=(
            ("dyn_auto_multi", "dyn_multi"),
            ("dyn_auto_redis", "dyn_redis"),
        ),
    )
    defs["table2"] = lambda: Experiment(
        id="table2",
        title="Seismic ratio summary: auto-scaling vs dynamic scheduling",
        platform="server",
        mappings=("dyn_multi", "dyn_auto_multi", "dyn_redis", "dyn_auto_redis"),
        processes=PROCS_SERVER,
        workloads={"50 stations": _seismic()},
        kind="table",
        comparisons=(
            ("dyn_auto_multi", "dyn_multi"),
            ("dyn_auto_redis", "dyn_redis"),
        ),
    )
    defs["table3"] = lambda: Experiment(
        id="table3",
        title="Sentiment ratio summary: hybrid_redis vs multi",
        platform="server",
        mappings=("multi", "hybrid_redis"),
        processes=(14, 16),
        workloads={"400 articles": _sentiment()},
        kind="table",
        comparisons=(("hybrid_redis", "multi"),),
        config=BenchConfig(time_scale=0.04, repeats=3),
    )
    return defs


EXPERIMENTS: Dict[str, Callable[[], Experiment]] = _experiments()


def list_experiments() -> List[str]:
    return sorted(EXPERIMENTS)


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return EXPERIMENTS[experiment_id]()
    except KeyError:
        known = ", ".join(list_experiments())
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None


def run_single(
    experiment_id: str,
    workload: Optional[str] = None,
    mapping: Optional[str] = None,
    processes: Optional[int] = None,
    config: Optional[BenchConfig] = None,
) -> RunResult:
    """Run one representative cell of an experiment (CLI convenience)."""
    experiment = get_experiment(experiment_id)
    label = workload or next(iter(experiment.workloads))
    factory = experiment.workloads[label]
    return run_cell(
        factory,
        mapping or experiment.mappings[0],
        processes or experiment.processes[0],
        get_platform(experiment.platform),
        config or experiment.config,
    )
