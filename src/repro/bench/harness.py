"""Grid runner for the evaluation experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro import run
from repro.core.graph import WorkflowGraph
from repro.metrics.result import RunResult
from repro.platforms.profiles import PlatformProfile, get_platform

#: A workflow factory returns a fresh (graph, inputs) pair per run --
#: graphs are single-use because PE instances accumulate state.
WorkflowFactory = Callable[[], Tuple[WorkflowGraph, list]]


@dataclass
class BenchConfig:
    """Shared knobs of a benchmark session.

    Attributes
    ----------
    time_scale:
        Nominal-to-real scale for every run.  The default replays the
        paper's second-scale workloads at 1.5% speed, keeping the full
        grid tractable; ratios are scale-invariant (DESIGN.md).
    seed:
        Run seed (identical across cells for comparability).
    repeats:
        Repetitions per cell; the median runtime/process-time is kept.
    """

    time_scale: float = 0.015
    seed: int = 0
    repeats: int = 1
    extra_options: Dict[str, Any] = field(default_factory=dict)


def run_cell(
    factory: WorkflowFactory,
    mapping: str,
    processes: int,
    platform: PlatformProfile,
    config: Optional[BenchConfig] = None,
    **options: Any,
) -> RunResult:
    """Run one (mapping, processes) cell, returning the median repeat."""
    config = config or BenchConfig()
    merged = {**config.extra_options, **options}
    results: List[RunResult] = []
    for _ in range(max(1, config.repeats)):
        graph, inputs = factory()
        results.append(
            run(
                graph,
                inputs=inputs,
                processes=processes,
                mapping=mapping,
                platform=platform,
                time_scale=config.time_scale,
                seed=config.seed,
                **merged,
            )
        )
    results.sort(key=lambda r: r.runtime)
    return results[len(results) // 2]


def run_grid(
    factory: WorkflowFactory,
    mappings: Iterable[str],
    processes: Iterable[int],
    platform: "PlatformProfile | str",
    config: Optional[BenchConfig] = None,
    skip: Optional[Callable[[str, int], bool]] = None,
    **options: Any,
) -> Dict[Tuple[str, int], RunResult]:
    """Run the full (mapping x processes) grid for one workload.

    Parameters
    ----------
    skip:
        Optional predicate ``(mapping, processes) -> bool``; cells for
        which it returns True are omitted (e.g. ``multi`` below its
        minimum process count, exactly as the paper's figures start the
        ``multi`` series later).
    """
    if isinstance(platform, str):
        platform = get_platform(platform)
    grid: Dict[Tuple[str, int], RunResult] = {}
    for mapping in mappings:
        for p in processes:
            if skip is not None and skip(mapping, p):
                continue
            grid[(mapping, p)] = run_cell(
                factory, mapping, p, platform, config, **options
            )
    return grid
