"""Grid runner for the evaluation experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.graph import WorkflowGraph
from repro.engine import Engine
from repro.metrics.result import RunResult
from repro.platforms.profiles import PlatformProfile, get_platform

#: A workflow factory returns a fresh (graph, inputs) pair per run --
#: graphs are single-use because PE instances accumulate state.
WorkflowFactory = Callable[[], Tuple[WorkflowGraph, list]]


@dataclass
class BenchConfig:
    """Shared knobs of a benchmark session.

    Attributes
    ----------
    time_scale:
        Nominal-to-real scale for every run.  The default replays the
        paper's second-scale workloads at 1.5% speed, keeping the full
        grid tractable; ratios are scale-invariant (DESIGN.md).
    seed:
        Run seed (identical across cells for comparability).
    repeats:
        Repetitions per cell; the median runtime/process-time is kept.
    """

    time_scale: float = 0.015
    seed: int = 0
    repeats: int = 1
    extra_options: Dict[str, Any] = field(default_factory=dict)


def run_cell(
    factory: WorkflowFactory,
    mapping: str,
    processes: int,
    platform: PlatformProfile,
    config: Optional[BenchConfig] = None,
    **options: Any,
) -> RunResult:
    """Run one (mapping, processes) cell, returning the median repeat."""
    config = config or BenchConfig()
    merged = {**config.extra_options, **options}
    engine = Engine(
        mapping=mapping,
        platform=platform,
        processes=processes,
        time_scale=config.time_scale,
        seed=config.seed,
        **merged,
    )
    return _median_run(engine, factory, config.repeats)


def _median_run(
    engine: Engine,
    factory: WorkflowFactory,
    repeats: int,
    mapping: Optional[str] = None,
    processes: Optional[int] = None,
) -> RunResult:
    """Run one cell ``repeats`` times through ``engine``; keep the median."""
    results: List[RunResult] = []
    overrides: Dict[str, Any] = {}
    if mapping is not None:
        overrides["mapping"] = mapping
    if processes is not None:
        overrides["processes"] = processes
    for _ in range(max(1, repeats)):
        graph, inputs = factory()
        results.append(engine.run(graph, inputs=inputs, **overrides))
    results.sort(key=lambda r: r.runtime)
    return results[len(results) // 2]


def run_grid(
    factory: WorkflowFactory,
    mappings: Iterable[str],
    processes: Iterable[int],
    platform: "PlatformProfile | str",
    config: Optional[BenchConfig] = None,
    skip: Optional[Callable[[str, int], bool]] = None,
    **options: Any,
) -> Dict[Tuple[str, int], RunResult]:
    """Run the full (mapping x processes) grid for one workload.

    Parameters
    ----------
    skip:
        Optional predicate ``(mapping, processes) -> bool``; cells for
        which it returns True are omitted (e.g. ``multi`` below its
        minimum process count, exactly as the paper's figures start the
        ``multi`` series later).
    """
    if isinstance(platform, str):
        platform = get_platform(platform)
    config = config or BenchConfig()
    merged = {**config.extra_options, **options}
    # One engine for the whole grid: the platform and registry resolve
    # once, each cell overrides mapping/processes per run.
    engine = Engine(
        platform=platform,
        time_scale=config.time_scale,
        seed=config.seed,
        **merged,
    )
    grid: Dict[Tuple[str, int], RunResult] = {}
    for mapping in mappings:
        for p in processes:
            if skip is not None and skip(mapping, p):
                continue
            grid[(mapping, p)] = _median_run(
                engine, factory, config.repeats, mapping=mapping, processes=p
            )
    return grid
