"""Benchmark harness: regenerate every figure and table of the paper.

- :mod:`repro.bench.harness` -- grid runner: enact (workflow x mapping x
  process-count) cells and collect :class:`~repro.metrics.result.RunResult`
  grids.
- :mod:`repro.bench.experiments` -- one experiment definition per paper
  figure/table, with the exact mapping sets, process counts, platforms and
  workload variants used in Section 5 (scaled by ``time_scale``).
- :mod:`repro.bench.reporting` -- printers that emit the same rows/series
  the paper reports.

The ``benchmarks/`` directory at the repository root drives these under
pytest-benchmark; ``python -m repro bench <experiment>`` runs them
standalone.
"""

from repro.bench.experiments import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    list_experiments,
)
from repro.bench.harness import BenchConfig, run_cell, run_grid

__all__ = [
    "BenchConfig",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "list_experiments",
    "run_cell",
    "run_grid",
]
