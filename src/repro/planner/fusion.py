"""The chain-fusion rewrite: discovery and graph surgery.

Relocated from :mod:`repro.core.fusion` when the planner subsystem was
introduced: the *runtime* object (:class:`~repro.core.fusion.FusedPE`)
stays in the core, while the *rewrite* -- deciding what to fuse and
rebuilding the graph -- lives here with the other planner rules.
:func:`fuse_graph` is the primitive behind both the ``fuse=`` engine
option (via :meth:`repro.planner.Planner.fusion_only`) and the planner's
:class:`~repro.planner.rules.ChainFusion` rule.

Fusability
----------
An edge ``A -> B`` may be fused when:

- it is A's **only** outgoing connection (across all ports) and B's
  **only** incoming connection -- no fan-out, no fan-in;
- the edge's effective grouping is unset or :class:`Shuffle` (pure load
  balancing; for stateless B the output multiset is independent of which
  instance ran which tuple).  Any instance-pinning grouping (GroupBy /
  AllToOne / OneToAll) erases under fusion, so it is only allowed when the
  whole chain provably lands on **one** instance;
- the members' ``numprocesses`` pins are compatible: at most one distinct
  pinned value per chain (the fused PE inherits it);
- **stateful** members are fusable only under the one-instance rule above,
  except a stateful chain *head*: its state partitioning is governed by
  its inbound connection, which the rewrite preserves verbatim, so a
  pinned multi-instance aggregator may still absorb its stateless
  downstream.

Chains are claimed greedily in topological order, so every fusable run is
collapsed into the maximal chain containing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.fusion import FusedPE
from repro.core.graph import WorkflowGraph
from repro.core.groupings import Shuffle


@dataclass(frozen=True)
class FusionPlan:
    """Outcome of one rewrite pass.

    ``graph`` is the rewritten workflow (the input graph, unchanged, when
    nothing fused); ``chains`` lists the member names of each collapsed
    chain; ``member_to_fused`` maps every member name to its fused PE's
    name (used to re-key input specs for fused source PEs).
    """

    graph: WorkflowGraph
    chains: Tuple[Tuple[str, ...], ...] = ()
    member_to_fused: Dict[str, str] = field(default_factory=dict)

    @property
    def fused(self) -> bool:
        return bool(self.chains)

    def rename_inputs(
        self, provided: Dict[str, List[Dict[str, Any]]]
    ) -> Dict[str, List[Dict[str, Any]]]:
        """Re-key normalized root inputs onto fused source PEs."""
        return {
            self.member_to_fused.get(root, root): items
            for root, items in provided.items()
        }


def _merge_pin(current: Optional[int], new: Optional[int]) -> Tuple[bool, Optional[int]]:
    """Merge one member's instance pin into the chain's; False on conflict."""
    if new is None:
        return True, current
    if current is None or current == new:
        return True, new
    return False, current


def find_fusable_chains(
    graph: WorkflowGraph,
) -> List[Tuple[List[str], Optional[int]]]:
    """Maximal fusable chains of ``graph`` as ``(member names, pin)`` pairs.

    Chains are discovered greedily in topological order under the
    fusability rules of the module docstring; each returned chain has at
    least two members and carries the merged ``numprocesses`` pin the
    fused PE must inherit (``None`` when no member pins).
    """
    graph.validate()
    stateful_names = {pe.name for pe in graph.stateful_pes()}

    def member_pin(name: str) -> Optional[int]:
        pe = graph.pes[name]
        if name in stateful_names:
            # A stateful PE always lands on a definite instance count
            # (numprocesses, defaulting to one) -- the hybrid rule.
            return pe.numprocesses if pe.numprocesses is not None else 1
        return pe.numprocesses

    chains: List[Tuple[List[str], Optional[int]]] = []
    claimed: set = set()
    for name in graph.topological_order():
        if name in claimed:
            continue
        chain = [name]
        pin = member_pin(name)
        while True:
            tail = chain[-1]
            outs = graph.out_edges(tail)
            if len(outs) != 1:
                break
            edge = outs[0]
            if edge.dst in claimed or len(graph.in_edges(edge.dst)) != 1:
                break
            grouping = graph.effective_grouping(edge)
            # An instance-pinning (or custom) grouping erases under fusion;
            # only a provably single-instance chain preserves its effect.
            # A stateful non-head member likewise: its state partitioning
            # was governed by exactly this (erased) inbound connection.
            needs_single = edge.dst in stateful_names or not (
                grouping is None or isinstance(grouping, Shuffle)
            )
            ok, merged = _merge_pin(pin, member_pin(edge.dst))
            if ok and needs_single:
                ok, merged = _merge_pin(merged, 1)
            if not ok:
                break
            chain.append(edge.dst)
            pin = merged
        if len(chain) >= 2:
            chains.append((chain, pin))
            claimed.update(chain)
    return chains


def fuse_chains(
    graph: WorkflowGraph, found: List[Tuple[List[str], Optional[int]]]
) -> FusionPlan:
    """Collapse the given chains of ``graph`` into :class:`FusedPE` operators.

    The graph surgery behind :func:`fuse_graph`, factored out so rules
    with their own chain-discovery policy (e.g. grouping-corridor partial
    fusion) reuse the same provably-correct rewrite.  Chains must be
    disjoint linear runs of ``graph``.
    """
    if not found:
        return FusionPlan(graph=graph)

    stateful_names = {pe.name for pe in graph.stateful_pes()}
    member_to_fused: Dict[str, str] = {}
    fused_by_name: Dict[str, FusedPE] = {}
    for chain, pin in found:
        members = [graph.pes[n] for n in chain]
        internal = [graph.out_edges(n)[0] for n in chain[:-1]]
        fused = FusedPE(
            members,
            internal,
            stateful=any(n in stateful_names for n in chain),
        )
        fused.numprocesses = pin
        fused_by_name[fused.name] = fused
        for member in chain:
            member_to_fused[member] = fused.name

    rewritten = WorkflowGraph(graph.name)
    for name, pe in graph.pes.items():
        if name not in member_to_fused:
            rewritten.add(pe)
    for fused in fused_by_name.values():
        rewritten.add(fused)
    for edge in graph.edges:
        src_fused = member_to_fused.get(edge.src)
        dst_fused = member_to_fused.get(edge.dst)
        if src_fused is not None and src_fused == dst_fused:
            continue  # internal to one chain; lives inside the FusedPE
        src, src_port = edge.src, edge.src_port
        if src_fused is not None:
            src = src_fused
            src_port = fused_by_name[src_fused].exposed_port(edge.src, edge.src_port)
        dst = dst_fused if dst_fused is not None else edge.dst
        rewritten.connect(src, src_port, dst, edge.dst_port, grouping=edge.grouping)
    rewritten.validate()
    return FusionPlan(
        graph=rewritten,
        chains=tuple(tuple(chain) for chain, _pin in found),
        member_to_fused=member_to_fused,
    )


def fuse_graph(graph: WorkflowGraph) -> FusionPlan:
    """Collapse every maximal fusable chain of ``graph`` into a FusedPE.

    Returns a :class:`FusionPlan` whose ``graph`` is a *new*
    :class:`WorkflowGraph` sharing the unfused PEs with the input graph
    (PEs are templates; enactment deep-copies them per instance).  When no
    chain qualifies the input graph itself is returned unchanged, so
    ``fuse=True`` on a non-fusable workflow is byte-identical to
    ``fuse=False``.
    """
    return fuse_chains(graph, find_fusable_chains(graph))
