"""Cost-based graph planner: local rewrites under measured costs.

PR 4 special-cased exactly one graph transform -- maximal 1:1 chain
fusion -- inside the enactment layer.  This package generalizes it into a
rewrite-rule optimizer in the style of "Optimizing Stateful Dataflow with
Local Rewrites" (arXiv:2306.10585), with decisions driven by measured
per-PE costs (arXiv:2112.13875) rather than structure alone:

- :mod:`repro.planner.cost` -- the :class:`CostModel`: per-PE costs from
  a cheap sequential profiling dry-run, a prior run's fused-member
  attribution, or a uniform fallback.
- :mod:`repro.planner.rules` -- the :class:`RewriteRule` set: dead-output
  elimination, fan-out replication, grouping-corridor partial fusion, and
  chain fusion (PR 4's rewrite, relocated to
  :mod:`repro.planner.fusion`).
- :mod:`repro.planner.planner` -- the :class:`Planner` applying rules in
  order and pricing the result.
- :mod:`repro.planner.plan` -- the :class:`Plan` the mappings consume and
  ``repro plan`` explains.

The classic ``fuse=`` engine option is a byte-identical shim over
:meth:`Planner.fusion_only`; ``optimize=True|"auto"`` runs the full rule
set, with workflow outputs guaranteed unchanged (suggestions are advisory
and never auto-applied).
"""

from repro.planner.cost import CostModel, profile_graph
from repro.planner.fusion import (
    FusionPlan,
    find_fusable_chains,
    fuse_chains,
    fuse_graph,
)
from repro.planner.plan import Plan, RuleApplication
from repro.planner.planner import Planner
from repro.planner.rules import (
    ChainFusion,
    DeadOutputElimination,
    FanOutReplication,
    PartialFusion,
    PlanContext,
    RewriteResult,
    RewriteRule,
    default_rules,
)

__all__ = [
    "ChainFusion",
    "CostModel",
    "DeadOutputElimination",
    "FanOutReplication",
    "FusionPlan",
    "PartialFusion",
    "Plan",
    "PlanContext",
    "Planner",
    "RewriteResult",
    "RewriteRule",
    "RuleApplication",
    "default_rules",
    "find_fusable_chains",
    "fuse_chains",
    "fuse_graph",
    "profile_graph",
]
