"""The :class:`Plan`: a rewritten graph plus the evidence behind it.

A plan is what the planner hands the enactment layer -- and what
``repro plan`` prints to the user.  It carries the rewritten
:class:`~repro.core.graph.WorkflowGraph`, the trace of rules that fired,
the fused-chain bookkeeping the mappings need (input re-keying, member
attribution), predicted per-PE costs under the plan's
:class:`~repro.planner.cost.CostModel`, and advisory
``numprocesses``/``batch_size`` suggestions.

Suggestions are *advisory only*: applying them would change scheduling
and transport granularity, so the engine never auto-applies them --
``optimize="auto"`` must stay byte-identical in outputs to
``optimize=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.core.graph import WorkflowGraph
from repro.planner.cost import CostModel


@dataclass(frozen=True)
class RuleApplication:
    """One fired rewrite rule: its name and what it did."""

    rule: str
    detail: str


@dataclass(frozen=True)
class Plan:
    """Outcome of one planning pass over a workflow graph.

    Attributes
    ----------
    graph:
        The rewritten workflow (the input graph itself when no rule
        fired).
    original:
        The graph the plan was made from, for before/after reporting.
    steps:
        The rule trace, in application order.
    chains:
        Member names of every chain collapsed into a
        :class:`~repro.core.fusion.FusedPE`, across all fusing rules.
    member_to_fused:
        Member name -> fused PE name (used to re-key root input specs).
    cost:
        The cost model the rules decided under.
    predicted_costs:
        Final-graph PE name -> predicted total busy time in nominal
        seconds (per-invocation cost x estimated invocations).
    estimated_tuples:
        Final-graph PE name -> estimated invocation count.
    suggestions:
        Advisory knob choices (``numprocesses``, ``batch_size``); never
        auto-applied.
    counters:
        Counters the enactment stamps on the run when it applies this
        plan (``fused_chains``/``fused_members``, matching the classic
        fusion path byte-for-byte; ``planner_rules`` on optimizer plans).
    """

    graph: WorkflowGraph
    original: WorkflowGraph
    steps: Tuple[RuleApplication, ...] = ()
    chains: Tuple[Tuple[str, ...], ...] = ()
    member_to_fused: Dict[str, str] = field(default_factory=dict)
    cost: CostModel = field(default_factory=CostModel)
    predicted_costs: Dict[str, float] = field(default_factory=dict)
    estimated_tuples: Dict[str, float] = field(default_factory=dict)
    suggestions: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def transformed(self) -> bool:
        """Whether any rule changed the graph."""
        return bool(self.steps)

    @property
    def fused(self) -> bool:
        """Whether the plan's graph contains fused operators."""
        return bool(self.chains)

    def rename_inputs(self, provided: Mapping[str, Any]) -> Dict[str, Any]:
        """Re-key normalized root inputs onto the rewritten graph.

        Fused source PEs take their fusion's name; inputs for roots the
        plan pruned (dead-output elimination) are dropped.
        """
        renamed: Dict[str, Any] = {}
        for root, items in provided.items():
            target = self.member_to_fused.get(root, root)
            if target in self.graph.pes:
                renamed[target] = items
        return renamed

    def explain(self) -> str:
        """The human-readable explain-plan (what ``repro plan`` prints)."""
        lines = [
            f"plan for workflow {self.original.name!r}",
            f"cost model   : {self.cost.source}"
            + (
                f" ({self.cost.sampled} sample tuple(s) profiled)"
                if self.cost.sampled
                else ""
            ),
            f"graph        : {len(self.original.pes)} PEs / "
            f"{len(self.original.edges)} edges -> "
            f"{len(self.graph.pes)} PEs / {len(self.graph.edges)} edges",
        ]
        if self.steps:
            lines.append("rules fired  :")
            for i, step in enumerate(self.steps, 1):
                lines.append(f"  {i}. {step.rule}: {step.detail}")
        else:
            lines.append("rules fired  : none (graph already optimal under the rules)")
        if self.predicted_costs:
            lines.append("predicted costs (nominal s/tuple x est. tuples):")
            width = max(len(name) for name in self.predicted_costs)
            ranked = sorted(
                self.predicted_costs.items(), key=lambda kv: kv[1], reverse=True
            )
            for name, total in ranked:
                tuples = self.estimated_tuples.get(name, 0.0)
                per = total / tuples if tuples else 0.0
                lines.append(
                    f"  {name.ljust(width)}  {per:.6f} x {tuples:g} = {total:.4f}"
                )
        if self.suggestions:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(self.suggestions.items())
            )
            lines.append(f"suggestions  : {rendered} (advisory; not auto-applied)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Plan({self.original.name!r}, rules={len(self.steps)}, "
            f"{len(self.original.pes)}->{len(self.graph.pes)} PEs)"
        )
