"""Measured per-PE costs: the evidence the planner's rules act on.

Rewrite decisions (replicate this PE? suggest a bigger batch?) are driven
by *measured* costs rather than structural heuristics, in the spirit of
the throughput-optimal placement work (arXiv:2112.13875).  Three evidence
sources, best first:

1. :func:`profile_graph` -- a cheap sequential **profiling dry-run** in
   the style of the ``simple`` mapping: a handful of sample tuples are
   pushed through deep-copied PE instances on a private clock, and each
   member's wall time per invocation (normalized back to *nominal*
   seconds by the profiling time scale) plus its per-port emission rate
   (selectivity) are recorded.  The dry-run touches only copies, so it
   never perturbs the real enactment's state, RNG streams or outputs.
2. :meth:`CostModel.from_result` -- per-member attribution from a prior
   fused run (``RunResult.pe_times`` / ``member_tasks.*`` counters,
   PR 4's :class:`~repro.core.fusion.MemberMeter`).
3. :meth:`CostModel.uniform` -- the fallback when nothing was measured:
   every PE costs one unit, so structural rules still fire and the
   explain-plan is explicit about the guess (``source="uniform"``).

Costs are kept in nominal seconds per invocation, the same unit as the
platform profiles' ``queue_latency``, so "is this PE cheaper than the hop
it would save?" is a direct comparison.
"""

from __future__ import annotations

import copy
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.context import ExecutionContext
from repro.core.fusion import FusedPE
from repro.core.graph import WorkflowGraph
from repro.platforms.profiles import LAPTOP, PlatformProfile
from repro.runtime.clock import Clock

#: Sample tuples per source PE for the profiling dry-run.
DEFAULT_SAMPLE = 5

#: Time scale of the profiling clock: synthetic nominal-second workloads
#: replay at 1% speed during the dry-run, and measured wall time is
#: divided by this to recover nominal cost.
PROFILE_TIME_SCALE = 0.01


@dataclass(frozen=True)
class CostModel:
    """Per-PE cost estimates in nominal seconds per invocation.

    Attributes
    ----------
    per_tuple:
        PE name -> estimated nominal seconds of busy time per invocation.
    selectivity:
        ``(pe, out_port)`` -> average emissions per invocation on that
        port (how many downstream tuples one input fans into).
    hop_cost:
        Nominal seconds one inter-PE transport hop costs on the target
        platform (``queue_latency``); what fusion saves per removed edge
        and tuple.
    source:
        Where the numbers came from: ``"profile"``, ``"metrics"`` or
        ``"uniform"`` -- surfaced in the explain-plan so a guessed cost is
        never mistaken for a measured one.
    sampled:
        Tuples per root the profiling dry-run consumed (0 when not
        profiled).
    """

    per_tuple: Dict[str, float] = field(default_factory=dict)
    selectivity: Dict[Tuple[str, str], float] = field(default_factory=dict)
    hop_cost: float = LAPTOP.queue_latency
    source: str = "uniform"
    sampled: int = 0

    @classmethod
    def uniform(
        cls, graph: WorkflowGraph, platform: PlatformProfile = LAPTOP
    ) -> "CostModel":
        """Unmeasured fallback: one cost unit per PE, unit selectivity."""
        return cls(
            per_tuple={name: 1.0 for name in graph.pes},
            selectivity={
                (name, port): 1.0
                for name, pe in graph.pes.items()
                for port in pe.outputconnections
            },
            hop_cost=platform.queue_latency,
            source="uniform",
        )

    @classmethod
    def from_result(
        cls, result: Any, platform: PlatformProfile = LAPTOP
    ) -> Optional["CostModel"]:
        """Seed a model from a prior run's per-member attribution.

        Uses ``RunResult.pe_times`` (real busy seconds per member) and the
        ``member_tasks.<pe>`` counters from a fused run.  Returns ``None``
        when the result carries no attribution (unfused runs).
        """
        pe_times: Dict[str, float] = getattr(result, "pe_times", {}) or {}
        counters: Dict[str, int] = getattr(result, "counters", {}) or {}
        per_tuple: Dict[str, float] = {}
        for member, busy in pe_times.items():
            tasks = counters.get(f"member_tasks.{member}", 0)
            if tasks > 0:
                per_tuple[member] = busy / tasks
        if not per_tuple:
            return None
        return cls(
            per_tuple=per_tuple,
            hop_cost=platform.queue_latency,
            source="metrics",
        )

    def cost_of(self, pe_name: str) -> float:
        """Estimated nominal seconds one invocation of ``pe_name`` costs.

        A fused node's cost is the sum of its members' (the planner prices
        nodes of *rewritten* graphs against profiles of the original).
        Replica clones (``name~dst`` from fan-out replication) price as
        their template.
        """
        if pe_name in self.per_tuple:
            return self.per_tuple[pe_name]
        base = pe_name.split("~", 1)[0]
        return self.per_tuple.get(base, 1.0)

    def node_cost(self, pe: Any) -> float:
        if isinstance(pe, FusedPE):
            return sum(self.cost_of(name) for name in pe.member_names)
        return self.cost_of(pe.name)

    def out_selectivity(self, pe_name: str, port: str) -> float:
        if (pe_name, port) in self.selectivity:
            return self.selectivity[(pe_name, port)]
        base = pe_name.split("~", 1)[0]
        return self.selectivity.get((base, port), 1.0)

    def estimated_invocations(
        self, graph: WorkflowGraph, root_inputs: Optional[Dict[str, int]] = None
    ) -> Dict[str, float]:
        """Expected invocations per PE, propagated from the roots.

        ``root_inputs`` maps source PE name to its input-tuple count
        (defaulting to 1 per root); downstream counts follow the profiled
        per-port selectivities through the edges.  Works on original and
        rewritten graphs alike -- a fused node inherits its head member's
        inbound traffic.
        """
        counts: Dict[str, float] = {}
        root_inputs = root_inputs or {}
        for pe in graph.roots():
            counts[pe.name] = float(root_inputs.get(pe.name, 1))
        for name in graph.topological_order():
            counts.setdefault(name, 0.0)
            for edge in graph.out_edges(name):
                produced = counts[name] * self._edge_selectivity(graph, edge)
                counts[edge.dst] = counts.get(edge.dst, 0.0) + produced
        return counts

    def _edge_selectivity(self, graph: WorkflowGraph, edge: Any) -> float:
        pe = graph.pes.get(edge.src)
        if isinstance(pe, FusedPE):
            # Chain member selectivities through the fusion up to the
            # member owning the exposed port, then out of that port.
            owner, port = pe.collector_aliases.get(
                edge.src_port, (edge.src_port.split("__", 1)[0], edge.src_port)
            )
            rate = 1.0
            for member in pe.members:
                if member.name == owner:
                    break
                rate *= max(
                    (self.out_selectivity(member.name, p) for p in member.outputconnections),
                    default=1.0,
                )
            return rate * self.out_selectivity(owner, port)
        return self.out_selectivity(edge.src, edge.src_port)


def profile_graph(
    graph: WorkflowGraph,
    provided: Optional[Dict[str, List[Dict[str, Any]]]] = None,
    sample: int = DEFAULT_SAMPLE,
    platform: PlatformProfile = LAPTOP,
    seed: int = 0,
    time_scale: float = PROFILE_TIME_SCALE,
) -> CostModel:
    """Sequential profiling dry-run; returns a measured :class:`CostModel`.

    Pushes up to ``sample`` input mappings per source through *deep
    copies* of the PEs (the originals are templates and stay untouched),
    sequentially on a private clock at ``time_scale``, recording per-PE
    wall time and per-port emission counts.  Measured real seconds divide
    by ``time_scale`` to recover nominal cost, so synthetic
    ``compute()``/``io_wait()`` workloads price correctly however fast
    the dry-run replays them.

    Profiling is best-effort: any error inside a PE (sources that need
    inputs the sample cannot supply, un-copyable state, ...) degrades to
    the :meth:`CostModel.uniform` fallback instead of failing the plan.
    """
    try:
        return _profile(graph, provided, sample, platform, seed, time_scale)
    except Exception:
        return CostModel.uniform(graph, platform)


def _profile(
    graph: WorkflowGraph,
    provided: Optional[Dict[str, List[Dict[str, Any]]]],
    sample: int,
    platform: PlatformProfile,
    seed: int,
    time_scale: float,
) -> CostModel:
    from repro.core.concrete import instance_id

    graph.validate()
    ctx = ExecutionContext(
        clock=Clock(time_scale),
        cores=platform.make_core_limiter(),
        seed=seed,
        cpu_speed=platform.cpu_speed,
    )
    instances = {}
    for name, pe in graph.pes.items():
        clone = copy.deepcopy(pe)
        clone.instance_index = 0
        clone.num_instances = 1
        clone.instance_id = instance_id(name, 0)
        clone.ctx = ctx
        clone.rng = ctx.rng_for(clone.instance_id)
        instances[name] = clone
    order = graph.topological_order()
    for name in order:
        instances[name].preprocess()

    busy: Dict[str, float] = {name: 0.0 for name in graph.pes}
    invocations: Dict[str, int] = {name: 0 for name in graph.pes}
    emitted: Dict[Tuple[str, str], int] = {}
    consumed = 0

    fifo: Deque[Tuple[str, Dict[str, Any]]] = deque()
    for pe in graph.roots():
        items = (provided or {}).get(pe.name)
        if items is None:
            items = [{}]
        for item in list(items)[: max(0, sample)]:
            fifo.append((pe.name, copy.deepcopy(item)))
            consumed += 1

    def invoke(name: str, inputs: Dict[str, Any]) -> List[Tuple[str, Any]]:
        started = time.perf_counter()
        emissions = instances[name]._invoke(inputs)
        busy[name] += time.perf_counter() - started
        invocations[name] += 1
        return emissions

    def dispatch(name: str, emissions: List[Tuple[str, Any]]) -> None:
        for port, data in emissions:
            emitted[(name, port)] = emitted.get((name, port), 0) + 1
            for edge in graph.out_edges(name, port):
                fifo.append((edge.dst, {edge.dst_port: data}))

    while fifo:
        name, inputs = fifo.popleft()
        dispatch(name, invoke(name, inputs))
    # Flush aggregates so stateful tails get priced too (their postprocess
    # cost is amortized over the invocations that fed them).
    for name in order:
        started = time.perf_counter()
        emissions = instances[name]._flush_postprocess()
        busy[name] += time.perf_counter() - started
        dispatch(name, emissions)
        while fifo:
            dst, inputs = fifo.popleft()
            dispatch(dst, invoke(dst, inputs))

    per_tuple = {
        name: (busy[name] / invocations[name]) / time_scale
        for name in graph.pes
        if invocations[name] > 0
    }
    selectivity = {
        (name, port): emitted.get((name, port), 0) / invocations[name]
        for name, pe in graph.pes.items()
        if invocations[name] > 0
        for port in pe.outputconnections
    }
    if not per_tuple:
        return CostModel.uniform(graph, platform)
    return CostModel(
        per_tuple=per_tuple,
        selectivity=selectivity,
        hop_cost=platform.queue_latency,
        source="profile",
        sampled=consumed,
    )
