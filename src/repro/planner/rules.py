"""The planner's rewrite rules: small, semantics-preserving local rewrites.

Each rule inspects a :class:`~repro.core.graph.WorkflowGraph` under a
:class:`~repro.planner.cost.CostModel` and either returns a rewritten
graph (a :class:`RewriteResult`) or ``None`` when it has nothing to do --
the local-rewrite discipline of arXiv:2306.10585: every transform is
local, independently provably output-preserving, and produces an ordinary
``WorkflowGraph`` that any mapping enacts without special cases.

Built-in rules, in the order the default planner applies them:

1. :class:`DeadOutputElimination` -- prune result cones nothing consumes.
   Inert unless the caller names its ``wanted_outputs``: in this engine
   *every* unconnected port is collector-consumed by design, so only an
   explicit statement of which ``"<pe>.<port>"`` keys matter makes any
   output provably dead.  PEs without output ports are side-effecting
   sinks and are never pruned.
2. :class:`FanOutReplication` -- duplicate a cheap stateless PE into one
   copy per fan-out branch so each branch becomes a 1:1 chain the fusion
   rules can collapse.  Strictly opt-in: the PE must declare
   ``replicable = True`` (the author's statement that ``process()`` is
   deterministic given its input -- per-instance RNG streams make blind
   replication unsound).
3. :class:`PartialFusion` -- fuse across a *grouping corridor*: an
   ``A -> B`` hop whose GroupBy partitioning chain fusion must refuse
   (fusing erases the grouping) becomes fusable when A declares
   ``key_preserving = True`` and both sides pin the same instance count,
   because the partition an inbound tuple lands on is then exactly the
   partition its derived tuples would have been routed to.
4. :class:`ChainFusion` -- PR 4's maximal 1:1 chain fusion
   (:func:`repro.planner.fusion.fuse_graph`), running last so it sweeps
   up chains the earlier rules created.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.fusion import FusedPE
from repro.core.graph import WorkflowGraph
from repro.core.groupings import GroupBy, Grouping, Shuffle
from repro.planner.cost import CostModel
from repro.planner.fusion import _merge_pin, find_fusable_chains, fuse_chains


@dataclass(frozen=True)
class PlanContext:
    """Per-plan evidence the rules decide on."""

    cost: CostModel
    wanted_outputs: Optional[frozenset] = None


@dataclass(frozen=True)
class RewriteResult:
    """One rule's rewrite: the new graph plus bookkeeping for the plan."""

    graph: WorkflowGraph
    detail: str
    chains: Tuple[Tuple[str, ...], ...] = ()
    member_to_fused: Dict[str, str] = field(default_factory=dict)


class RewriteRule:
    """Protocol of a planner rewrite rule.

    ``apply`` returns a :class:`RewriteResult` with a *new* graph (input
    graphs and their PEs are never mutated -- boundary PEs that need
    altered attributes are deep-copied first), or ``None`` when the rule
    does not fire.  Rules must preserve the workflow's observable outputs:
    the multiset of collected data units per wanted results key.
    """

    name = "rewrite"

    def apply(
        self, graph: WorkflowGraph, ctx: PlanContext
    ) -> Optional[RewriteResult]:
        raise NotImplementedError


def _stateless_grouping(grouping: Optional[Grouping]) -> bool:
    return grouping is None or isinstance(grouping, Shuffle)


def _same_groupby(a: Optional[Grouping], b: Optional[Grouping]) -> bool:
    """Provably-equal partitioners: GroupBy on identical declared keys.

    Callable-keyed GroupBys compare equal only as the same object -- two
    distinct callables cannot be proven to partition identically.
    """
    if not isinstance(a, GroupBy) or not isinstance(b, GroupBy):
        return False
    if a is b:
        return True
    return a.keys is not None and a.keys == b.keys


class ChainFusion(RewriteRule):
    """Collapse maximal fusable 1:1 chains (the PR 4 rewrite as a rule).

    Chains containing an already-fused PE (from :class:`PartialFusion`)
    are left alone: fusions do not nest.
    """

    name = "chain_fusion"

    def apply(
        self, graph: WorkflowGraph, ctx: PlanContext
    ) -> Optional[RewriteResult]:
        found = [
            (chain, pin)
            for chain, pin in find_fusable_chains(graph)
            if not any(isinstance(graph.pes[n], FusedPE) for n in chain)
        ]
        if not found:
            return None
        plan = fuse_chains(graph, found)
        described = ", ".join("+".join(chain) for chain, _pin in found)
        return RewriteResult(
            graph=plan.graph,
            detail=f"fused {len(found)} chain(s): {described}",
            chains=plan.chains,
            member_to_fused=plan.member_to_fused,
        )


class DeadOutputElimination(RewriteRule):
    """Prune output cones nothing consumes; drop unwanted collector ports.

    Fires only when the plan names its ``wanted_outputs`` (a set of
    ``"<pe>.<port>"`` results keys): by default every unconnected port
    feeds the collector, so nothing is dead.  Given the wanted set:

    - *live* PEs are those with a wanted collector port or no output
      ports at all (side-effecting sinks), plus all their ancestors;
    - dead PEs -- whose entire downstream cone reaches no wanted output
      and no sink -- are removed along with their edges;
    - live PEs whose unwanted unconnected ports would still be collected
      are replaced by copies marking those ports ``collector_drops``
      (honoured by :func:`repro.mappings.base.dispatch_emissions`), so
      the run's outputs carry exactly the wanted keys.
    """

    name = "dead_output_elimination"

    def apply(
        self, graph: WorkflowGraph, ctx: PlanContext
    ) -> Optional[RewriteResult]:
        wanted = ctx.wanted_outputs
        if wanted is None:
            return None

        def collector_ports(name: str) -> List[str]:
            pe = graph.pes[name]
            return [p for p in pe.outputconnections if not graph.out_edges(name, p)]

        live = set()
        for name, pe in graph.pes.items():
            if not pe.outputconnections:
                live.add(name)  # side-effecting sink: never prune
            elif any(f"{name}.{port}" in wanted for port in collector_ports(name)):
                live.add(name)
        frontier = list(live)
        while frontier:
            name = frontier.pop()
            for edge in graph.in_edges(name):
                if edge.src not in live:
                    live.add(edge.src)
                    frontier.append(edge.src)
        if not live:
            # Nothing wanted matches this graph: refuse to empty it.
            return None
        dead = set(graph.pes) - live

        # Ports of live PEs that must not reach the collector: unwanted
        # unconnected ports, and ports whose every consumer is pruned.
        drops: Dict[str, set] = {}
        for name in live:
            pe = graph.pes[name]
            for port in pe.outputconnections:
                outs = graph.out_edges(name, port)
                if not outs:
                    if f"{name}.{port}" not in wanted:
                        drops.setdefault(name, set()).add(port)
                elif all(e.dst in dead for e in outs):
                    drops.setdefault(name, set()).add(port)
        if not dead and not drops:
            return None

        rewritten = WorkflowGraph(graph.name)
        for name, pe in graph.pes.items():
            if name in dead:
                continue
            if name in drops:
                pe = copy.deepcopy(pe)
                existing = set(getattr(pe, "collector_drops", ()) or ())
                pe.collector_drops = existing | drops[name]
            rewritten.add(pe)
        for edge in graph.edges:
            if edge.src in dead or edge.dst in dead:
                continue
            rewritten.connect(
                edge.src, edge.src_port, edge.dst, edge.dst_port,
                grouping=edge.grouping,
            )
        rewritten.validate()
        parts = []
        if dead:
            parts.append(f"pruned {len(dead)} dead PE(s): {', '.join(sorted(dead))}")
        if drops:
            dropped = sorted(
                f"{name}.{port}" for name, ports in drops.items() for port in ports
            )
            parts.append(f"dropped unwanted output(s): {', '.join(dropped)}")
        return RewriteResult(graph=rewritten, detail="; ".join(parts))


class FanOutReplication(RewriteRule):
    """Duplicate a cheap stateless PE into one copy per fan-out branch.

    A PE consumed by several downstream branches blocks chain fusion (its
    fan-out violates the 1:1 rule).  Replicating it -- one deep copy per
    destination, each keeping only the edges to that destination --
    recomputes the PE once per branch but turns every branch into a 1:1
    hop :class:`ChainFusion` can then collapse.

    Eligibility is deliberately strict; the PE must

    - declare ``replicable = True`` (its ``process()`` is a pure function
      of the input -- replicas run with distinct RNG streams),
    - be stateless, unpinned, non-root and not itself fused,
    - have only Shuffle/default groupings on every surrounding edge,
    - have every output port connected (replication must not create new
      collector keys; ports serving other branches are marked
      ``collector_drops`` on each copy),
    - profile as cheap: at most the median per-tuple cost, or twice the
      hop cost it helps remove, whichever is larger.
    """

    name = "fanout_replication"

    def apply(
        self, graph: WorkflowGraph, ctx: PlanContext
    ) -> Optional[RewriteResult]:
        stateful = {pe.name for pe in graph.stateful_pes()}
        measured = sorted(ctx.cost.per_tuple.values()) or [1.0]
        median = measured[len(measured) // 2]
        threshold = max(2 * ctx.cost.hop_cost, median)

        candidates: List[str] = []
        for name in graph.topological_order():
            pe = graph.pes[name]
            if not getattr(pe, "replicable", False):
                continue
            if isinstance(pe, FusedPE) or name in stateful:
                continue
            if pe.numprocesses is not None:
                continue
            ins = graph.in_edges(name)
            outs = graph.out_edges(name)
            if not ins or len(outs) < 2:
                continue
            if len({e.dst for e in outs}) < 2:
                continue  # parallel edges to one consumer: no branches to split
            if any(not graph.out_edges(name, p) for p in pe.outputconnections):
                continue  # an unconnected port would be double-collected
            if any(
                not _stateless_grouping(graph.effective_grouping(e))
                for e in list(ins) + list(outs)
            ):
                continue
            if ctx.cost.cost_of(name) > threshold:
                continue
            candidates.append(name)
        # Adjacent candidates would replicate into each other's copies;
        # keep the topologically-first of any adjacent pair.
        chosen: List[str] = []
        for name in candidates:
            neighbours = {e.src for e in graph.in_edges(name)}
            neighbours |= {e.dst for e in graph.out_edges(name)}
            if neighbours.isdisjoint(chosen):
                chosen.append(name)
        if not chosen:
            return None

        rewritten = WorkflowGraph(graph.name)
        clones_of: Dict[str, List[str]] = {}
        for name, pe in graph.pes.items():
            if name not in chosen:
                rewritten.add(pe)
                continue
            branch_dsts: List[str] = []
            for edge in graph.out_edges(name):
                if edge.dst not in branch_dsts:
                    branch_dsts.append(edge.dst)
            for dst in branch_dsts:
                clone = copy.deepcopy(pe)
                clone.name = f"{name}~{dst}"
                branch_ports = {
                    e.src_port for e in graph.out_edges(name) if e.dst == dst
                }
                clone.collector_drops = {
                    p for p in pe.outputconnections if p not in branch_ports
                }
                rewritten.add(clone)
                clones_of.setdefault(name, []).append(clone.name)
        for edge in graph.edges:
            if edge.src in chosen:
                # The branch copy serving this destination takes the edge.
                rewritten.connect(
                    f"{edge.src}~{edge.dst}", edge.src_port,
                    edge.dst, edge.dst_port, grouping=edge.grouping,
                )
            elif edge.dst in chosen:
                for clone_name in clones_of[edge.dst]:
                    rewritten.connect(
                        edge.src, edge.src_port, clone_name, edge.dst_port,
                        grouping=edge.grouping,
                    )
            else:
                rewritten.connect(
                    edge.src, edge.src_port, edge.dst, edge.dst_port,
                    grouping=edge.grouping,
                )
        rewritten.validate()
        described = ", ".join(
            f"{name} -> {len(clones_of[name])} copies" for name in chosen
        )
        return RewriteResult(
            graph=rewritten, detail=f"replicated {described}"
        )


class PartialFusion(RewriteRule):
    """Fuse grouping *corridors*: GroupBy hops that provably re-partition
    to the same instance.

    Chain fusion refuses to fuse across an instance-pinning grouping
    unless the chain runs on one instance, because fusing erases the
    re-partitioning the grouping performs.  The corridor case restores
    multi-instance fusion: for ``... =GroupBy(k)=> A =GroupBy(k)=> B``
    where

    - every inbound edge of A carries the *same declared* GroupBy key as
      the A->B edge,
    - A is stateless, declares ``key_preserving = True`` (the key of
      every tuple it emits equals the key of the tuple it consumed), and
    - A and B resolve to the same instance count (their ``numprocesses``
      pins, defaulting to 1 for the grouped-stateful side, are equal),

    a tuple of key ``k`` lands on instance ``h(k)`` of A, and every
    derived tuple would have been routed to instance ``h(k)`` of B --
    the very instance the fusion co-locates.  The A->B hop is therefore
    identity routing and can collapse, keeping B's state partitioning
    bit-for-bit.  The corridor then extends downstream over ordinary
    stateless 1:1 hops, like any fused chain.
    """

    name = "partial_fusion"

    def apply(
        self, graph: WorkflowGraph, ctx: PlanContext
    ) -> Optional[RewriteResult]:
        stateful = {pe.name for pe in graph.stateful_pes()}

        def pinned_instances(name: str) -> Optional[int]:
            pe = graph.pes[name]
            if name in stateful:
                return pe.numprocesses if pe.numprocesses is not None else 1
            return pe.numprocesses

        found: List[Tuple[List[str], Optional[int]]] = []
        claimed: set = set()
        for name in graph.topological_order():
            if name in claimed:
                continue
            head = graph.pes[name]
            if isinstance(head, FusedPE) or head.stateful:
                continue
            if not getattr(head, "key_preserving", False):
                continue
            outs = graph.out_edges(name)
            if len(outs) != 1:
                continue
            corridor_edge = outs[0]
            nxt = corridor_edge.dst
            if nxt in claimed or isinstance(graph.pes[nxt], FusedPE):
                continue
            if len(graph.in_edges(nxt)) != 1:
                continue
            corridor = graph.effective_grouping(corridor_edge)
            ins = graph.in_edges(name)
            if not ins or not all(
                _same_groupby(graph.effective_grouping(e), corridor) for e in ins
            ):
                continue
            pin_a = pinned_instances(name)
            pin_b = pinned_instances(nxt)
            if pin_b is None or (pin_a or 1) != pin_b:
                continue
            if pin_b == 1:
                continue  # single-instance corridors already fuse as chains
            chain = [name, nxt]
            pin: Optional[int] = pin_b
            # Extend downstream over ordinary stateless 1:1 shuffle hops.
            while True:
                tail_outs = graph.out_edges(chain[-1])
                if len(tail_outs) != 1:
                    break
                edge = tail_outs[0]
                dst = edge.dst
                if (
                    dst in claimed
                    or isinstance(graph.pes[dst], FusedPE)
                    or dst in stateful
                    or len(graph.in_edges(dst)) != 1
                    or not _stateless_grouping(graph.effective_grouping(edge))
                ):
                    break
                ok, merged = _merge_pin(pin, graph.pes[dst].numprocesses)
                if not ok:
                    break
                chain.append(dst)
                pin = merged
            found.append((chain, pin))
            claimed.update(chain)
        if not found:
            return None
        plan = fuse_chains(graph, found)
        described = ", ".join("+".join(chain) for chain, _pin in found)
        return RewriteResult(
            graph=plan.graph,
            detail=f"fused {len(found)} grouping corridor(s): {described}",
            chains=plan.chains,
            member_to_fused=plan.member_to_fused,
        )


def default_rules() -> List[RewriteRule]:
    """The default rule order: narrow first, then the greedy chain sweep."""
    return [
        DeadOutputElimination(),
        FanOutReplication(),
        PartialFusion(),
        ChainFusion(),
    ]
