"""The :class:`Planner`: rules + cost model -> :class:`Plan`.

One planning pass applies its rewrite rules once each, in order, to a
workflow graph, then prices the final graph under the cost model and
derives advisory knob suggestions.  Two stock configurations:

- :meth:`Planner.default` (also just ``Planner()``) -- the full rule set
  (:func:`repro.planner.rules.default_rules`), used by
  ``optimize=True|"auto"``.
- :meth:`Planner.fusion_only` -- exactly the chain-fusion rule with no
  profiling and no extra counters: the byte-identical engine behind the
  classic ``fuse=`` option.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional

from repro.core.graph import WorkflowGraph
from repro.planner.cost import CostModel, profile_graph
from repro.planner.plan import Plan, RuleApplication
from repro.planner.rules import PlanContext, RewriteRule, ChainFusion, default_rules
from repro.platforms.profiles import LAPTOP, PlatformProfile

#: Upper bound for the numprocesses suggestion (the paper's largest sweep).
MAX_SUGGESTED_PROCESSES = 16


class Planner:
    """Applies rewrite rules to workflow graphs under a cost model."""

    def __init__(
        self,
        rules: Optional[Iterable[RewriteRule]] = None,
        annotate: bool = True,
    ) -> None:
        self.rules: List[RewriteRule] = (
            list(rules) if rules is not None else default_rules()
        )
        #: Whether plans stamp planner bookkeeping counters on the run
        #: (``planner_rules``).  The fusion-only shim turns this off so the
        #: classic ``fuse=`` path keeps byte-identical counters.
        self.annotate = annotate

    @classmethod
    def default(cls) -> "Planner":
        return cls()

    @classmethod
    def fusion_only(cls) -> "Planner":
        """The ``fuse=`` shim: chain fusion alone, no planner annotations."""
        return cls(rules=[ChainFusion()], annotate=False)

    def plan(
        self,
        graph: WorkflowGraph,
        cost: Optional[CostModel] = None,
        provided: Optional[Dict[str, List[Dict[str, Any]]]] = None,
        prior: Optional[Any] = None,
        platform: PlatformProfile = LAPTOP,
        profile: bool = True,
        wanted_outputs: Optional[Iterable[str]] = None,
        seed: int = 0,
    ) -> Plan:
        """Plan one workflow graph.

        Parameters
        ----------
        graph:
            The abstract workflow to rewrite.  Never mutated.
        cost:
            A ready :class:`CostModel`; skips profiling when given.
        provided:
            Normalized root inputs (:func:`repro.mappings.base.
            normalize_inputs` form).  A small prefix seeds the profiling
            dry-run, and the per-root counts anchor the invocation
            estimates.
        prior:
            A previous :class:`~repro.metrics.result.RunResult`; its
            per-member ``pe_times``/``member_tasks`` attribution (from a
            fused run) overrides profiled per-tuple costs.
        platform:
            Target platform (hop cost, core budget for suggestions).
        profile:
            Run the profiling dry-run when no ``cost`` was given.  With
            ``False`` the model degrades to uniform costs (plus ``prior``
            metrics, if any).
        wanted_outputs:
            Results keys (``"<pe>.<port>"``) the caller consumes; enables
            dead-output elimination.
        seed:
            RNG seed for the profiling dry-run (PEs that draw randomness
            profile deterministically).
        """
        graph.validate()
        if cost is None:
            cost = (
                profile_graph(graph, provided=provided, platform=platform, seed=seed)
                if profile
                else CostModel.uniform(graph, platform)
            )
        if prior is not None:
            metrics = CostModel.from_result(prior, platform)
            if metrics is not None:
                merged = dict(cost.per_tuple)
                merged.update(metrics.per_tuple)
                cost = CostModel(
                    per_tuple=merged,
                    selectivity=cost.selectivity,
                    hop_cost=cost.hop_cost,
                    source=f"{cost.source}+metrics",
                    sampled=cost.sampled,
                )
        ctx = PlanContext(
            cost=cost,
            wanted_outputs=(
                frozenset(wanted_outputs) if wanted_outputs is not None else None
            ),
        )

        current = graph
        steps: List[RuleApplication] = []
        chains: List[tuple] = []
        member_to_fused: Dict[str, str] = {}
        for rule in self.rules:
            result = rule.apply(current, ctx)
            if result is None:
                continue
            current = result.graph
            steps.append(RuleApplication(rule=rule.name, detail=result.detail))
            chains.extend(result.chains)
            member_to_fused.update(result.member_to_fused)

        root_counts = self._root_counts(current, provided, member_to_fused)
        tuples = cost.estimated_invocations(current, root_counts)
        predicted = {
            name: cost.node_cost(pe) * tuples.get(name, 0.0)
            for name, pe in current.pes.items()
        }
        counters: Dict[str, int] = {}
        if chains:
            counters["fused_chains"] = len(chains)
            counters["fused_members"] = sum(len(c) for c in chains)
        if self.annotate and steps:
            counters["planner_rules"] = len(steps)
        return Plan(
            graph=current,
            original=graph,
            steps=tuple(steps),
            chains=tuple(tuple(c) for c in chains),
            member_to_fused=member_to_fused,
            cost=cost,
            predicted_costs=predicted,
            estimated_tuples=tuples,
            suggestions=self._suggest(predicted, cost, platform),
            counters=counters,
        )

    @staticmethod
    def _root_counts(
        graph: WorkflowGraph,
        provided: Optional[Dict[str, List[Dict[str, Any]]]],
        member_to_fused: Dict[str, str],
    ) -> Dict[str, int]:
        """Per-root input counts, re-keyed onto the rewritten graph."""
        counts: Dict[str, int] = {}
        for root, items in (provided or {}).items():
            target = member_to_fused.get(root, root)
            if target in graph.pes:
                counts[target] = counts.get(target, 0) + len(items)
        return counts

    @staticmethod
    def _suggest(
        predicted: Dict[str, float],
        cost: CostModel,
        platform: PlatformProfile,
    ) -> Dict[str, Any]:
        """Advisory knob choices from the predicted cost distribution.

        ``numprocesses``: pipeline throughput is bounded by the costliest
        node, so processes beyond total-work / bottleneck-work only idle;
        the suggestion is that ratio, clamped to the platform's cores.
        ``batch_size``: sized by how hop-dominated the workload is (hop
        cost relative to the mean per-node work per tuple) -- batching
        amortizes exactly the hop cost.
        """
        suggestions: Dict[str, Any] = {}
        total = sum(predicted.values())
        bottleneck = max(predicted.values(), default=0.0)
        if total > 0 and bottleneck > 0:
            processes = max(1, math.ceil(total / bottleneck))
            limit = MAX_SUGGESTED_PROCESSES
            if platform.cores is not None:
                limit = min(limit, platform.cores)
            suggestions["numprocesses"] = min(processes, limit)
        per_tuple = [v for v in cost.per_tuple.values() if v > 0]
        if per_tuple and cost.hop_cost > 0:
            ratio = cost.hop_cost / (sum(per_tuple) / len(per_tuple))
            if ratio >= 1.0:
                suggestions["batch_size"] = 32
            elif ratio >= 0.25:
                suggestions["batch_size"] = 8
            elif ratio >= 0.05:
                suggestions["batch_size"] = 2
            else:
                suggestions["batch_size"] = 1
        return suggestions
