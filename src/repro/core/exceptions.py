"""Exception hierarchy of the workflow engine."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all engine errors."""


class GraphError(ReproError):
    """Structural problem in a workflow graph (unknown PE, duplicate name...)."""


class PortError(GraphError):
    """Connection references an undeclared input or output port."""


class ValidationError(GraphError):
    """Graph failed validation (cycle, disconnected mandatory port...)."""


class MappingError(ReproError):
    """A mapping could not enact the workflow as configured."""


class InsufficientProcessesError(MappingError):
    """Fewer processes than the minimum the mapping requires.

    The static ``multi`` mapping needs at least one process per PE instance
    (the paper notes Seismic's 9 PEs force ``multi`` to start at 12
    processes, and Sentiment's pinned stateful instances force 14).
    """


class UnsupportedFeatureError(MappingError):
    """Workflow uses a feature the chosen mapping cannot handle.

    The flagship example from the paper: plain dynamic scheduling
    (``dyn_multi``/``dyn_redis``/their auto-scaling variants) "exclusively
    manages stateless PEs and lacks support for grouping" -- enacting a
    stateful workflow with them raises this error, and ``hybrid_redis``
    (Section 3.1.2) is the mapping that lifts the restriction.
    """
