"""The abstract workflow: a DAG of PEs connected port-to-port.

Users build a :class:`WorkflowGraph` by adding PEs and connecting output
ports to input ports, optionally attaching a grouping to the connection
(edge-level groupings override port-level declarations).  The graph is the
*abstract workflow* of the paper's Figure 1; mappings translate it into a
concrete workflow via :mod:`repro.core.partition` and
:mod:`repro.core.concrete`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

import networkx as nx

from repro.core.exceptions import GraphError, PortError, ValidationError
from repro.core.groupings import Grouping, as_grouping
from repro.core.pe import GenericPE


@dataclass(frozen=True)
class Edge:
    """A directed connection from an output port to an input port."""

    src: str
    src_port: str
    dst: str
    dst_port: str
    grouping: Optional[Grouping] = field(default=None, compare=False)

    def __repr__(self) -> str:
        grouping = f" [{self.grouping!r}]" if self.grouping is not None else ""
        return f"{self.src}.{self.src_port} -> {self.dst}.{self.dst_port}{grouping}"


PELike = Union[str, GenericPE]


class WorkflowGraph:
    """A directed acyclic graph of processing elements."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self.pes: Dict[str, GenericPE] = {}
        self.edges: List[Edge] = []

    # ---------------------------------------------------------------- build
    def add(self, pe: GenericPE) -> GenericPE:
        """Register a PE; names must be unique within the graph.

        A colliding *auto-generated* name (``Double0`` from an unnamed
        ``Double()``) is deterministically re-slotted to the next free
        ``ClassName<i>`` within this graph, so graph construction does not
        depend on how many unnamed PEs earlier code created.  Colliding
        user-chosen names stay an error.
        """
        if not isinstance(pe, GenericPE):
            raise GraphError(f"expected a GenericPE, got {type(pe).__name__}")
        existing = self.pes.get(pe.name)
        if existing is not None and existing is not pe:
            # Renaming is only safe while no other graph references the PE
            # by its current name (edges and input specs key on names).
            if getattr(pe, "_auto_named", False) and not getattr(pe, "_in_graph", False):
                index = 0
                while f"{type(pe).__name__}{index}" in self.pes:
                    index += 1
                pe.name = f"{type(pe).__name__}{index}"
            else:
                raise GraphError(
                    f"duplicate PE name {pe.name!r} in graph {self.name!r}"
                )
        self.pes[pe.name] = pe
        pe._in_graph = True
        return pe

    def _resolve(self, pe: PELike) -> GenericPE:
        if isinstance(pe, GenericPE):
            self.add(pe)
            return pe
        resolved = self.pes.get(pe)
        if resolved is None:
            raise GraphError(f"unknown PE {pe!r} in graph {self.name!r}")
        return resolved

    def connect(
        self,
        src: PELike,
        src_port: str,
        dst: PELike,
        dst_port: str,
        grouping: Any = None,
    ) -> Edge:
        """Connect ``src.src_port`` to ``dst.dst_port``.

        ``grouping`` accepts anything :func:`repro.core.groupings.as_grouping`
        understands and overrides any grouping declared on the destination
        port.
        """
        src_pe = self._resolve(src)
        dst_pe = self._resolve(dst)
        if src_port not in src_pe.outputconnections:
            raise PortError(f"PE {src_pe.name!r} has no output port {src_port!r}")
        if dst_port not in dst_pe.inputconnections:
            raise PortError(f"PE {dst_pe.name!r} has no input port {dst_port!r}")
        edge = Edge(
            src=src_pe.name,
            src_port=src_port,
            dst=dst_pe.name,
            dst_port=dst_port,
            grouping=as_grouping(grouping) if grouping is not None else None,
        )
        self.edges.append(edge)
        return edge

    @classmethod
    def from_chain(cls, *chains: Any, name: str = "workflow") -> "WorkflowGraph":
        """Build a graph from fluent chains (``a >> b >> c``).

        Multiple chains merge: PEs are deduplicated by identity and links
        shared between chains (a common branching prefix) appear once.
        Accepts bare PEs too, so a single-PE workflow needs no chain.
        """
        from repro.core.fluent import Chain

        graph = cls(name)
        for chain in chains:
            if isinstance(chain, GenericPE):
                graph.add(chain)
            elif isinstance(chain, Chain):
                chain.apply_to(graph)
            else:
                raise GraphError(
                    f"from_chain expects chains or PEs, got {type(chain).__name__}"
                )
        return graph

    # ---------------------------------------------------------------- query
    def pe(self, name: str) -> GenericPE:
        try:
            return self.pes[name]
        except KeyError:
            raise GraphError(f"unknown PE {name!r} in graph {self.name!r}") from None

    def out_edges(self, pe_name: str, port: Optional[str] = None) -> List[Edge]:
        return [
            e
            for e in self.edges
            if e.src == pe_name and (port is None or e.src_port == port)
        ]

    def in_edges(self, pe_name: str, port: Optional[str] = None) -> List[Edge]:
        return [
            e
            for e in self.edges
            if e.dst == pe_name and (port is None or e.dst_port == port)
        ]

    def roots(self) -> List[GenericPE]:
        """PEs with no incoming edges (the workflow sources)."""
        with_inputs = {e.dst for e in self.edges}
        return [pe for name, pe in self.pes.items() if name not in with_inputs]

    def sinks(self) -> List[GenericPE]:
        with_outputs = {e.src for e in self.edges}
        return [pe for name, pe in self.pes.items() if name not in with_outputs]

    def effective_grouping(self, edge: Edge) -> Optional[Grouping]:
        """Edge grouping if given, else the destination port's declaration."""
        if edge.grouping is not None:
            return edge.grouping
        return self.pe(edge.dst).input_grouping(edge.dst_port)

    def is_stateful(self) -> bool:
        """True if any PE is stateful or any connection pins instances."""
        if any(pe.is_stateful() for pe in self.pes.values()):
            return True
        return any(
            (g := self.effective_grouping(e)) is not None and g.requires_state
            for e in self.edges
        )

    def stateful_pes(self) -> List[GenericPE]:
        """PEs that must keep pinned state (flagged, or state-pinning inputs)."""
        result = []
        for name, pe in self.pes.items():
            pinned = pe.is_stateful() or any(
                (g := self.effective_grouping(e)) is not None and g.requires_state
                for e in self.in_edges(name)
            )
            if pinned:
                result.append(pe)
        return result

    # ------------------------------------------------------------- structure
    def to_networkx(self) -> "nx.MultiDiGraph":
        graph = nx.MultiDiGraph(name=self.name)
        for name in self.pes:
            graph.add_node(name)
        for edge in self.edges:
            graph.add_edge(edge.src, edge.dst, src_port=edge.src_port, dst_port=edge.dst_port)
        return graph

    def topological_order(self) -> List[str]:
        graph = self.to_networkx()
        try:
            return list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible as exc:
            raise ValidationError(f"workflow {self.name!r} contains a cycle") from exc

    def validate(self) -> None:
        """Raise :class:`ValidationError` on structural problems.

        Checks: at least one PE, acyclicity, at least one source, and that
        every PE with declared inputs is reachable (has at least one
        incoming connection per used port is *not* required -- optional
        inputs are legal -- but fully disconnected non-root PEs are almost
        certainly bugs).
        """
        if not self.pes:
            raise ValidationError(f"workflow {self.name!r} has no PEs")
        self.topological_order()  # raises on cycles
        roots = self.roots()
        if not roots:
            raise ValidationError(f"workflow {self.name!r} has no source PE")
        connected = {e.src for e in self.edges} | {e.dst for e in self.edges}
        for name in self.pes:
            # Roots may declare input ports (the engine drives them), but a
            # PE with no connections at all in a multi-PE graph is a bug.
            if len(self.pes) > 1 and name not in connected:
                raise ValidationError(
                    f"PE {name!r} is disconnected from workflow {self.name!r}"
                )

    def __repr__(self) -> str:
        return (
            f"WorkflowGraph({self.name!r}, pes={len(self.pes)}, edges={len(self.edges)})"
        )
