"""Concrete workflow: instance tables and grouping-aware routing.

The concrete workflow (Figure 1, right side) is what a mapping actually
enacts: each PE is replicated into ``allocation[pe]`` instances, and every
connection gets a router that turns "PE A emitted ``x`` on port ``out``"
into a list of ``(destination PE, input port, destination instance index)``
deliveries, honouring the connection's grouping.

Router state (round-robin counters) is kept per (edge, source instance) so
each producer instance distributes independently -- the behaviour separate
OS processes would naturally have.  In dynamic mappings many worker threads
emit on behalf of the same conceptual source, so router state access is
lock-protected.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.exceptions import GraphError
from repro.core.graph import Edge, WorkflowGraph
from repro.core.groupings import Grouping, Shuffle
from repro.core.partition import allocate_instances


def instance_id(pe_name: str, index: int) -> str:
    """Canonical instance identifier, e.g. ``"filterColumns.2"``."""
    return f"{pe_name}.{index}"


@dataclass(frozen=True)
class Delivery:
    """One routed data unit: destination PE/port/instance plus payload."""

    dst: str
    dst_port: str
    dst_index: int
    data: Any


class EdgeRouter:
    """Routes data units across one connection, honouring its grouping."""

    def __init__(self, edge: Edge, grouping: Optional[Grouping], n_dst: int) -> None:
        if n_dst < 1:
            raise GraphError(f"edge {edge!r} routed to {n_dst} instances")
        self.edge = edge
        self.grouping = grouping if grouping is not None else Shuffle()
        self.n_dst = n_dst
        self._states: Dict[str, Optional[dict]] = {}
        self._lock = threading.Lock()

    def route(self, src_instance: str, data: Any) -> List[Delivery]:
        """Deliveries for one data unit emitted by ``src_instance``."""
        with self._lock:
            state = self._states.get(src_instance)
            if state is None and src_instance not in self._states:
                state = self.grouping.new_state()
                self._states[src_instance] = state
            indices = self.grouping.route(data, self.n_dst, state)
        return [
            Delivery(self.edge.dst, self.edge.dst_port, index, data)
            for index in indices
        ]


class ConcreteWorkflow:
    """Instance counts + routing tables for one enactment.

    Parameters
    ----------
    graph:
        The validated abstract workflow.
    allocation:
        PE name -> instance count.  Use :func:`from_static` for the paper's
        static rule, or :func:`single_instance` for dynamic mappings (where
        every PE conceptually has one logical queue and any worker may
        execute it).
    """

    def __init__(self, graph: WorkflowGraph, allocation: Dict[str, int]) -> None:
        graph.validate()
        for name in graph.pes:
            if allocation.get(name, 0) < 1:
                raise GraphError(f"PE {name!r} allocated no instances")
        self.graph = graph
        self.allocation = dict(allocation)
        self._routers: Dict[Tuple[str, str, str, str], EdgeRouter] = {}
        for edge in graph.edges:
            grouping = graph.effective_grouping(edge)
            key = (edge.src, edge.src_port, edge.dst, edge.dst_port)
            self._routers[key] = EdgeRouter(edge, grouping, allocation[edge.dst])

    # ------------------------------------------------------------- factories
    @classmethod
    def from_static(cls, graph: WorkflowGraph, num_processes: int) -> "ConcreteWorkflow":
        """Concrete workflow under the static allocation rule (Figure 1)."""
        allocation, _idle = allocate_instances(graph, num_processes)
        return cls(graph, allocation)

    @classmethod
    def single_instance(cls, graph: WorkflowGraph) -> "ConcreteWorkflow":
        """One logical instance per PE (dynamic mappings)."""
        return cls(graph, {name: 1 for name in graph.pes})

    # ---------------------------------------------------------------- lookup
    def instances_of(self, pe_name: str) -> List[str]:
        return [instance_id(pe_name, i) for i in range(self.allocation[pe_name])]

    def all_instances(self) -> List[Tuple[str, int]]:
        """Every (pe_name, index) pair in topological order."""
        result = []
        for name in self.graph.topological_order():
            for index in range(self.allocation[name]):
                result.append((name, index))
        return result

    def total_instances(self) -> int:
        return sum(self.allocation.values())

    def router(self, edge: Edge) -> EdgeRouter:
        return self._routers[(edge.src, edge.src_port, edge.dst, edge.dst_port)]

    # ---------------------------------------------------------------- routing
    def route_output(
        self, src_pe: str, src_index: int, out_port: str, data: Any
    ) -> List[Delivery]:
        """All deliveries caused by one emission.

        An output port may fan out to several connections; each connection
        routes independently (possibly duplicating the data unit, as in
        dispel4py).
        """
        source = instance_id(src_pe, src_index)
        deliveries: List[Delivery] = []
        for edge in self.graph.out_edges(src_pe, out_port):
            deliveries.extend(self.router(edge).route(source, data))
        return deliveries

    def __repr__(self) -> str:
        return (
            f"ConcreteWorkflow({self.graph.name!r}, "
            f"instances={self.total_instances()})"
        )
