"""Abstract-to-concrete instance allocation (the static deployment rule).

The paper's Figure 1 illustrates the native static allocation: mapping a
4-PE workflow onto 12 processes assigns the first (source) PE a single
process and divides the remaining 11 evenly among the other PEs (3 each),
leaving 2 processes idle.  This module implements exactly that rule,
generalized to honour explicit ``numprocesses`` pins (the Sentiment
workflow pins ``happy State`` to 4 instances and ``top 3 happiest`` to 2).

The inefficiency of the leftover idle processes is deliberate -- it is the
motivation the paper gives for dynamic scheduling and auto-scaling.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.exceptions import InsufficientProcessesError
from repro.core.graph import WorkflowGraph


def minimum_processes(graph: WorkflowGraph) -> int:
    """Smallest process count the static allocation can work with.

    Every unpinned PE needs at least one instance (sources are capped at
    exactly one by :func:`allocate_instances`, which does not change the
    floor); pinned PEs need their requested count.  Operator fusion
    (:mod:`repro.core.fusion`) lowers this floor by collapsing chains into
    single PEs before allocation.
    """
    return sum(
        pe.numprocesses if pe.numprocesses is not None else 1
        for pe in graph.pes.values()
    )


def allocate_instances(
    graph: WorkflowGraph, num_processes: int
) -> Tuple[Dict[str, int], int]:
    """Static allocation of ``num_processes`` to PE instances.

    Returns ``(allocation, idle)`` where ``allocation`` maps PE name to
    instance count and ``idle`` is the number of processes left unused by
    the floor division (Figure 1's two idle cores).

    Raises
    ------
    InsufficientProcessesError
        If the graph cannot fit: every PE needs at least one instance and
        pinned PEs need their requested count.
    """
    if num_processes < 1:
        raise InsufficientProcessesError("need at least one process")
    graph.validate()

    allocation: Dict[str, int] = {}
    roots = {pe.name for pe in graph.roots()}
    flexible = []
    fixed_total = 0
    for name, pe in graph.pes.items():
        if pe.numprocesses is not None:
            if pe.numprocesses < 1:
                raise InsufficientProcessesError(
                    f"PE {name!r} requests {pe.numprocesses} instances"
                )
            allocation[name] = pe.numprocesses
            fixed_total += pe.numprocesses
        elif name in roots:
            # Sources read sequential external input; one instance (Fig. 1).
            allocation[name] = 1
            fixed_total += 1
        else:
            flexible.append(name)

    remaining = num_processes - fixed_total
    if flexible:
        per_pe = remaining // len(flexible)
        if per_pe < 1:
            raise InsufficientProcessesError(
                f"workflow {graph.name!r} needs at least "
                f"{minimum_processes(graph)} processes, got {num_processes}"
            )
        for name in flexible:
            allocation[name] = per_pe
        idle = remaining - per_pe * len(flexible)
    else:
        if remaining < 0:
            raise InsufficientProcessesError(
                f"workflow {graph.name!r} needs at least {fixed_total} "
                f"processes, got {num_processes}"
            )
        idle = remaining
    return allocation, idle
