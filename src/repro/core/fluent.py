"""Fluent, operator-based workflow construction.

This module implements the composable layer on top of the classic
``graph.connect(src, "output", dst, "input")`` string API.  The building
blocks:

- ``a >> b`` chains two PEs through their default ports (the sole port, or
  the conventional ``output``/``input`` name when several are declared).
- ``a.out("x") >> b.in_("left")`` wires named ports explicitly.
- ``a >> GroupBy("state") >> b`` attaches a grouping to the next
  connection inline.
- ``a >> b`` returns a :class:`Chain` -- an immutable description of PEs
  and links that can keep growing (every ``>>`` returns a *new* chain, so
  a prefix can be reused to branch) and is turned into a
  :class:`~repro.core.graph.WorkflowGraph` by
  :meth:`WorkflowGraph.from_chain` or the :class:`Pipeline` builder.

Everything bottoms out in :meth:`WorkflowGraph.add` /
:meth:`WorkflowGraph.connect`, so fluent and string-based construction can
be mixed freely and produce identical graphs.

Example::

    from repro import Pipeline, GroupBy

    graph = Pipeline("wordcount").then(
        reader >> tokenize >> GroupBy([0]) >> count
    ).build()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Tuple

from repro.core.exceptions import GraphError, PortError
from repro.core.groupings import Grouping
from repro.core.pe import GenericPE

if TYPE_CHECKING:
    from repro.core.graph import WorkflowGraph


def default_output_port(pe: GenericPE) -> str:
    """The port ``a >> b`` reads from: ``output`` if declared, else the sole
    output port."""
    ports = pe.outputconnections
    if GenericPE.OUTPUT_NAME in ports:
        return GenericPE.OUTPUT_NAME
    if len(ports) == 1:
        return next(iter(ports))
    names = sorted(ports) if ports else "none"
    raise PortError(
        f"cannot infer the output port of PE {pe.name!r} (ports: {names}); "
        f"select one explicitly with pe.out(name)"
    )


def default_input_port(pe: GenericPE) -> str:
    """The port ``a >> b`` feeds into: ``input`` if declared, else the sole
    input port."""
    ports = pe.inputconnections
    if GenericPE.INPUT_NAME in ports:
        return GenericPE.INPUT_NAME
    if len(ports) == 1:
        return next(iter(ports))
    names = sorted(ports) if ports else "none"
    raise PortError(
        f"cannot infer the input port of PE {pe.name!r} (ports: {names}); "
        f"select one explicitly with pe.in_(name)"
    )


class OutPort:
    """A named output port of a PE, usable as a chain source: ``pe.out("x")``."""

    __slots__ = ("pe", "port")

    def __init__(self, pe: GenericPE, port: str) -> None:
        if port not in pe.outputconnections:
            raise PortError(f"PE {pe.name!r} has no output port {port!r}")
        self.pe = pe
        self.port = port

    def __rshift__(self, other: Any) -> "Chain":
        return Chain._start(self.pe, self.port) >> other

    def __repr__(self) -> str:
        return f"{self.pe.name}.out({self.port!r})"


class InPort:
    """A named input port of a PE, usable as a chain target: ``pe.in_("x")``."""

    __slots__ = ("pe", "port")

    def __init__(self, pe: GenericPE, port: str) -> None:
        if port not in pe.inputconnections:
            raise PortError(f"PE {pe.name!r} has no input port {port!r}")
        self.pe = pe
        self.port = port

    def __repr__(self) -> str:
        return f"{self.pe.name}.in_({self.port!r})"


class Link:
    """One pending connection of a chain (resolved PE objects and ports)."""

    __slots__ = ("src", "src_port", "dst", "dst_port", "grouping")

    def __init__(
        self,
        src: GenericPE,
        src_port: str,
        dst: GenericPE,
        dst_port: str,
        grouping: Optional[Grouping],
    ) -> None:
        self.src = src
        self.src_port = src_port
        self.dst = dst
        self.dst_port = dst_port
        self.grouping = grouping

    def key(self) -> Tuple[int, str, int, str, int]:
        """Identity key used to deduplicate links shared by merged chains.

        Includes the grouping's identity: branches reusing a shared prefix
        carry the *same* Link (and grouping) object and collapse to one
        edge, while two deliberately distinct wirings of the same ports
        with different groupings both survive (matching ``connect()``,
        which would create both edges).
        """
        return (
            id(self.src), self.src_port, id(self.dst), self.dst_port,
            id(self.grouping),
        )

    def __repr__(self) -> str:
        grouping = f" [{self.grouping!r}]" if self.grouping is not None else ""
        return (
            f"{self.src.name}.{self.src_port} -> "
            f"{self.dst.name}.{self.dst_port}{grouping}"
        )


class Chain:
    """An immutable, growable description of connected PEs.

    Chains are produced by the ``>>`` operator and consumed by
    :meth:`WorkflowGraph.from_chain` / :class:`Pipeline`.  Because every
    operation returns a fresh chain, a shared prefix can branch::

        head = source >> parse
        left = head >> enrich >> sink_a
        right = head >> audit_sink
        graph = WorkflowGraph.from_chain(left, right, name="fanout")

    Merged chains deduplicate the links they share, so the common prefix
    appears once in the final graph.
    """

    __slots__ = ("pes", "links", "head", "tail", "tail_port", "pending")

    def __init__(
        self,
        pes: Tuple[GenericPE, ...],
        links: Tuple[Link, ...],
        head: GenericPE,
        tail: GenericPE,
        tail_port: Optional[str],
        pending: Optional[Grouping] = None,
    ) -> None:
        self.pes = pes
        self.links = links
        self.head = head
        self.tail = tail
        self.tail_port = tail_port
        self.pending = pending

    # ------------------------------------------------------------ construction
    @classmethod
    def _start(cls, pe: GenericPE, port: Optional[str] = None) -> "Chain":
        return cls(pes=(pe,), links=(), head=pe, tail=pe, tail_port=port)

    def _with_pes(self, *new: GenericPE) -> Tuple[GenericPE, ...]:
        """self.pes plus any of ``new`` not already present (by identity)."""
        pes = self.pes
        for pe in new:
            if not any(existing is pe for existing in pes):
                pes = pes + (pe,)
        return pes

    def _extend(
        self,
        dst: GenericPE,
        dst_port: Optional[str],
        next_tail_port: Optional[str] = None,
    ) -> "Chain":
        src_port = self.tail_port or default_output_port(self.tail)
        link = Link(
            src=self.tail,
            src_port=src_port,
            dst=dst,
            dst_port=dst_port or default_input_port(dst),
            grouping=self.pending,
        )
        return Chain(
            pes=self._with_pes(dst),
            links=self.links + (link,),
            head=self.head,
            tail=dst,
            tail_port=next_tail_port,
        )

    def _with_grouping(self, grouping: Grouping) -> "Chain":
        if self.pending is not None:
            raise GraphError(
                f"two groupings in a row after PE {self.tail.name!r}; "
                f"attach exactly one grouping per connection"
            )
        return Chain(
            pes=self.pes,
            links=self.links,
            head=self.head,
            tail=self.tail,
            tail_port=self.tail_port,
            pending=grouping,
        )

    def _union(self, other: "Chain") -> "Chain":
        """Merge another chain's PEs and links into this one (no bridge).

        Used when the chains share PEs -- the common prefix/joint appears
        once; a pending grouping on either side has no connection to bind
        to and is an error.
        """
        if other.pending is not None:
            raise GraphError("cannot merge a chain that ends with a grouping")
        if self.pending is not None:
            raise GraphError(
                f"the pending grouping after PE {self.tail.name!r} has no "
                f"connection to attach to: the merged chain starts at "
                f"{other.head.name!r}, which this chain already contains"
            )
        seen = {link.key() for link in self.links}
        links = self.links + tuple(
            link for link in other.links if link.key() not in seen
        )
        return Chain(
            pes=self._with_pes(*other.pes),
            links=links,
            head=self.head,
            tail=other.tail,
            tail_port=other.tail_port,
        )

    def _join(self, other: "Chain") -> "Chain":
        if other.pending is not None:
            raise GraphError("cannot join a chain that ends with a grouping")
        if any(existing is other.head for existing in self.pes):
            # The joined chain starts at a PE we already contain (e.g.
            # c1 = a >> b; c2 = b >> c; c1 >> c2): merge the link sets at
            # the shared PE instead of bridging tail-to-head, which would
            # fabricate a spurious edge (and usually a cycle).
            return self._union(other)
        bridge = Link(
            src=self.tail,
            src_port=self.tail_port or default_output_port(self.tail),
            dst=other.head,
            dst_port=default_input_port(other.head),
            grouping=self.pending,
        )
        return Chain(
            pes=self._with_pes(*other.pes),
            links=self.links + (bridge,) + other.links,
            head=self.head,
            tail=other.tail,
            tail_port=other.tail_port,
        )

    def __rshift__(self, other: Any) -> "Chain":
        if isinstance(other, Grouping):
            return self._with_grouping(other)
        if isinstance(other, GenericPE):
            return self._extend(other, None)
        if isinstance(other, InPort):
            return self._extend(other.pe, other.port)
        if isinstance(other, OutPort):
            # `a >> b.out("x")`: connect to b's default input, continue from x.
            return self._extend(other.pe, None, next_tail_port=other.port)
        if isinstance(other, Chain):
            return self._join(other)
        raise TypeError(
            f"cannot chain {other!r} with >>; expected a PE, pe.out(...)/"
            f"pe.in_(...), a Grouping, or another chain"
        )

    # ------------------------------------------------------------- realisation
    def apply_to(self, graph: "WorkflowGraph") -> "WorkflowGraph":
        """Materialise this chain's PEs and links into ``graph``."""
        if self.pending is not None:
            raise GraphError(
                f"chain ends with a dangling grouping after PE "
                f"{self.tail.name!r}; connect it to a destination PE"
            )
        existing = {
            (graph.pe(e.src), e.src_port, graph.pe(e.dst), e.dst_port, id(e.grouping))
            for e in graph.edges
        }
        for pe in self.pes:
            graph.add(pe)
        for link in self.links:
            if (
                link.src, link.src_port, link.dst, link.dst_port,
                id(link.grouping),
            ) in existing:
                continue
            graph.connect(
                link.src, link.src_port, link.dst, link.dst_port,
                grouping=link.grouping,
            )
        return graph

    def graph(self, name: str = "workflow") -> "WorkflowGraph":
        """Build a fresh :class:`WorkflowGraph` from this chain alone."""
        from repro.core.graph import WorkflowGraph

        return WorkflowGraph.from_chain(self, name=name)

    def __repr__(self) -> str:
        path = " >> ".join(pe.name for pe in self.pes)
        return f"Chain({path}, links={len(self.links)})"


Chainable = Any
"""Anything `then`/`>>` accepts: PE, Chain, OutPort, InPort, or Grouping."""


class Pipeline:
    """Incremental builder producing a :class:`WorkflowGraph`.

    ``Pipeline("demo").then(a).then(b, c)`` connects the stages in order
    through their default ports; a stage may itself be a chain or a
    grouping (applied to the following connection)::

        pipeline = (
            Pipeline("sentiment")
            .then(reader >> tokenize)
            .then(GroupBy(["state"]))
            .then(score)
        )
        result = engine.run(pipeline, inputs=100)

    :meth:`build` validates and returns the underlying graph; engines also
    accept the pipeline object directly.
    """

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self._chain: Optional[Chain] = None

    @classmethod
    def from_chain(cls, *chains: Chainable, name: str = "pipeline") -> "Pipeline":
        """Wrap one or more prebuilt chains (merged, deduplicated)."""
        pipeline = cls(name)
        for chain in chains:
            pipeline.then(chain)
        return pipeline

    def then(self, *stages: Chainable) -> "Pipeline":
        """Append stages, connecting each to the current tail via ``>>``."""
        for stage in stages:
            if self._chain is None:
                self._chain = self._as_chain(stage)
            elif isinstance(stage, Chain) and self._overlaps(stage):
                # A branch sharing PEs with what we already have: merge the
                # link sets instead of bridging tail-to-head.
                self._chain = self._merge(stage)
            else:
                self._chain = self._chain >> stage
        return self

    def _as_chain(self, stage: Chainable) -> Chain:
        if isinstance(stage, Chain):
            return stage
        if isinstance(stage, GenericPE):
            return Chain._start(stage)
        if isinstance(stage, OutPort):
            return Chain._start(stage.pe, stage.port)
        if isinstance(stage, Grouping):
            raise GraphError(
                f"pipeline {self.name!r} cannot start with a grouping; "
                f"add a source PE first"
            )
        raise TypeError(f"cannot use {stage!r} as a pipeline stage")

    def _overlaps(self, chain: Chain) -> bool:
        assert self._chain is not None
        ours = {id(pe) for pe in self._chain.pes}
        return any(id(pe) in ours for pe in chain.pes)

    def _merge(self, chain: Chain) -> Chain:
        assert self._chain is not None
        return self._chain._union(chain)

    def build(self, validate: bool = True) -> "WorkflowGraph":
        """Materialise the pipeline into a validated workflow graph."""
        from repro.core.graph import WorkflowGraph

        if self._chain is None:
            raise GraphError(f"pipeline {self.name!r} has no stages")
        graph = WorkflowGraph(self.name)
        self._chain.apply_to(graph)
        if validate:
            graph.validate()
        return graph

    # Engines call this duck-typed hook to accept pipelines and graphs alike.
    def as_graph(self) -> "WorkflowGraph":
        return self.build()

    def __repr__(self) -> str:
        stages = 0 if self._chain is None else len(self._chain.pes)
        return f"Pipeline({self.name!r}, pes={stages})"


def coerce_graph(source: Any) -> "WorkflowGraph":
    """Accept a WorkflowGraph, Pipeline, Chain, or PE wherever engines need
    a graph."""
    from repro.core.graph import WorkflowGraph

    if isinstance(source, WorkflowGraph):
        return source
    if isinstance(source, Pipeline):
        return source.build()
    if isinstance(source, Chain):
        graph = source.graph()
        graph.validate()
        return graph
    if isinstance(source, GenericPE):
        graph = WorkflowGraph(source.name)
        graph.add(source)
        graph.validate()
        return graph
    raise TypeError(
        f"expected a WorkflowGraph, Pipeline, chain, or PE; got "
        f"{type(source).__name__}"
    )
