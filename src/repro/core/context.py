"""Execution context handed to PE instances by the enactment engine.

A PE's synthetic workload and randomness must go through the context so
that:

- durations respect the global :class:`~repro.runtime.clock.Clock` scale,
- CPU-bound work contends for the platform's emulated cores
  (:class:`~repro.runtime.cores.CoreLimiter`) while IO waits do not,
- random draws are reproducible per instance (seeded from the run seed and
  the instance id).

The context is deliberately *shared* across deep copies: the dynamic
mappings deep-copy the workflow graph per worker (Algorithm 1, line 49),
and all copies must keep contending for the same emulated cores and clock.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.runtime.clock import Clock
from repro.runtime.cores import CoreLimiter


class ExecutionContext:
    """Per-run execution environment shared by all PE instances.

    Parameters
    ----------
    clock:
        Time source/scaler for all synthetic durations.
    cores:
        Emulated-core limiter of the platform profile.
    seed:
        Run-level random seed; instance RNGs derive from it.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        cores: Optional[CoreLimiter] = None,
        seed: int = 0,
        cpu_speed: float = 1.0,
    ) -> None:
        if cpu_speed <= 0:
            raise ValueError("cpu_speed must be positive")
        self.clock = clock if clock is not None else Clock()
        self.cores = cores if cores is not None else CoreLimiter(None)
        self.seed = seed
        self.cpu_speed = cpu_speed
        #: Optional per-PE time/invocation accumulator (a
        #: :class:`repro.core.fusion.MemberMeter`), installed by the
        #: enactment when operator fusion is active so fused members keep
        #: attributing their runtime to their own names.
        self.pe_meter = None

    def rng_for(self, instance_id: str) -> np.random.Generator:
        """Deterministic per-instance random generator."""
        # Derive a child seed from the run seed + instance identity so that
        # every instance draws an independent, reproducible stream.
        child = np.random.SeedSequence([self.seed, _stable_id(instance_id)])
        return np.random.default_rng(child)

    def compute(self, nominal_seconds: float) -> None:
        """Burn CPU time: holds an emulated core for the scaled duration.

        The platform's relative CPU speed divides the duration (the paper's
        *cloud* runs 2.2 GHz parts vs. the *server*'s 2.6 GHz).
        """
        self.cores.compute(self.clock, nominal_seconds / self.cpu_speed)

    def io_wait(self, nominal_seconds: float) -> None:
        """Block without consuming a core (network/disk wait)."""
        self.clock.sleep(nominal_seconds)

    def __deepcopy__(self, memo: dict) -> "ExecutionContext":
        # Shared on purpose: copies of the graph must contend for the same
        # platform resources (and threading primitives are not copyable).
        return self


def _stable_id(text: str) -> int:
    """Stable small integer derived from an instance id string."""
    acc = 0
    for ch in text:
        acc = (acc * 131 + ord(ch)) % (2**31 - 1)
    return acc
