"""Groupings: how data units are distributed over destination PE instances.

Groupings (Section 2.1 of the paper) govern communication on input
connections.  The engine supports the four dispel4py groupings the
evaluation workflows use:

- :class:`Shuffle` -- the default; data units are spread round-robin over
  destination instances (load balancing, no state implications).
- :class:`GroupBy` -- "operates akin to MapReduce": units with equal values
  in the keyed element(s) always reach the same instance (e.g. the
  ``happy State`` PE grouped by ``'state'`` in Figure 7).
- :class:`AllToOne` (dispel4py's *global* grouping) -- every unit is routed
  to one single instance (the ``top 3 happiest`` PE).
- :class:`OneToAll` -- every unit is broadcast to all instances.

``GroupBy`` and ``AllToOne`` make the consuming PE *stateful* from the
engine's point of view: correctness depends on which instance sees which
units, which is exactly what plain dynamic scheduling cannot honour and the
hybrid mapping (Section 3.1.2) restores.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Callable, List, Optional, Sequence, Union


def _stable_hash(value: Any) -> int:
    """Deterministic cross-run hash of an arbitrary picklable value.

    ``hash()`` is salted per interpreter for str/bytes, which would make
    group-by routing non-reproducible across runs; md5 over the pickle is
    stable and cheap at this payload size.
    """
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return int.from_bytes(hashlib.md5(payload).digest()[:8], "big")


class Grouping:
    """Base class: an immutable routing *specification*.

    Routing *state* (e.g. round-robin counters) lives in routers created via
    :meth:`new_state`; the concrete workflow creates one state per
    (edge, source-instance) so each producer routes independently, as
    separate OS processes would.
    """

    #: Whether this grouping pins data units to specific instances, making
    #: the destination PE stateful.
    requires_state = False

    def new_state(self) -> Optional[dict]:
        """Mutable routing state for one producer instance (None if stateless)."""
        return None

    def route(self, data: Any, n_instances: int, state: Optional[dict]) -> List[int]:
        """Destination instance indices for one data unit (usually one)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Shuffle(Grouping):
    """Round-robin distribution (the engine default)."""

    def new_state(self) -> dict:
        return {"next": 0}

    def route(self, data: Any, n_instances: int, state: Optional[dict]) -> List[int]:
        if state is None:
            raise ValueError("Shuffle requires routing state; use new_state()")
        index = state["next"] % n_instances
        state["next"] = index + 1
        return [index]


class GroupBy(Grouping):
    """Hash-partition on the value(s) of keyed element(s) of each data unit.

    Parameters
    ----------
    keys:
        What identifies the partition key within a data unit:

        - a sequence of ints -- indices into tuple/list data (dispel4py's
          classic ``grouping=[0]`` style),
        - a sequence of strs -- keys into mapping data,
        - a single int or str -- shorthand for a one-element sequence
          (``GroupBy("state")`` keys on ``data["state"]``),
        - a callable -- arbitrary key extraction.
    """

    requires_state = True

    def __init__(
        self,
        keys: Union[int, str, Sequence[int], Sequence[str], Callable[[Any], Any]],
    ) -> None:
        if isinstance(keys, (int, str)):
            # A bare string must not be iterated into per-character keys.
            keys = (keys,)
        if callable(keys):
            self._extract: Callable[[Any], Any] = keys
            self.keys: Optional[tuple] = None
        else:
            keys = tuple(keys)
            if not keys:
                raise ValueError("GroupBy requires at least one key")
            self.keys = keys
            self._extract = self._indexed_extract
        super().__init__()

    def _indexed_extract(self, data: Any) -> Any:
        assert self.keys is not None
        return tuple(data[k] for k in self.keys)

    def key_of(self, data: Any) -> Any:
        """The partition key of a data unit (exposed for the hybrid mapping)."""
        return self._extract(data)

    def route(self, data: Any, n_instances: int, state: Optional[dict]) -> List[int]:
        return [_stable_hash(self.key_of(data)) % n_instances]

    def __repr__(self) -> str:
        inner = "<callable>" if self.keys is None else repr(list(self.keys))
        return f"GroupBy({inner})"


class AllToOne(Grouping):
    """dispel4py's *global* grouping: everything to instance 0."""

    requires_state = True

    def route(self, data: Any, n_instances: int, state: Optional[dict]) -> List[int]:
        return [0]


class OneToAll(Grouping):
    """Broadcast: every data unit is delivered to every instance."""

    requires_state = True

    def route(self, data: Any, n_instances: int, state: Optional[dict]) -> List[int]:
        return list(range(n_instances))


def as_grouping(spec: Union[None, str, Sequence, Callable, Grouping]) -> Grouping:
    """Coerce user shorthand into a :class:`Grouping`.

    - ``None`` / ``"shuffle"`` -> :class:`Shuffle`
    - ``"global"`` / ``"all_to_one"`` -> :class:`AllToOne`
    - ``"one_to_all"`` / ``"broadcast"`` -> :class:`OneToAll`
    - list/tuple of indices or keys, or a callable -> :class:`GroupBy`
    - an existing :class:`Grouping` passes through.
    """
    if spec is None:
        return Shuffle()
    if isinstance(spec, Grouping):
        return spec
    if isinstance(spec, str):
        lowered = spec.lower()
        if lowered in ("shuffle", "round_robin", "none"):
            return Shuffle()
        if lowered in ("global", "all_to_one"):
            return AllToOne()
        if lowered in ("one_to_all", "broadcast", "all"):
            return OneToAll()
        raise ValueError(f"unknown grouping name {spec!r}")
    if callable(spec):
        return GroupBy(spec)
    if isinstance(spec, (list, tuple)):
        return GroupBy(spec)
    raise TypeError(f"cannot interpret {spec!r} as a grouping")
