"""Processing element (PE) base classes.

PEs are the computational building blocks of a workflow (Section 2.1).
Subclass one of:

- :class:`GenericPE` -- arbitrary named input/output ports; override
  :meth:`GenericPE.process`.
- :class:`IterativePE` -- one input, one output; override ``_process(data)``.
- :class:`ProducerPE` -- no inputs, one output; driven by the engine's
  iteration count; override ``_process(None)`` or generate in ``process``.
- :class:`ConsumerPE` -- one input, no outputs.
- :class:`FunctionPE` -- wraps a plain function as an IterativePE.

A PE *class* describes behaviour; at enactment each PE is replicated into
one or more *instances* (Section 2.1, "Instance").  Instance-scoped fields
(``instance_id``, ``ctx``, RNG) are assigned by the mapping right before
``preprocess`` runs.

Statefulness: a PE is treated as stateful if it sets ``stateful = True`` or
if any of its input connections declares a state-pinning grouping (GroupBy /
AllToOne / OneToAll).  Stateful PEs are rejected by plain dynamic mappings
and handled by ``hybrid_redis`` (Section 3.1.2).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.exceptions import PortError
from repro.core.groupings import Grouping, as_grouping
from repro.core.context import ExecutionContext

_name_counters: Dict[str, "itertools.count[int]"] = {}


def _auto_name(cls_name: str) -> str:
    counter = _name_counters.setdefault(cls_name, itertools.count())
    return f"{cls_name}{next(counter)}"


def reset_auto_names() -> None:
    """Reset the auto-naming counters (``Double0``, ``Double1``, ...).

    Auto-generated PE names count up per class for the lifetime of the
    process, so graph construction is only deterministic relative to how
    many unnamed PEs were created before.  Test suites and long-lived
    services that build many graphs call this between graphs to get
    reproducible names; the repo's test fixtures do so automatically.
    Graphs additionally re-slot colliding auto-names on
    :meth:`~repro.core.graph.WorkflowGraph.add`.
    """
    _name_counters.clear()


class GenericPE:
    """Base processing element.

    Parameters
    ----------
    name:
        Unique name within a graph.  Auto-generated from the class name if
        omitted; :class:`~repro.core.graph.WorkflowGraph` enforces
        uniqueness.

    Attributes
    ----------
    inputconnections / outputconnections:
        Port tables (name -> port descriptor dict), mirroring dispel4py's
        attribute names.
    numprocesses:
        Requested instance count, or ``None`` to let the partitioner decide
        (the paper pins ``happy State`` to 4 and ``top 3 happiest`` to 2).
    stateful:
        Explicit statefulness marker (groupings can also imply it).
    """

    INPUT_NAME = "input"
    OUTPUT_NAME = "output"

    def __init__(self, name: Optional[str] = None) -> None:
        self._auto_named = name is None
        self.name = name or _auto_name(type(self).__name__)
        self.inputconnections: Dict[str, Dict[str, Any]] = {}
        self.outputconnections: Dict[str, Dict[str, Any]] = {}
        self.numprocesses: Optional[int] = None
        self.stateful: bool = False
        # Instance-scoped fields, assigned by the mapping before preprocess().
        self.instance_id: Optional[str] = None
        self.instance_index: int = 0
        self.num_instances: int = 1
        self.ctx: ExecutionContext = ExecutionContext()
        self.rng = None  # assigned per instance
        self._output_buffer: List[Tuple[str, Any]] = []

    # ------------------------------------------------------------- port API
    def _add_input(self, name: str, grouping: Any = None) -> None:
        """Declare an input port, optionally with a default grouping."""
        self.inputconnections[name] = {
            "name": name,
            "grouping": as_grouping(grouping) if grouping is not None else None,
        }

    def _add_output(self, name: str) -> None:
        """Declare an output port."""
        self.outputconnections[name] = {"name": name}

    def input_grouping(self, name: str) -> Optional[Grouping]:
        port = self.inputconnections.get(name)
        if port is None:
            raise PortError(f"PE {self.name!r} has no input port {name!r}")
        return port.get("grouping")

    def set_grouping(self, input_name: str, grouping: Any) -> None:
        """Declare/override the grouping of an input port (dispel4py style)."""
        if input_name not in self.inputconnections:
            raise PortError(f"PE {self.name!r} has no input port {input_name!r}")
        self.inputconnections[input_name]["grouping"] = as_grouping(grouping)

    # ---------------------------------------------------------- statefulness
    def is_stateful(self) -> bool:
        """Stateful if flagged, or if any input grouping pins instances."""
        if self.stateful:
            return True
        for port in self.inputconnections.values():
            grouping = port.get("grouping")
            if grouping is not None and grouping.requires_state:
                return True
        return False

    # ----------------------------------------------------------- state hooks
    #: Attributes that describe the PE or its wiring rather than accumulated
    #: processing state; the default get_state/set_state skip them.
    _STATE_EXCLUDE = frozenset(
        {
            "name",
            "_auto_named",
            "inputconnections",
            "outputconnections",
            "numprocesses",
            "stateful",
            "instance_id",
            "instance_index",
            "num_instances",
            "ctx",
            "rng",
            "_output_buffer",
        }
    )

    def get_state(self) -> Dict[str, Any]:
        """Capture this instance's mutable state for checkpointing.

        The default captures every instance attribute that is not part of
        the PE's structural description (ports, instance wiring, run
        context) -- so accumulators like ``self.counts`` or ``self._totals``
        are checkpointed without any per-PE code.  Override together with
        :meth:`set_state` when the state needs trimming or is not directly
        picklable (open handles, caches derivable from elsewhere).
        """
        return {
            key: value
            for key, value in self.__dict__.items()
            if key not in self._STATE_EXCLUDE
        }

    def set_state(self, state: Dict[str, Any]) -> None:
        """Restore state previously captured by :meth:`get_state`.

        Called after ``__init__`` and ``preprocess`` on a freshly pinned
        instance (e.g. when a crashed worker's instance is re-pinned to a
        new process), before any further data is processed.
        """
        self.__dict__.update(state)

    # ------------------------------------------------------------- lifecycle
    def preprocess(self) -> None:
        """Hook run once per instance before any data is processed."""

    def process(self, inputs: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Process one unit of input.

        May return ``{output_name: value}`` and/or call :meth:`write` any
        number of times.  Returning ``None`` emits nothing.
        """
        raise NotImplementedError

    def postprocess(self) -> None:
        """Hook run once per instance after the input streams are exhausted.

        Stateful PEs typically flush aggregates here via :meth:`write`.
        """

    # ------------------------------------------------------------ output API
    def write(self, name: str, data: Any) -> None:
        """Emit a data unit on output port ``name``."""
        if name not in self.outputconnections:
            raise PortError(f"PE {self.name!r} has no output port {name!r}")
        self._output_buffer.append((name, data))

    # engine-facing -----------------------------------------------------------
    def _invoke(self, inputs: Optional[Dict[str, Any]]) -> List[Tuple[str, Any]]:
        """Run ``process`` once and collect all emissions (engine hook)."""
        self._output_buffer = []
        returned = self.process(inputs if inputs is not None else {})
        emissions = list(self._output_buffer)
        self._output_buffer = []
        if returned:
            for name, value in returned.items():
                if name not in self.outputconnections:
                    raise PortError(
                        f"PE {self.name!r} returned data for unknown output {name!r}"
                    )
                emissions.append((name, value))
        return emissions

    def _flush_postprocess(self) -> List[Tuple[str, Any]]:
        """Run ``postprocess`` and collect anything it wrote (engine hook)."""
        self._output_buffer = []
        self.postprocess()
        emissions = list(self._output_buffer)
        self._output_buffer = []
        return emissions

    # ------------------------------------------------------------ fluent API
    def out(self, name: str) -> "Any":
        """Reference a named output port for fluent wiring: ``pe.out("x") >> other``."""
        from repro.core.fluent import OutPort

        return OutPort(self, name)

    def in_(self, name: str) -> "Any":
        """Reference a named input port for fluent wiring: ``other >> pe.in_("x")``."""
        from repro.core.fluent import InPort

        return InPort(self, name)

    def __rshift__(self, other: Any) -> "Any":
        """Chain PEs through default ports: ``producer >> double >> sink``.

        Returns a :class:`~repro.core.fluent.Chain`; see
        :mod:`repro.core.fluent` for the full operator grammar (named ports,
        inline groupings, branching).
        """
        from repro.core.fluent import Chain

        return Chain._start(self) >> other

    # ---------------------------------------------------------- conveniences
    def compute(self, nominal_seconds: float) -> None:
        """Synthetic CPU-bound work (holds an emulated core)."""
        self.ctx.compute(nominal_seconds)

    def io_wait(self, nominal_seconds: float) -> None:
        """Synthetic IO wait (does not hold a core)."""
        self.ctx.io_wait(nominal_seconds)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class IterativePE(GenericPE):
    """One input port, one output port; override :meth:`_process`."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._add_input(self.INPUT_NAME)
        self._add_output(self.OUTPUT_NAME)

    def process(self, inputs: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        data = inputs.get(self.INPUT_NAME)
        result = self._process(data)
        if result is not None:
            return {self.OUTPUT_NAME: result}
        return None

    def _process(self, data: Any) -> Any:
        raise NotImplementedError


class ProducerPE(GenericPE):
    """No inputs; one output.  Driven by the engine's iteration count."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._add_output(self.OUTPUT_NAME)

    def process(self, inputs: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        result = self._process(None)
        if result is not None:
            return {self.OUTPUT_NAME: result}
        return None

    def _process(self, data: None) -> Any:
        raise NotImplementedError


class ConsumerPE(GenericPE):
    """One input; no outputs.  Override :meth:`_process`."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._add_input(self.INPUT_NAME)

    def process(self, inputs: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        self._process(inputs.get(self.INPUT_NAME))
        return None

    def _process(self, data: Any) -> None:
        raise NotImplementedError


class FunctionPE(IterativePE):
    """Wrap a plain ``data -> result`` function as a PE."""

    def __init__(self, func: Callable[[Any], Any], name: Optional[str] = None) -> None:
        super().__init__(name or getattr(func, "__name__", None))
        self._func = func

    def _process(self, data: Any) -> Any:
        return self._func(data)
