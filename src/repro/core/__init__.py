"""Core workflow model: the dispel4py-equivalent abstraction layer.

Users compose **processing elements** (PEs) into an **abstract workflow**
(a DAG), optionally declaring **groupings** on input connections; a
**mapping** then translates the abstract workflow into a **concrete
workflow** (PE instances + routing tables) and enacts it (Figure 1 of the
paper).  This package owns everything up to -- but not including -- the
enactment: PE base classes, ports, groupings, the graph, validation, and
the abstract-to-concrete translation.
"""

from repro.core.concrete import ConcreteWorkflow, EdgeRouter
from repro.core.context import ExecutionContext
from repro.core.exceptions import (
    GraphError,
    InsufficientProcessesError,
    MappingError,
    PortError,
    UnsupportedFeatureError,
    ValidationError,
)
from repro.core.fluent import Chain, InPort, OutPort, Pipeline, coerce_graph
from repro.core.fusion import FusedPE, MemberMeter
from repro.core.graph import Edge, WorkflowGraph
from repro.core.groupings import AllToOne, GroupBy, Grouping, OneToAll, Shuffle, as_grouping
from repro.core.partition import allocate_instances
from repro.core.pe import (
    ConsumerPE,
    FunctionPE,
    GenericPE,
    IterativePE,
    ProducerPE,
    reset_auto_names,
)

__all__ = [
    "AllToOne",
    "Chain",
    "ConcreteWorkflow",
    "ConsumerPE",
    "Edge",
    "EdgeRouter",
    "ExecutionContext",
    "FunctionPE",
    "FusedPE",
    "GenericPE",
    "GraphError",
    "GroupBy",
    "Grouping",
    "InPort",
    "InsufficientProcessesError",
    "IterativePE",
    "MappingError",
    "MemberMeter",
    "OneToAll",
    "OutPort",
    "Pipeline",
    "PortError",
    "ProducerPE",
    "Shuffle",
    "UnsupportedFeatureError",
    "ValidationError",
    "WorkflowGraph",
    "allocate_instances",
    "as_grouping",
    "coerce_graph",
    "reset_auto_names",
]
