"""Operator fusion: chain-collapsing rewrites of the abstract workflow.

Every connection a mapping enacts costs an enqueue/dequeue (and, on the
Redis mappings, a client/server round trip with pickle serialization on
both sides).  PR 3 made each hop cheaper by batching tuples; this module
removes hops entirely: a semantics-preserving rewrite pass walks the
:class:`~repro.core.graph.WorkflowGraph`, identifies maximal *fusable
chains* -- linear runs of PEs connected 1:1 -- and collapses each into a
single :class:`FusedPE` whose ``process()`` drives the member PEs through
direct in-memory calls.  Inside a fusion there is no queue, no batch
envelope and no pickle: a member's emission is handed to the next member
as the same Python object (ownership transfers at emission, exactly the
:func:`repro.mappings.base.marshal` contract).

The approach follows the local-rewrite school ("Optimizing Stateful
Dataflow with Local Rewrites", PAPERS.md): each rewrite is local to one
chain, provably output-preserving, and the rewritten graph is an ordinary
:class:`WorkflowGraph` -- every mapping (static, dynamic, Redis, hybrid)
enacts it without special cases.

This module holds only the *runtime* side of fusion: the
:class:`FusedPE` operator and the :class:`MemberMeter` attribution hook.
The rewrite itself -- chain discovery, fusability rules, graph surgery --
lives in :mod:`repro.planner.fusion`, where it is the first rewrite rule
of the cost-based graph planner (:mod:`repro.planner`).

What the rest of the engine sees
--------------------------------
- ``FusedPE`` exposes the head's input ports unchanged (groupings
  included), so inbound routing and source driving are untouched.
- Member output ports not consumed inside the fusion surface as
  namespaced fused ports (``"<member>__<port>"``); external edges are
  re-pointed at them, and emissions on unconnected ones are credited to
  the *original* ``"<member>.<port>"`` results key through
  ``collector_aliases`` (honoured by
  :func:`repro.mappings.base.dispatch_emissions`).
- ``get_state``/``set_state`` capture the composite state of all members,
  so ``hybrid_redis`` checkpoints a fused stateful chain as one snapshot
  and recovery replays at fusion granularity.
- Per-member runtime stays observable: when the run installs a
  :class:`MemberMeter` on the execution context, ``FusedPE`` attributes
  the clock time and invocation count of every member invocation to that
  member's name, keeping per-PE ratios comparable with unfused runs.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import GraphError
from repro.core.graph import Edge
from repro.core.pe import GenericPE


def fused_name(member_names: Sequence[str]) -> str:
    """Deterministic name of the PE fusing ``member_names`` in order."""
    return f"fused({'+'.join(member_names)})"


class MemberMeter:
    """Thread-safe per-member invocation/time accumulator.

    Installed on the run's :class:`~repro.core.context.ExecutionContext`
    (as ``ctx.pe_meter``) by the enactment when fusion is active; every
    :class:`FusedPE` instance reports into it so the per-PE breakdown of a
    fused run stays comparable with the unfused one (Table 1 ratios).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tasks: Dict[str, int] = {}
        self._time: Dict[str, float] = {}

    def record(self, member: str, elapsed: float) -> None:
        with self._lock:
            self._tasks[member] = self._tasks.get(member, 0) + 1
            self._time[member] = self._time.get(member, 0.0) + elapsed

    def tasks(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._tasks)

    def times(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._time)


class FusedPE(GenericPE):
    """A linear chain of PEs collapsed into one in-process operator.

    Parameters
    ----------
    members:
        The chain's PEs in flow order (length >= 2).  Held by reference;
        like any PE they are templates that :func:`~repro.mappings.base.
        instantiate` deep-copies per instance, members included.
    internal_edges:
        The chain's connecting edges, one per adjacent member pair.
    stateful:
        Mark the fusion stateful (set by the rewrite pass when any member
        keeps pinned state, including state implied by edge groupings the
        member's own ports do not declare).
    """

    def __init__(
        self,
        members: Sequence[GenericPE],
        internal_edges: Sequence[Edge],
        name: Optional[str] = None,
        stateful: bool = False,
    ) -> None:
        if len(members) < 2:
            raise GraphError("a fused chain needs at least two members")
        if len(internal_edges) != len(members) - 1:
            raise GraphError(
                f"chain of {len(members)} members needs {len(members) - 1} "
                f"internal edges, got {len(internal_edges)}"
            )
        super().__init__(name or fused_name([m.name for m in members]))
        self.members: List[GenericPE] = list(members)
        self.stateful = bool(stateful) or any(m.is_stateful() for m in members)

        # Head input ports are exposed verbatim (groupings included), so
        # inbound edges and source driving are untouched by the rewrite.
        head = self.members[0]
        for port_name, port in head.inputconnections.items():
            self._add_input(port_name, grouping=port.get("grouping"))

        # Internal hop table: (member index, out port) -> (next index, in port).
        index_of = {m.name: i for i, m in enumerate(self.members)}
        self._hops: Dict[Tuple[int, str], Tuple[int, str]] = {}
        for edge in internal_edges:
            src = index_of.get(edge.src)
            dst = index_of.get(edge.dst)
            if src is None or dst is None or dst != src + 1:
                raise GraphError(
                    f"internal edge {edge!r} does not connect adjacent chain "
                    f"members of {self.name!r}"
                )
            self._hops[(src, edge.src_port)] = (dst, edge.dst_port)

        # Every member output port not consumed inside the fusion surfaces
        # as a namespaced fused port; unconnected ones are credited back to
        # the original "<member>.<port>" results key via collector_aliases.
        self._exposed: Dict[Tuple[int, str], str] = {}
        self.collector_aliases: Dict[str, Tuple[str, str]] = {}
        for i, member in enumerate(self.members):
            for port_name in member.outputconnections:
                if (i, port_name) in self._hops:
                    continue
                fused_port = f"{member.name}__{port_name}"
                self._add_output(fused_port)
                self._exposed[(i, port_name)] = fused_port
                self.collector_aliases[fused_port] = (member.name, port_name)

    # ------------------------------------------------------------- structure
    @property
    def member_names(self) -> List[str]:
        return [m.name for m in self.members]

    def exposed_port(self, member_name: str, port: str) -> str:
        """The fused output port carrying ``member_name``'s ``port``."""
        for i, member in enumerate(self.members):
            if member.name == member_name:
                try:
                    return self._exposed[(i, port)]
                except KeyError:
                    raise GraphError(
                        f"{self.name!r} consumes {member_name}.{port} "
                        f"internally; it is not exposed"
                    ) from None
        raise GraphError(f"{self.name!r} has no member {member_name!r}")

    # ------------------------------------------------------------- lifecycle
    def preprocess(self) -> None:
        # Members are instantiated by the fusion, not the mapping: bind the
        # same instance-scoped fields instantiate() would have, so RNG
        # streams (seeded per member instance id) match the unfused run.
        from repro.core.concrete import instance_id

        for member in self.members:
            member.ctx = self.ctx
            member.instance_index = self.instance_index
            member.num_instances = self.num_instances
            member.instance_id = instance_id(member.name, self.instance_index)
            member.rng = self.ctx.rng_for(member.instance_id)
            member.preprocess()

    def process(self, inputs: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        self._feed(0, inputs)
        return None

    def postprocess(self) -> None:
        # Staged flush in chain order, mirroring the sequential oracle: an
        # upstream member's postprocess emissions are pushed through the
        # downstream members before those are themselves flushed.
        for i in range(len(self.members)):
            for port, data in self.members[i]._flush_postprocess():
                self._emit(i, port, data)

    # ------------------------------------------------------------- execution
    def _feed(self, index: int, inputs: Dict[str, Any]) -> None:
        """Invoke member ``index`` and cascade its emissions downstream.

        The intra-fusion emit path: a downstream member receives the
        emitted object itself -- no queue, no envelope, no copy.  Recursion
        depth is bounded by the chain length.
        """
        member = self.members[index]
        meter = getattr(self.ctx, "pe_meter", None)
        if meter is None:
            emissions = member._invoke(inputs)
        else:
            started = self.ctx.clock.now()
            emissions = member._invoke(inputs)
            meter.record(member.name, self.ctx.clock.now() - started)
        for port, data in emissions:
            self._emit(index, port, data)

    def _emit(self, index: int, port: str, data: Any) -> None:
        hop = self._hops.get((index, port))
        if hop is not None:
            self._feed(hop[0], {hop[1]: data})
        else:
            self.write(self._exposed[(index, port)], data)

    # ----------------------------------------------------------- state hooks
    def get_state(self) -> Dict[str, Any]:
        """Composite snapshot: every member's state under its name.

        One fused stateful chain checkpoints (and restores) as a unit, so
        recovery replays at fusion granularity -- a delivery is either
        reflected in *all* members' restored state or in none.
        """
        return {"members": {m.name: m.get_state() for m in self.members}}

    def set_state(self, state: Dict[str, Any]) -> None:
        captured = state.get("members", {})
        for member in self.members:
            if member.name in captured:
                member.set_state(captured[member.name])

    def __repr__(self) -> str:
        return f"<FusedPE {self.name!r} members={self.member_names}>"

