"""Auto-scaling optimization (Section 3.2 of the paper).

The auto-scaler extends dynamic scheduling with two process states --
*active* and *idle* -- and adjusts the number of active processes in
response to a monitored load metric.  Active processes fetch tasks from the
global queue exactly as in plain dynamic scheduling; idle processes sit in
a low-energy standby state and accumulate no process time, which is where
the efficiency gains of Tables 1 and 2 come from.

- :class:`~repro.autoscale.autoscaler.Autoscaler` implements the paper's
  Algorithm 1 verbatim (``max_pool_size``, ``active_size`` defaulting to
  half the pool, ±1 grow/shrink, ``start``/``done`` active-count guard,
  and the central ``process`` loop).
- :mod:`~repro.autoscale.strategies` implements the two monitoring
  strategies of Section 3.2.2 (queue size for Multiprocessing, consumer
  group average idle time for Redis), the demand-normalized
  :class:`~repro.autoscale.strategies.BacklogStrategy` used as the tuned
  ``dyn_auto_multi`` default, and an EWMA rate strategy as the
  "future work" ablation.
- :class:`~repro.autoscale.trace.ScalingTrace` records the
  (iteration, active size, metric) series plotted in Figure 13.
"""

from repro.autoscale.autoscaler import Autoscaler
from repro.autoscale.strategies import (
    BacklogStrategy,
    IdleTimeStrategy,
    QueueSizeStrategy,
    RateStrategy,
    ScalingStrategy,
)
from repro.autoscale.trace import ScalingTrace, TraceEvent, TracePoint

__all__ = [
    "Autoscaler",
    "BacklogStrategy",
    "IdleTimeStrategy",
    "QueueSizeStrategy",
    "RateStrategy",
    "ScalingStrategy",
    "ScalingTrace",
    "TraceEvent",
    "TracePoint",
]
