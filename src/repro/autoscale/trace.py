"""Scaling traces: the data behind Figure 13.

Each auto-scaler iteration is recorded as a :class:`TracePoint`.  The
paper's Figure 13 plots active process count (left axis) against the
monitored metric (right axis: queue size for ``dyn_auto_multi``, average
idle time in ms for ``dyn_auto_redis``) over iterations, where iterations
are "recorded when monitored metrics change" -- :meth:`ScalingTrace.changes`
applies that filter.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class TracePoint:
    """One auto-scaler iteration."""

    iteration: int
    timestamp: float
    active_size: int
    metric: float
    decision: int  # +1 grew, -1 shrank, 0 held


@dataclass(frozen=True)
class TraceEvent:
    """A discrete lifecycle event annotated onto a trace.

    Used by the recovery machinery (``hybrid_redis`` checkpoint/restore) to
    record crash detections, re-pins and restores alongside -- or, for
    non-autoscaling mappings, instead of -- the scaling iterations.
    """

    timestamp: float
    kind: str  # "crash" / "respawn" / "restore" / ...
    detail: str = ""


class ScalingTrace:
    """Thread-safe record of auto-scaler decisions.

    Parameters
    ----------
    metric_name:
        Label of the monitored metric ("queue size" / "avg idle time (ms)").
    """

    def __init__(self, metric_name: str = "metric") -> None:
        self.metric_name = metric_name
        self._points: List[TracePoint] = []
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()

    def note(self, timestamp: float, kind: str, detail: str = "") -> None:
        """Record a lifecycle event (crash, respawn, restore, ...)."""
        with self._lock:
            self._events.append(TraceEvent(timestamp=timestamp, kind=kind, detail=detail))

    @property
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def events_of(self, kind: str) -> List[TraceEvent]:
        """All recorded events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def record(
        self, timestamp: float, active_size: int, metric: float, decision: int
    ) -> None:
        with self._lock:
            self._points.append(
                TracePoint(
                    iteration=len(self._points),
                    timestamp=timestamp,
                    active_size=active_size,
                    metric=metric,
                    decision=decision,
                )
            )

    @property
    def points(self) -> List[TracePoint]:
        with self._lock:
            return list(self._points)

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    def changes(self) -> List[TracePoint]:
        """Points where the monitored metric changed (Figure 13's x-axis)."""
        filtered: List[TracePoint] = []
        last_metric: float | None = None
        for point in self.points:
            if last_metric is None or point.metric != last_metric:
                filtered.append(point)
                last_metric = point.metric
        return filtered

    def series(
        self, changes_only: bool = True
    ) -> Tuple[List[int], List[int], List[float]]:
        """(iterations, active_sizes, metrics) ready for plotting/printing."""
        points = self.changes() if changes_only else self.points
        return (
            [p.iteration for p in points],
            [p.active_size for p in points],
            [p.metric for p in points],
        )

    def max_active(self) -> int:
        points = self.points
        return max((p.active_size for p in points), default=0)

    def min_active(self) -> int:
        points = self.points
        return min((p.active_size for p in points), default=0)
