"""Auto-scaling strategies: *when* and *how much* to scale (Section 3.2.2).

The paper adopts "a simple incremental approach: incrementing the active
size by 1 or -1", with a different monitored metric per mapping family:

- :class:`QueueSizeStrategy` (``dyn_auto_multi``) -- compares the global
  queue size against the previous observation; growth in the backlog
  activates a process, decline deactivates one, and a minimum-queue
  threshold "prevents unnecessary scaling during low demand".
- :class:`IdleTimeStrategy` (``dyn_auto_redis``) -- monitors the Redis
  consumer group's average idle time; idle time above the threshold means
  processes are starved and one is deactivated, below means the group is
  busy and one is activated.  (Note the inverse relationship visible in
  Figures 13b/13e.)
- :class:`RateStrategy` -- an EWMA-smoothed backlog trend, provided as the
  "more refined strategy" the paper defers to future work; used in the
  ablation benchmarks.

Strategies are stateful (they remember previous observations) and must not
be shared across runs.
"""

from __future__ import annotations

from typing import Optional


class ScalingStrategy:
    """Base class: map a monitored observation to a scaling decision."""

    #: Human-readable name of the monitored metric (used by traces).
    metric_name = "metric"

    #: Strategies that compare demand against current capacity set this and
    #: implement :meth:`decide` with the extra ``active_size`` argument.
    wants_active_size = False

    def decide(self, observation: float) -> int:
        """Return +1 (grow), -1 (shrink) or 0 (hold) for this observation."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget history (fresh run)."""


class QueueSizeStrategy(ScalingStrategy):
    """Scale on the *change* in global queue size.

    Parameters
    ----------
    min_queue:
        Backlogs at or below this size always vote to shrink -- the paper's
        "minimum threshold prevents unnecessary scaling during low demand".
    """

    metric_name = "queue size"

    def __init__(self, min_queue: int = 0) -> None:
        if min_queue < 0:
            raise ValueError("min_queue must be >= 0")
        self.min_queue = min_queue
        self._last: Optional[float] = None

    def decide(self, observation: float) -> int:
        last, self._last = self._last, observation
        if observation <= self.min_queue:
            return -1
        if last is None:
            return 0
        if observation > last:
            return +1
        if observation < last:
            return -1
        return 0

    def reset(self) -> None:
        self._last = None


class BacklogStrategy(ScalingStrategy):
    """Scale on backlog *relative to active capacity* (tuned default).

    The queue-delta strategy above reacts to the backlog's trend, which
    fails on workloads whose input is seeded up front: the queue only ever
    declines, so the scaler never grows past its initial size even with
    hundreds of waiting tasks (the inertia the paper observes in Figure 13
    and defers to future work).  This strategy instead compares the queue
    size against the number of active processes:

    - backlog above ``grow_factor x active`` -- capacity is short, grow;
    - backlog below ``shrink_factor x active`` (or at/below ``min_queue``)
      -- capacity exceeds demand, shrink;
    - otherwise hold.

    With the defaults the active size tracks ``min(queue, pool)``: full
    parallelism while a backlog exists, one-by-one deactivation as the
    stream drains -- which is what makes the Table 1 process-time savings
    materialise without giving back runtime.

    Parameters
    ----------
    grow_factor:
        Grow while ``queue > grow_factor * active_size``.
    shrink_factor:
        Shrink while ``queue < shrink_factor * active_size``.
    min_queue:
        Backlogs at or below this size always vote to shrink.
    """

    metric_name = "queue size"
    wants_active_size = True

    def __init__(
        self,
        grow_factor: float = 1.0,
        shrink_factor: float = 1.0,
        min_queue: int = 0,
    ) -> None:
        if grow_factor < shrink_factor:
            raise ValueError("grow_factor must be >= shrink_factor")
        if min_queue < 0:
            raise ValueError("min_queue must be >= 0")
        self.grow_factor = grow_factor
        self.shrink_factor = shrink_factor
        self.min_queue = min_queue

    def decide(self, observation: float, active_size: int = 1) -> int:
        if observation <= self.min_queue:
            return -1
        if observation > self.grow_factor * active_size:
            return +1
        if observation < self.shrink_factor * active_size:
            return -1
        return 0


class IdleTimeStrategy(ScalingStrategy):
    """Scale on the consumer group's average idle time (milliseconds).

    If the average idle time of active consumers exceeds the configured
    threshold -- the paper sets it to the time needed for reactivation and
    redeployment on the given platform -- a process is "logically
    deactivated"; otherwise demand is high and one is activated.

    Parameters
    ----------
    threshold_ms:
        Idle-time threshold in milliseconds.
    hysteresis_ms:
        Optional dead band around the threshold in which the strategy holds,
        damping oscillation (0 reproduces the paper's binary behaviour).
    """

    metric_name = "avg idle time (ms)"

    def __init__(self, threshold_ms: float, hysteresis_ms: float = 0.0) -> None:
        if threshold_ms <= 0:
            raise ValueError("threshold_ms must be positive")
        if hysteresis_ms < 0:
            raise ValueError("hysteresis_ms must be >= 0")
        self.threshold_ms = threshold_ms
        self.hysteresis_ms = hysteresis_ms

    def decide(self, observation: float) -> int:
        upper = self.threshold_ms + self.hysteresis_ms
        lower = self.threshold_ms - self.hysteresis_ms
        if observation > upper:
            return -1
        if observation < lower:
            return +1
        return 0


class RateStrategy(ScalingStrategy):
    """EWMA-smoothed backlog trend (ablation: a "more refined" strategy).

    Smooths the queue-size signal with an exponential moving average and
    scales on the smoothed trend, filtering out the single-sample noise
    that makes :class:`QueueSizeStrategy` oscillate (the lag/overshoot the
    paper observes in Figure 13 and flags for future work).
    """

    metric_name = "queue size (EWMA)"

    def __init__(self, alpha: float = 0.3, min_queue: int = 0) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.min_queue = min_queue
        self._ewma: Optional[float] = None
        self._last_ewma: Optional[float] = None

    def decide(self, observation: float) -> int:
        if self._ewma is None:
            self._ewma = float(observation)
        else:
            self._ewma = self.alpha * observation + (1 - self.alpha) * self._ewma
        last, self._last_ewma = self._last_ewma, self._ewma
        if self._ewma <= self.min_queue:
            return -1
        if last is None:
            return 0
        if self._ewma > last:
            return +1
        if self._ewma < last:
            return -1
        return 0

    def reset(self) -> None:
        self._ewma = None
        self._last_ewma = None
