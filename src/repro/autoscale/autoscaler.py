"""The auto-scaler: a faithful implementation of the paper's Algorithm 1.

Correspondence with the pseudo-code:

=====================  ====================================================
Algorithm 1            This implementation
=====================  ====================================================
``max_pool_size``      ``pool.size``
``pool``               :class:`repro.runtime.workers.WorkerPool`
``threshold``          owned by the :class:`ScalingStrategy`
``queue``              monitored via the injected ``monitor`` callable
``active_size``        :attr:`Autoscaler.active_size` (default ``max/2``)
``active_count``       :attr:`Autoscaler.active_count`
``shrink/grow``        :meth:`shrink` / :meth:`grow` (clamped to [min, max])
``auto_scale``         :meth:`auto_scale` (monitor -> strategy -> ±1)
``start``              :meth:`start` (blocks while count >= size, then
                       ``pool.apply_async(func, args, callback=done)``)
``done``               :meth:`_done` (decrements the count, wakes ``start``)
``is_terminiated``     the injected ``is_terminated`` callable
``process``            :meth:`process` (the central loop)
=====================  ====================================================

The unit of work submitted by ``process`` is a *worker session*: the session
function drains tasks from the global queue until it finds the queue empty
(or hits its chunk limit) and then returns, handing control back to the
scaler.  Sessions of deactivated capacity simply never start -- that is the
"idle, low-energy standby" state; the per-worker activity meter therefore
accumulates process time only while sessions run, which is exactly how the
paper's *total process time* metric rewards auto-scaling.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.autoscale.strategies import ScalingStrategy
from repro.autoscale.trace import ScalingTrace
from repro.runtime.clock import Clock
from repro.runtime.workers import WorkerPool


class Autoscaler:
    """Dynamic resource controller for the auto-scaling mappings.

    Parameters
    ----------
    pool:
        Worker pool of ``max_pool_size`` threads.
    strategy:
        Scaling strategy (owns the threshold semantics).
    monitor:
        Zero-argument callable producing the current observation of the
        monitored metric (queue size / average idle time).
    clock:
        Time source; ``scale_interval`` is expressed in nominal seconds.
    min_active:
        Lower clamp for ``active_size`` (Algorithm 1 shrinks "with a
        minimum of 1").
    initial_active:
        Starting ``active_size``; defaults to half the pool (Algorithm 1
        line 6).
    scale_interval:
        Nominal pacing delay between ``process``-loop iterations when no
        session slot opens up, preventing a busy spin on an empty queue.
    trace:
        Optional :class:`ScalingTrace` to record decisions into.
    """

    def __init__(
        self,
        pool: WorkerPool,
        strategy: ScalingStrategy,
        monitor: Callable[[], float],
        clock: Optional[Clock] = None,
        min_active: int = 1,
        initial_active: Optional[int] = None,
        scale_interval: float = 0.01,
        trace: Optional[ScalingTrace] = None,
    ) -> None:
        if min_active < 1:
            raise ValueError("min_active must be >= 1")
        self.pool = pool
        self.max_pool_size = pool.size
        self.strategy = strategy
        self.monitor = monitor
        self.clock = clock if clock is not None else Clock()
        self.min_active = min_active
        if initial_active is None:
            initial_active = max(min_active, self.max_pool_size // 2)
        if not min_active <= initial_active <= self.max_pool_size:
            raise ValueError(
                f"initial_active={initial_active} outside "
                f"[{min_active}, {self.max_pool_size}]"
            )
        if scale_interval < 0:
            raise ValueError("scale_interval must be >= 0")
        self.active_size = initial_active
        self.active_count = 0
        self.scale_interval = scale_interval
        self.trace = trace if trace is not None else ScalingTrace(strategy.metric_name)
        self._cond = threading.Condition()
        self._stopped = False

    # ------------------------------------------------------------- scaling
    def shrink(self, size_to_shrink: int = 1) -> None:
        """Decrease ``active_size`` (clamped at ``min_active``)."""
        with self._cond:
            self.active_size = max(self.min_active, self.active_size - size_to_shrink)

    def grow(self, size_to_grow: int = 1) -> None:
        """Increase ``active_size`` (clamped at ``max_pool_size``)."""
        with self._cond:
            self.active_size = min(self.max_pool_size, self.active_size + size_to_grow)
            self._cond.notify_all()

    def auto_scale(self) -> int:
        """One monitoring step: observe, decide, apply ±1; returns decision."""
        observation = float(self.monitor())
        # getattr: duck-typed strategies only need decide() + metric_name.
        if getattr(self.strategy, "wants_active_size", False):
            decision = self.strategy.decide(observation, self.active_size)
        else:
            decision = self.strategy.decide(observation)
        if decision > 0:
            self.grow(1)
        elif decision < 0:
            self.shrink(1)
        self.trace.record(
            timestamp=self.clock.now(),
            active_size=self.active_size,
            metric=observation,
            decision=decision,
        )
        return decision

    # ----------------------------------------------------------- dispatching
    def start(self, func: Callable[..., Any], args: tuple = ()) -> bool:
        """Dispatch one worker session, honouring the active-size gate.

        Blocks while ``active_count >= active_size`` (Algorithm 1 lines
        31-33).  Returns ``False`` if the scaler was stopped while waiting.
        """
        with self._cond:
            while self.active_count >= self.active_size and not self._stopped:
                self._cond.wait(timeout=0.05)
            if self._stopped:
                return False
            self.active_count += 1
        self.pool.apply_async(func, args, callback=self._done)
        return True

    def _done(self, _result: Any) -> None:
        with self._cond:
            self.active_count -= 1
            self._cond.notify_all()

    def stop(self) -> None:
        """Abort any ``start`` waiting on the gate (used at termination)."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()

    def wait_all_done(self, timeout: Optional[float] = None) -> bool:
        """Block until no sessions are in flight."""
        deadline = None if timeout is None else self.clock.now() + timeout
        with self._cond:
            while self.active_count > 0:
                remaining = None if deadline is None else deadline - self.clock.now()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(timeout=0.05 if remaining is None else min(0.05, remaining))
            return True

    # ------------------------------------------------------------- main loop
    def process(
        self,
        session: Callable[[], Any],
        is_terminated: Callable[[], bool],
    ) -> None:
        """Algorithm 1's central loop.

        Repeatedly: run one ``auto_scale`` step; if the workflow is
        terminated, drain in-flight sessions and return; otherwise dispatch
        another worker session through the active-size gate.
        """
        while True:
            self.auto_scale()
            if is_terminated():
                self.stop()
                self.wait_all_done()
                return
            dispatched = self.start(session)
            if not dispatched:
                self.wait_all_done()
                return
            # Gentle pacing so an empty-but-unterminated queue does not
            # busy-spin the monitor.
            if self.scale_interval > 0:
                self.clock.sleep(self.scale_interval)
