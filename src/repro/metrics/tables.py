"""ASCII rendering of result tables and figure series.

The benchmark harness prints, for every reproduced table and figure, the
same rows/series the paper reports: per-process-count runtime and process
time per mapping (figures), and prioritized ratio rows (tables).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.metrics.ratios import RatioSummary
from repro.metrics.result import RunResult


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Minimal fixed-width table renderer."""
    rendered_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def render_series(
    title: str,
    grid: Mapping[Tuple[str, int], RunResult],
    mappings: Sequence[str],
    processes: Sequence[int],
) -> str:
    """Figure-style series: one row per process count, runtime & process time.

    Matches the paper's figure layout: left block = runtime (s), right
    block = total process time (s), one series (column) per mapping.
    """
    headers = ["procs"]
    headers += [f"rt:{m}" for m in mappings]
    headers += [f"pt:{m}" for m in mappings]
    rows: List[List[str]] = []
    for p in processes:
        row: List[str] = [str(p)]
        for metric in ("runtime", "process_time"):
            for m in mappings:
                result = grid.get((m, p))
                if result is None:
                    row.append("-")
                else:
                    row.append(f"{getattr(result, metric):.3f}")
        rows.append(row)
    return f"== {title} ==\n" + render_table(headers, rows)


def render_ratio_table(title: str, summaries: Mapping[str, RatioSummary]) -> str:
    """Table 1-3 style block: prioritized rows + [mean, std] per comparison.

    Parameters
    ----------
    summaries:
        Label (e.g. platform name) -> :class:`RatioSummary`.
    """
    headers = [
        "label",
        "A/B",
        "prioritized by",
        "runtime ratio",
        "process time ratio",
    ]
    rows: List[List[str]] = []
    for label, summary in summaries.items():
        pair = f"{summary.numerator}/{summary.denominator}"
        by_rt = summary.by_runtime
        by_pt = summary.by_process_time
        rt_mean, rt_std = summary.runtime_mean_std
        pt_mean, pt_std = summary.process_time_mean_std
        rows.append(
            [label, pair, "runtime", f"{by_rt.runtime_ratio:.2f}", f"{by_rt.process_time_ratio:.2f}"]
        )
        rows.append(
            [label, pair, "process time", f"{by_pt.runtime_ratio:.2f}", f"{by_pt.process_time_ratio:.2f}"]
        )
        rows.append(
            [
                label,
                pair,
                "[mean, std]",
                f"[{rt_mean:.2f}, {rt_std:.2f}]",
                f"[{pt_mean:.2f}, {pt_std:.2f}]",
            ]
        )
    return f"== {title} ==\n" + render_table(headers, rows)


def render_trace(title: str, trace, max_points: int = 20) -> str:
    """Figure 13 style series: iteration, active size, monitored metric."""
    iterations, active, metric = trace.series(changes_only=True)
    if len(iterations) > max_points:
        step = max(1, len(iterations) // max_points)
        iterations = iterations[::step]
        active = active[::step]
        metric = metric[::step]
    rows = [
        [str(i), str(a), f"{m:.1f}"]
        for i, a, m in zip(iterations, active, metric)
    ]
    headers = ["iteration", "active processes", trace.metric_name]
    return f"== {title} ==\n" + render_table(headers, rows)
