"""Ratio summaries: the computation behind Tables 1, 2 and 3.

The paper compares a proposed technique A against a baseline B by the
point-wise ratios ``runtime_A(p) / runtime_B(p)`` and
``process_time_A(p) / process_time_B(p)`` over the shared process counts
``p``, and reports three rows per (platform, A/B) pair:

- *prioritized by runtime*: the ratios at the process count where the
  runtime ratio is best (smallest),
- *prioritized by process time*: the ratios at the process count where the
  process-time ratio is best,
- *[Mean, Std]*: mean and standard deviation of each ratio across all
  process counts.

"To maintain consistency, we only include our proposed optimizations in
the numerator" -- callers pass A = proposed, B = baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from repro.metrics.result import RunResult


@dataclass(frozen=True)
class RatioRow:
    """Ratios at one process count."""

    processes: int
    runtime_ratio: float
    process_time_ratio: float


@dataclass(frozen=True)
class RatioSummary:
    """One comparison block of a ratio table (one A/B pair on one platform)."""

    numerator: str
    denominator: str
    rows: Tuple[RatioRow, ...]

    @property
    def by_runtime(self) -> RatioRow:
        """The row at the process count with the best (lowest) runtime ratio."""
        return min(self.rows, key=lambda r: r.runtime_ratio)

    @property
    def by_process_time(self) -> RatioRow:
        """The row at the process count with the best process-time ratio."""
        return min(self.rows, key=lambda r: r.process_time_ratio)

    @property
    def runtime_mean_std(self) -> Tuple[float, float]:
        values = np.array([r.runtime_ratio for r in self.rows], dtype=float)
        return float(values.mean()), float(values.std())

    @property
    def process_time_mean_std(self) -> Tuple[float, float]:
        values = np.array([r.process_time_ratio for r in self.rows], dtype=float)
        return float(values.mean()), float(values.std())


ResultGrid = Mapping[Tuple[str, int], RunResult]
"""Runs keyed by (mapping name, process count)."""


def summarize_ratios(
    grid: ResultGrid,
    numerator: str,
    denominator: str,
    processes: Iterable[int] | None = None,
) -> RatioSummary:
    """Build the Table 1-3 summary for one A/B comparison.

    Parameters
    ----------
    grid:
        Results keyed by ``(mapping, processes)``; must contain both
        mappings at every compared process count.
    numerator / denominator:
        Mapping names (A = proposed technique, B = baseline).
    processes:
        Process counts to compare; defaults to all counts present for both
        mappings (ascending).
    """
    if processes is None:
        num_procs = {p for (m, p) in grid if m == numerator}
        den_procs = {p for (m, p) in grid if m == denominator}
        processes = sorted(num_procs & den_procs)
    processes = list(processes)
    if not processes:
        raise ValueError(
            f"no shared process counts between {numerator!r} and {denominator!r}"
        )
    rows: List[RatioRow] = []
    for p in processes:
        try:
            a = grid[(numerator, p)]
            b = grid[(denominator, p)]
        except KeyError as exc:
            raise KeyError(f"missing run for {exc.args[0]!r}") from None
        if b.runtime <= 0 or b.process_time <= 0:
            raise ValueError(f"degenerate baseline measurement at p={p}")
        rows.append(
            RatioRow(
                processes=p,
                runtime_ratio=a.runtime / b.runtime,
                process_time_ratio=a.process_time / b.process_time,
            )
        )
    return RatioSummary(numerator=numerator, denominator=denominator, rows=tuple(rows))


def grid_from_results(results: Iterable[RunResult]) -> Dict[Tuple[str, int], RunResult]:
    """Index a flat result list into a :data:`ResultGrid`."""
    grid: Dict[Tuple[str, int], RunResult] = {}
    for result in results:
        grid[(result.mapping, result.processes)] = result
    return grid
