"""Run results: everything a single enactment reports back."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.autoscale.trace import ScalingTrace


@dataclass
class RunResult:
    """Outcome of enacting one workflow with one mapping.

    Attributes
    ----------
    mapping / workflow / processes:
        Run identity (what Tables 1-3 group by).
    runtime:
        Wall-clock duration of the run in real seconds.
    process_time:
        Total active process time in real seconds (Section 5.1.2): the sum
        over workers of the time they spent in the *active* state.  Static
        mappings keep every process active for the whole run; auto-scaling
        mappings only accumulate during active sessions.
    outputs:
        Data units emitted on unconnected output ports, keyed by
        ``"<pe>.<port>"``.  Order across parallel workers is
        non-deterministic; tests sort before comparing.
    counters:
        Engine counters (tasks processed, queue/redis operations, pills,
        retries...) for white-box assertions and benchmark reporting.
    trace:
        Auto-scaler trace for the auto-scaling mappings (Figure 13).
    per_worker_time:
        Active time per worker id, summing to ``process_time``.
    pe_times:
        Per-PE busy time (real seconds) attributed inside fused operators,
        keyed by the *member* PE name.  Empty unless operator fusion ran:
        fusion hides queue boundaries, so this is how the per-PE breakdown
        of a fused run stays comparable with the unfused one.
    """

    mapping: str
    workflow: str
    processes: int
    runtime: float
    process_time: float
    outputs: Dict[str, List[Any]] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    trace: Optional[ScalingTrace] = None
    per_worker_time: Dict[str, float] = field(default_factory=dict)
    pe_times: Dict[str, float] = field(default_factory=dict)

    def output(self, pe_name: str, port: str = "output") -> List[Any]:
        """Convenience accessor for one sink port's collected data units."""
        return self.outputs.get(f"{pe_name}.{port}", [])

    def total_outputs(self) -> int:
        return sum(len(v) for v in self.outputs.values())

    def top_pes(self, n: int = 3) -> List[Tuple[str, float]]:
        """The ``n`` costliest member PEs by attributed busy time.

        Empty unless the run carried per-PE attribution (``pe_times``),
        i.e. unless fusion/optimization ran.  Ties break by name so the
        ordering is deterministic.
        """
        ranked = sorted(self.pe_times.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def efficiency(self) -> float:
        """Process time per second of runtime (lower is more efficient)."""
        if self.runtime <= 0:
            return 0.0
        return self.process_time / self.runtime

    def as_row(self) -> Tuple[str, int, float, float]:
        return (self.mapping, self.processes, self.runtime, self.process_time)

    def summary(self) -> Dict[str, Any]:
        """Machine-readable run summary (``repro run --json``).

        Everything scripting/CI consumers typically key on -- identity,
        timings, counters and per-port output *sizes* (not the data units
        themselves, which may not be JSON-serializable).
        """
        return {
            "mapping": self.mapping,
            "workflow": self.workflow,
            "processes": self.processes,
            "runtime": self.runtime,
            "process_time": self.process_time,
            "counters": dict(self.counters),
            "outputs": {key: len(values) for key, values in self.outputs.items()},
            "total_outputs": self.total_outputs(),
            "pe_times": dict(self.pe_times),
        }

    def __repr__(self) -> str:
        return (
            f"RunResult({self.mapping}, {self.workflow}, p={self.processes}, "
            f"runtime={self.runtime:.3f}s, process_time={self.process_time:.3f}s)"
        )
