"""Measurement, ratio analysis and reporting (Section 5.1.2 of the paper).

Two headline metrics:

- **runtime** -- real-world execution time of a run, and
- **total process time** -- the sum of all active process durations,
  the paper's efficiency metric.

:mod:`repro.metrics.ratios` turns grids of :class:`RunResult` into the
ratio summaries of Tables 1-3 (runtime ratio, process-time ratio,
prioritized rows, mean/std); :mod:`repro.metrics.tables` renders them as
the ASCII rows/series the benchmark harness prints.
"""

from repro.metrics.result import RunResult
from repro.metrics.ratios import RatioRow, RatioSummary, summarize_ratios
from repro.metrics.tables import render_ratio_table, render_series, render_table

__all__ = [
    "RatioRow",
    "RatioSummary",
    "RunResult",
    "render_ratio_table",
    "render_series",
    "render_table",
    "summarize_ratios",
]
