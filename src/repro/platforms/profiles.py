"""Emulated platforms matching Section 5.1.1 of the paper.

Each profile bundles the parameters that shaped the paper's results:

- ``cores`` -- the CPU budget.  Running more workflow processes than cores
  causes time-slicing, reproducing the cloud's runtime dip at 12/16
  processes (Figures 9, 12b).
- ``cpu_speed`` -- relative single-core speed (server 2.60 GHz = 1.0; cloud
  2.20 GHz; HPC 2.50 GHz), so "overall performance on server is slightly
  better than cloud" holds.
- ``queue_latency`` -- nominal seconds charged per multiprocessing-queue
  transfer (static/dynamic multi mappings).
- ``redis_latency`` -- nominal seconds charged per Redis command round
  trip.  Redis is an out-of-process server in the paper, so this is higher
  than ``queue_latency`` -- the root cause of "Multiprocessing
  optimizations outperform those of Redis" (Section 5.6).
- ``redis_available`` -- the paper could not deploy Redis on the HPC
  cluster; Redis-based mappings raise on such platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.runtime.cores import CoreLimiter


@dataclass(frozen=True)
class PlatformProfile:
    """An emulated execution platform."""

    name: str
    cores: Optional[int]
    cpu_speed: float = 1.0
    queue_latency: float = 0.0002
    redis_latency: float = 0.0010
    redis_available: bool = True

    def make_core_limiter(self) -> CoreLimiter:
        """Fresh core limiter for one run (token semaphore per core)."""
        return CoreLimiter(self.cores)

    def __post_init__(self) -> None:
        if self.cores is not None and self.cores < 1:
            raise ValueError("cores must be >= 1 or None")
        if self.cpu_speed <= 0:
            raise ValueError("cpu_speed must be positive")
        if self.queue_latency < 0 or self.redis_latency < 0:
            raise ValueError("latencies must be >= 0")


#: Imperial DoC virtual research server: 16 cores, Intel E5-2690 @ 2.60 GHz.
SERVER = PlatformProfile(name="server", cores=16, cpu_speed=1.00)

#: Google Cloud VM: 8 vCPUs, Intel Xeon @ 2.20 GHz; slightly slower cores and
#: pricier communication than the bare server.
CLOUD = PlatformProfile(
    name="cloud",
    cores=8,
    cpu_speed=2.20 / 2.60,
    queue_latency=0.0003,
    redis_latency=0.0014,
)

#: Imperial HPC short class: 64 CPUs, E5-2680 v3 @ 2.50 GHz.  "Since Redis
#: cannot be deployed on the HPC, no mapping based on Redis runs on HPC."
HPC = PlatformProfile(
    name="hpc",
    cores=64,
    cpu_speed=2.50 / 2.60,
    redis_available=False,
)

#: Unconstrained local profile for tests and examples.
LAPTOP = PlatformProfile(name="laptop", cores=None, queue_latency=0.0, redis_latency=0.0)

_REGISTRY = {p.name: p for p in (SERVER, CLOUD, HPC, LAPTOP)}


def get_platform(name: str) -> PlatformProfile:
    """Look up a built-in platform profile by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown platform {name!r}; known: {known}") from None
