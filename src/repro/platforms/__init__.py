"""Platform profiles for the paper's three testbeds."""

from repro.platforms.profiles import CLOUD, HPC, LAPTOP, SERVER, PlatformProfile, get_platform

__all__ = ["CLOUD", "HPC", "LAPTOP", "SERVER", "PlatformProfile", "get_platform"]
