"""Redis-backed global task board shared by the Redis mappings.

Replaces the multiprocessing global queue of Figure 2 with a **Redis
Stream** consumed through a consumer group (Section 3.1.1): producers
``XADD`` tasks, workers ``XREADGROUP`` with the ``>`` cursor (cooperative
consumption, at-least-once), and ``XACK`` on completion.  A Redis string
counter tracks *outstanding* work for the safe termination condition, and
``XINFO CONSUMERS`` provides the per-consumer idle times the
``dyn_auto_redis`` strategy monitors.

Poison pills are stream entries with a ``pill`` field; they carry no
outstanding-count so they never interfere with the drain proof.

Batched transport: a stream entry's ``task`` field may carry a
:class:`~repro.runtime.queues.Batch` envelope of up to ``batch_size``
tasks instead of a single one.  The outstanding counter still counts
*tasks* -- producers ``INCRBY len(batch)`` before publishing, and
completion releases the whole envelope's credits with one conditional
``XACKDECR amount=len(batch)`` -- so the drain proof is exact at batch
granularity while the command count (the per-tuple round-trip cost the
paper identifies as the Redis mappings' handicap, Section 5.6) drops by
the batch factor.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.redisim.client import RedisClient
from repro.runtime.queues import as_envelope, batch_items, chunked

#: Sentinel returned by :meth:`RedisTaskBoard.fetch` for pill entries.
PILL = "__pill__"


def reclaim_threshold_ms(options, clock) -> float:
    """Resolve the XAUTOCLAIM idle threshold shared by the Redis mappings.

    ``reclaim_idle`` is in *nominal* seconds -- scaled by the clock like
    every other time knob, so the margin over task service times (nominal
    too) survives any time_scale; the default sits far above the paper's
    second-scale tasks, so only genuinely dead consumers are robbed.  A
    100 ms real floor prevents sub-millisecond theft windows at test-speed
    scales.  Tests can pin the threshold directly with ``reclaim_idle_ms``
    (real milliseconds).
    """
    reclaim_idle = options.get("reclaim_idle", 30.0)
    return options.get(
        "reclaim_idle_ms", max(1000.0 * clock.to_real(reclaim_idle), 100.0)
    )


class RedisTaskBoard:
    """Global task stream + outstanding counter on one Redis deployment.

    Parameters
    ----------
    client:
        Redis connection of the coordinating thread.  Workers should use
        their own clients (one "connection" each) created from the same
        server, passing them to the per-call methods.
    namespace:
        Key prefix isolating this run from others on the shared server.
    group:
        Consumer group name.
    """

    def __init__(
        self, client: RedisClient, namespace: str = "repro", group: str = "workers"
    ) -> None:
        self.client = client
        self.namespace = namespace
        self.group = group
        self.stream_key = f"{namespace}:tasks"
        self.counter_key = f"{namespace}:outstanding"

    # ------------------------------------------------------------ lifecycle
    def setup(self) -> None:
        """Create the stream + group and zero the outstanding counter."""
        self.client.delete(self.stream_key, self.counter_key)
        self.client.xgroup_create(self.stream_key, self.group, id="0", mkstream=True)
        self.client.set(self.counter_key, 0)

    def teardown(self) -> None:
        self.client.delete(self.stream_key, self.counter_key)

    # ------------------------------------------------------------- producer
    def put(self, task: Any, client: Optional[RedisClient] = None) -> str:
        """Enqueue one task (increments outstanding *before* publishing)."""
        c = client if client is not None else self.client
        c.incr(self.counter_key)
        return c.xadd(self.stream_key, {"task": task})

    def put_many(
        self,
        tasks: Sequence[Any],
        client: Optional[RedisClient] = None,
        batch_size: int = 1,
    ) -> None:
        """Enqueue tasks grouped into batch envelopes, one round trip total.

        Tasks are chunked into envelopes of at most ``batch_size`` and the
        whole publication (one ``INCRBY len(chunk)`` + one ``XADD`` per
        envelope) runs as a single pipeline.
        """
        if not tasks:
            return
        c = client if client is not None else self.client
        pipe = c.pipeline()
        self.queue_tasks(pipe, list(tasks), batch_size)
        pipe.execute()

    def queue_tasks(self, pipe, tasks: List[Any], batch_size: int) -> None:
        """Append the publication commands for ``tasks`` to a pipeline.

        Credits are added (``INCRBY``) before each envelope's ``XADD``
        within the same transaction, preserving the put-before-publish
        ordering the drain proof relies on.
        """
        for chunk in chunked(tasks, max(1, batch_size)):
            if len(chunk) == 1:
                pipe.incr(self.counter_key)
            else:
                pipe.incrby(self.counter_key, len(chunk))
            pipe.xadd(self.stream_key, {"task": as_envelope(chunk)})

    def put_pills(self, count: int, client: Optional[RedisClient] = None) -> None:
        c = client if client is not None else self.client
        for _ in range(count):
            c.xadd(self.stream_key, {"pill": 1})

    # ------------------------------------------------------------- consumer
    def fetch(
        self,
        consumer: str,
        client: RedisClient,
        block_ms: Optional[int] = None,
        count: int = 1,
    ) -> List[Tuple[str, Any]]:
        """Read new entries for ``consumer``; pills come back as ``PILL``."""
        reply = client.xreadgroup(
            self.group,
            consumer,
            {self.stream_key: ">"},
            count=count,
            block=block_ms,
        )
        tasks: List[Tuple[str, Any]] = []
        for _key, entries in reply:
            for entry_id, fields in entries:
                if "pill" in fields:
                    tasks.append((entry_id, PILL))
                else:
                    tasks.append((entry_id, fields["task"]))
        return tasks

    @staticmethod
    def entry_tasks(payload: Any) -> List[Any]:
        """The tasks carried by one fetched entry (unwraps batch envelopes)."""
        return batch_items(payload)

    def ack(self, entry_id: str, client: RedisClient) -> None:
        client.xack(self.stream_key, self.group, entry_id)

    def complete(self, client: RedisClient) -> None:
        """Declare one fetched task fully processed (children already put)."""
        client.decr(self.counter_key)

    def finish(self, entry_id: str, children: List[Any], client: RedisClient) -> None:
        """Publish children + XACK + complete in one pipelined round trip.

        The per-task hot path: doing these as individual commands costs one
        client/server round trip (and one server-lock acquisition) each,
        which under many workers dominates fine-grained task streams; a
        real deployment pipelines them for exactly the same reason.

        The ack and the completion decrement are one conditional step
        (XACKDECR): when an entry was reclaimed (XAUTOCLAIM) and finished
        by both its original consumer and its adopter, only the first
        finisher's ack succeeds and only that one decrements -- the
        outstanding counter stays exactly-once per entry and can never go
        negative.
        """
        self.finish_entry(entry_id, 1, children, client, batch_size=1)

    def finish_entry(
        self,
        entry_id: str,
        amount: int,
        children: List[Any],
        client: RedisClient,
        batch_size: int = 1,
    ) -> None:
        """Batch-aware :meth:`finish`: one envelope of ``amount`` tasks done.

        Children are re-published in envelopes of at most ``batch_size``;
        the consumed entry's ``amount`` credits are released with one
        conditional ``XACKDECR`` (all-or-nothing with the ack, exactly-once
        under reclaim races).  Still a single pipelined round trip.
        """
        pipe = client.pipeline()
        self.queue_tasks(pipe, children, batch_size)
        pipe.xack_decr(
            self.stream_key, self.group, entry_id, self.counter_key, amount
        )
        pipe.execute()

    # ------------------------------------------------------------ monitoring
    def outstanding(self, client: Optional[RedisClient] = None) -> int:
        c = client if client is not None else self.client
        value = c.get(self.counter_key)
        return 0 if value is None else int(value)

    def is_drained(self, client: Optional[RedisClient] = None) -> bool:
        # Strict == 0: completion is exactly-once per entry (XACKDECR), so
        # the counter never goes negative, and a hypothetical accounting bug
        # should surface as a visible join timeout rather than silently
        # dropping still-outstanding work.
        return self.outstanding(client) == 0

    def backlog(self, client: Optional[RedisClient] = None) -> int:
        """Entries not yet delivered to the group (the group's lag)."""
        c = client if client is not None else self.client
        for info in c.xinfo_groups(self.stream_key):
            if info["name"] == self.group:
                return int(info["lag"])
        return 0

    def avg_idle_ms(
        self,
        consumers: Optional[Iterable[str]] = None,
        client: Optional[RedisClient] = None,
    ) -> float:
        """Average idle time (ms) of the given consumers (default: all)."""
        c = client if client is not None else self.client
        rows = c.xinfo_consumers(self.stream_key, self.group)
        if consumers is not None:
            wanted = set(consumers)
            rows = [row for row in rows if row["name"] in wanted]
        if not rows:
            return 0.0
        return float(sum(row["idle"] for row in rows) / len(rows))

    # -------------------------------------------------------------- recovery
    def recover_stale(
        self, consumer: str, client: RedisClient, min_idle_ms: float
    ) -> List[Tuple[str, Any]]:
        """Claim tasks stuck with dead consumers (XAUTOCLAIM recovery).

        The at-least-once safety net: if a worker crashes after fetching
        but before acking, its entries stay in the PEL and any peer can
        adopt them once they are idle enough.
        """
        _cursor, entries = client.xautoclaim(
            self.stream_key, self.group, consumer, min_idle_ms
        )
        recovered: List[Tuple[str, Any]] = []
        for entry_id, fields in entries:
            if "pill" in fields:
                # Pills are immediately re-acked; they were for the dead
                # consumer and termination broadcasting re-sends as needed.
                client.xack(self.stream_key, self.group, entry_id)
                continue
            recovered.append((entry_id, fields["task"]))
        return recovered
