"""Dynamic scheduling over a multiprocessing-style global queue.

``dyn_multi`` (Figure 2): instead of pre-assigning PEs to processes, the
whole workflow graph is given to every worker, and a **global queue** holds
``(PE, port, data)`` tasks.  Workers fetch whatever task is available,
execute the referenced PE on their own graph copy, push any produced tasks
back, and repeat.  Load balances itself; per-PE instance boundaries vanish
-- which is also why plain dynamic scheduling cannot honour stateful PEs or
groupings (enforced by ``supports_stateful = False``).

Termination follows Section 3.2.3: a worker that keeps finding the queue
empty (``empty_retries`` consecutive timeouts) evaluates the termination
condition and, if met, broadcasts poison pills so its peers exit without
waiting out their own retry budgets.  The safe condition is the
outstanding-work proof of :class:`~repro.runtime.queues.TrackedQueue`; the
paper's raw emptiness check is available for the ablation via
``TerminationPolicy(unsafe_empty_check=True)``.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from repro.autoscale.trace import ScalingTrace
from repro.core.concrete import ConcreteWorkflow
from repro.core.pe import GenericPE
from repro.mappings.base import (
    EnactmentState,
    Mapping,
    dispatch_emissions,
    instantiate,
    marshal,
    resolve_batch_size,
)
from repro.mappings.registry import Capabilities, register_mapping
from repro.mappings.termination import TerminationPolicy
from repro.runtime.queues import (
    POISON_PILL,
    Empty,
    TrackedQueue,
    as_envelope,
    batch_items,
    chunked,
)
from repro.runtime.workers import WorkerPool

#: A task is (pe_name, input_port_or_None, payload).  ``None`` port means
#: the payload is a full inputs mapping (source-PE driving).
Task = Tuple[str, Optional[str], Any]


class DynamicWorkforce:
    """Shared mechanics of the dynamic-multiprocessing mappings.

    Owns the global queue, the per-worker graph copies and the task
    processing/termination loops; ``dyn_multi`` drives it with dedicated
    always-active workers, ``dyn_auto_multi`` drives it with auto-scaled
    worker sessions.
    """

    def __init__(self, state: EnactmentState, policy: TerminationPolicy) -> None:
        self.state = state
        self.policy = policy
        #: Tasks per queue item; 1 keeps the pre-batching single-tuple puts.
        self.batch_size: int = resolve_batch_size(state.options)
        self.queue: TrackedQueue = TrackedQueue()
        self.concrete = ConcreteWorkflow.single_instance(state.graph)
        self._copies: Dict[str, Dict[str, GenericPE]] = {}
        self._copies_lock = threading.Lock()
        self.pills_sent = threading.Event()
        #: Streaming: set once the live input is closed (always set for the
        #: one-shot path, whose inputs are complete from the start).
        self.input_closed = threading.Event()
        if state.feed is None:
            self.input_closed.set()

    # ------------------------------------------------------------- seeding
    def seed_roots(self) -> None:
        if self.batch_size > 1:
            for root, items in self.state.provided.items():
                for chunk in chunked([(root, None, item) for item in items], self.batch_size):
                    self.queue.put(as_envelope(chunk))
        else:
            for root, items in self.state.provided.items():
                for item in items:
                    self.queue.put((root, None, item))
        self.state.counters.inc("seed_tasks", self.queue.outstanding)

    def attach_feed(self) -> None:
        """Streaming seeding: pipe initial + live inputs into the queue.

        Runs on (or from) the driver thread while workers already consume:
        a generator-backed source therefore feeds the running workflow
        lazily.  ``input_closed`` is set only after every initial item is
        queued (the feed guarantees close-after-drain), so the drain proof
        in :meth:`is_terminated` cannot fire with input still in flight.
        A failing input iterable closes the stream and surfaces through
        the run's normal error path instead of hanging the job.
        """

        def sink(root: str, item: Dict[str, object]) -> None:
            self.queue.put((root, None, item))
            self.state.counters.inc("stream_inputs")

        try:
            self.state.feed.attach(sink, self.input_closed.set)
        except BaseException as exc:  # noqa: BLE001 - feed boundary
            self.state.record_error(exc)
            self.input_closed.set()

    def arm_cancel(self, workers: int) -> None:
        """Streaming: a job cancel closes the input and pills all workers."""
        if self.state.control is not None:
            def on_cancel() -> None:
                self.input_closed.set()
                self.broadcast_pills(workers)

            self.state.control.on_cancel(on_cancel)

    # ------------------------------------------------------------- workers
    def _graph_copy(self, worker_key: str) -> Dict[str, GenericPE]:
        """Per-worker deep copy of all PEs (Algorithm 1 line 49)."""
        with self._copies_lock:
            copies = self._copies.get(worker_key)
        if copies is None:
            copies = {
                name: instantiate(pe, 0, 1, self.state.ctx)
                for name, pe in self.state.graph.pes.items()
            }
            for pe in copies.values():
                pe.preprocess()
            with self._copies_lock:
                self._copies[worker_key] = copies
            self.state.counters.inc("graph_copies")
        return copies

    def process_task(self, copies: Dict[str, GenericPE], task: Task) -> None:
        """Execute one task and enqueue its children."""
        pe_name, port, payload = task
        inputs = payload if port is None else {port: payload}
        try:
            emissions = copies[pe_name]._invoke(inputs)
            self.state.counters.inc("tasks")
            children = [
                (delivery.dst, delivery.dst_port, marshal(delivery.data))
                for delivery in dispatch_emissions(
                    self.concrete, self.state.collector, pe_name, 0, emissions
                )
            ]
            for chunk in chunked(children, self.batch_size):
                # Queue transfer cost is charged once per queue item: the
                # amortization batching exists for.
                if self.state.platform.queue_latency > 0:
                    self.state.ctx.io_wait(self.state.platform.queue_latency)
                self.queue.put(as_envelope(chunk))
                self.state.counters.inc("queue_puts")
        finally:
            self.queue.mark_done()

    def process_item(self, copies: Dict[str, GenericPE], item: Any) -> int:
        """Run every task carried by one queue item; returns the count.

        Batch-aware consumption: the envelope is iterated without
        re-entering the queue machinery per tuple, and each tuple is
        settled individually (``mark_done`` inside :meth:`process_task`) so
        the outstanding count is exact even if a mid-envelope task fails.
        """
        tasks = batch_items(item)
        for task in tasks:
            self.process_task(copies, task)
        return len(tasks)

    def is_terminated(self) -> bool:
        """The termination condition (safe by default, see module docs).

        A streaming run cannot terminate while its input is still open --
        an empty (even provably drained) queue only means the sources are
        idle between sends.  A cancelled job terminates unconditionally.
        """
        if self.state.cancelled():
            return True
        if not self.input_closed.is_set():
            return False
        if self.policy.unsafe_empty_check:
            return self.queue.empty()
        return self.queue.is_drained()

    def broadcast_pills(self, count: int) -> None:
        if not self.pills_sent.is_set():
            self.pills_sent.set()
            self.queue.put_pill(count)
            self.state.counters.inc("pills", count)

    def worker_loop(self, worker_key: str, total_workers: int) -> None:
        """Dedicated-worker loop (dyn_multi): run until termination."""
        copies = self._graph_copy(worker_key)
        timeout = self.state.clock.to_real(self.policy.poll_interval)
        empty_streak = 0
        while True:
            try:
                task = self.queue.get(timeout=timeout)
            except Empty:
                empty_streak += 1
                self.state.counters.inc("empty_polls")
                if empty_streak >= self.policy.empty_retries and self.is_terminated():
                    self.broadcast_pills(total_workers)
                    return
                continue
            if task is POISON_PILL:
                return
            empty_streak = 0
            self.process_item(copies, task)

    def drain_session(self, worker_key: str, chunk: int) -> int:
        """Auto-scaled session: process up to ``chunk`` tasks, stop on empty.

        Returns the number of tasks processed, so the caller can observe
        starvation.  Sessions never decide termination -- the auto-scaler's
        ``process`` loop owns that (Algorithm 1).  ``chunk`` is a soft cap
        at batch granularity: an envelope is never split across sessions.
        """
        copies = self._graph_copy(worker_key)
        timeout = self.state.clock.to_real(self.policy.poll_interval)
        processed = 0
        while processed < chunk:
            try:
                task = self.queue.get(timeout=timeout)
            except Empty:
                break
            if task is POISON_PILL:
                break
            processed += self.process_item(copies, task)
        return processed


@register_mapping(
    Capabilities(
        stateful=False,
        dynamic=True,
        batching=True,
        fusion=True,
        streaming=True,
        description="Dynamic scheduling on a global multiprocessing queue",
    )
)
class DynMultiMapping(Mapping):
    """Dynamic scheduling on the multiprocessing-style queue (``dyn_multi``).

    Streaming submissions run the same dedicated worker loops on the
    session's warm :class:`~repro.runtime.workers.WorkerPool`: live sends
    drop tasks straight onto the global queue, and the termination check
    additionally requires the input to be closed (see
    :meth:`DynamicWorkforce.is_terminated`).
    """

    name = "dyn_multi"
    supports_stateful = False
    supports_streaming = True
    wants_pool = True

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        policy = state.options.get("termination", TerminationPolicy())
        workforce = DynamicWorkforce(state, policy)
        if state.streaming:
            return self._enact_streaming(state, workforce)
        workforce.seed_roots()

        def run_worker(index: int) -> None:
            worker_id = f"dyn-{index}"
            try:
                workforce.worker_loop(worker_id, state.processes)
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                state.record_error(exc)
                workforce.broadcast_pills(state.processes)
            finally:
                state.meter.deactivate(worker_id)

        threads = [
            threading.Thread(target=run_worker, args=(i,), name=f"dyn-{i}", daemon=True)
            for i in range(state.processes)
        ]
        # A statically launched process is active from *launch initiation*;
        # all workers are marked active before the first thread starts, so
        # the thread-spawn stagger (a substrate artifact: each start()
        # contends on the GIL with already-running workers) is not
        # subtracted from the measured process time.
        for index in range(len(threads)):
            state.meter.activate(f"dyn-{index}")
        for thread in threads:
            thread.start()
        timeout = state.options.get("join_timeout", 300.0)
        for thread in threads:
            thread.join(timeout=timeout)
            if thread.is_alive():
                state.record_error(
                    TimeoutError(f"worker {thread.name} did not finish in {timeout}s")
                )
                break
        return None

    def _enact_streaming(
        self, state: EnactmentState, workforce: DynamicWorkforce
    ) -> Optional[ScalingTrace]:
        """Dedicated worker loops on a (possibly warm) pool, fed live."""
        workforce.arm_cancel(state.processes)
        pool = state.pool
        own_pool = pool is None
        if own_pool:
            pool = WorkerPool(state.processes, name=f"dyn-{state.graph.name}")

        def run_worker(index: int) -> None:
            worker_id = f"dyn-{index}"
            try:
                workforce.worker_loop(worker_id, state.processes)
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                state.record_error(exc)
                workforce.broadcast_pills(state.processes)
            finally:
                state.meter.deactivate(worker_id)

        for index in range(state.processes):
            state.meter.activate(f"dyn-{index}")
        timeout = state.options.get("join_timeout", 300.0)
        # Feed stage on its own thread: a blocked input iterable must not
        # pin the driver -- on cancel the workers unwind and the stuck
        # feeder is abandoned (bounded join below).
        feeder = threading.Thread(
            target=workforce.attach_feed,
            name=f"feed-{state.graph.name}",
            daemon=True,
        )
        try:
            handles = [
                pool.apply_async(run_worker, (index,))
                for index in range(state.processes)
            ]
            feeder.start()
            for index, handle in enumerate(handles):
                handle.wait(timeout=timeout)
                if not handle.ready():
                    state.record_error(
                        TimeoutError(f"worker dyn-{index} did not finish in {timeout}s")
                    )
                    break
        finally:
            if own_pool:
                pool.close()
                pool.join(timeout=5.0)
            if feeder.ident is not None:
                # A cancelled job abandons a still-blocked feeder
                # immediately; otherwise give it a bounded grace period.
                feeder.join(timeout=0.1 if state.cancelled() else 5.0)
                if feeder.is_alive() and not state.cancelled():
                    state.record_error(
                        TimeoutError("live input feeder did not finish")
                    )
        return None
