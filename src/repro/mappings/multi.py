"""Static Multiprocessing mapping (the paper's ``multi`` baseline).

The native dispel4py parallel mapping: the abstract workflow is statically
partitioned (Figure 1 rule, :mod:`repro.core.partition`), every PE instance
gets a dedicated worker with a private input queue, and data flows
port-to-port.  Termination uses counted poison pills: each finishing
upstream instance sends one pill to every downstream instance, and an
instance closes an input port after collecting one pill per producer
instance.

Characteristics the evaluation relies on:

- handles stateful PEs and groupings natively (each instance is a dedicated
  worker holding local state) -- "an appropriate baseline for all
  experimentation";
- needs at least one process per instance
  (:class:`~repro.core.exceptions.InsufficientProcessesError` below the
  minimum -- Seismic forces 12, Sentiment forces 14);
- static allocation wastes leftover processes and cannot adapt to skewed
  loads, which is what dynamic scheduling improves on.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.autoscale.trace import ScalingTrace
from repro.core.concrete import ConcreteWorkflow
from repro.mappings.base import (
    EnactmentState,
    Mapping,
    dispatch_emissions,
    instantiate,
    marshal,
    resolve_batch_linger,
    resolve_batch_size,
)
from repro.mappings.registry import Capabilities, register_mapping
from repro.runtime.queues import BatchingBuffer, CloseableQueue, Empty, batch_items

#: Message tags on instance queues.
_DATA = "data"
_PILL = "pill"


@register_mapping(
    Capabilities(
        stateful=True,
        batching=True,
        fusion=True,
        static_allocation=True,
        description="Static Multiprocessing baseline (one process per instance)",
    )
)
class MultiMapping(Mapping):
    """Static one-instance-per-process enactment."""

    name = "multi"
    supports_stateful = True

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        graph = state.graph
        concrete = ConcreteWorkflow.from_static(graph, state.processes)
        allocation = concrete.allocation
        batch_size = resolve_batch_size(state.options)
        batch_linger = resolve_batch_linger(state.options)
        state.counters.inc("instances", concrete.total_instances())
        state.counters.inc("idle_processes", state.processes - concrete.total_instances())

        queues: Dict[Tuple[str, int], CloseableQueue] = {
            (name, idx): CloseableQueue()
            for name, count in allocation.items()
            for idx in range(count)
        }

        # Expected pills per (instance, port): one per upstream instance per
        # in-edge.  Pills are broadcast to *all* destination instances
        # regardless of grouping, so every instance can prove closure.
        expected_pills: Dict[Tuple[str, int], Dict[str, int]] = {}
        for name, count in allocation.items():
            per_port: Dict[str, int] = {}
            for edge in graph.in_edges(name):
                per_port[edge.dst_port] = per_port.get(edge.dst_port, 0) + allocation[edge.src]
            for idx in range(count):
                expected_pills[(name, idx)] = dict(per_port)

        send_lock = threading.Lock()

        def send(dst: str, dst_index: int, message: Any) -> None:
            # Queue transfer cost is charged to the sender (as a pickle +
            # pipe write would be), once per queue item -- a batch envelope
            # is one transfer; no core is held while waiting.
            if state.platform.queue_latency > 0:
                state.ctx.io_wait(state.platform.queue_latency)
            queues[(dst, dst_index)].put(message)
            state.counters.inc("queue_puts")

        def make_deliver():
            """Per-worker delivery path: direct sends, or batched via a
            worker-local :class:`BatchingBuffer` per destination instance.

            Buffers are worker-owned (no locking on the hot path); the
            returned ``flush`` MUST run before the worker's pills go out,
            so end-of-stream can never overtake buffered tuples on the
            same channel (FIFO per queue then guarantees pill-after-data).
            The third element, ``poll``, is non-None when a linger bound is
            set: the worker calls it while idle so a buffered tail honours
            the bound even with no further traffic to that destination.
            """
            if batch_size <= 1:
                return send, lambda: None, None
            buffers: Dict[Tuple[str, int], BatchingBuffer] = {}

            def deliver(dst: str, dst_index: int, message: Any) -> None:
                key = (dst, dst_index)
                buffer = buffers.get(key)
                if buffer is None:
                    buffer = BatchingBuffer(
                        lambda item, _key=key: send(_key[0], _key[1], item),
                        batch_size=batch_size,
                        linger=batch_linger,
                    )
                    # Attached so a close() of the destination channel can
                    # never strand (or outrace) a buffered tail tuple.
                    queues[key].attach_buffer(buffer)
                    buffers[key] = buffer
                buffer.add(message)

            def flush() -> None:
                for buffer in buffers.values():
                    buffer.flush()

            def poll() -> None:
                for buffer in buffers.values():
                    buffer.poll()

            return deliver, flush, (poll if batch_linger > 0 else None)

        def broadcast_pills(pe_name: str) -> None:
            """A finished instance closes every downstream instance's port."""
            with send_lock:
                for edge in graph.out_edges(pe_name):
                    for dst_index in range(allocation[edge.dst]):
                        send(edge.dst, dst_index, (_PILL, edge.dst_port, None))
                        state.counters.inc("pills")

        def route_out(
            pe_name: str, index: int, emissions: List[Tuple[str, Any]], deliver
        ) -> None:
            for delivery in dispatch_emissions(
                concrete, state.collector, pe_name, index, emissions
            ):
                deliver(delivery.dst, delivery.dst_index, (_DATA, delivery.dst_port, marshal(delivery.data)))

        def split_inputs(items: List[Dict[str, Any]], count: int) -> List[List[Dict[str, Any]]]:
            shares: List[List[Dict[str, Any]]] = [[] for _ in range(count)]
            for i, item in enumerate(items):
                shares[i % count].append(item)
            return shares

        root_shares: Dict[Tuple[str, int], List[Dict[str, Any]]] = {}
        for root, items in state.provided.items():
            shares = split_inputs(items, allocation[root])
            for idx, share in enumerate(shares):
                root_shares[(root, idx)] = share

        def worker(pe_name: str, index: int) -> None:
            worker_id = f"{pe_name}.{index}"
            deliver, flush_outbox, poll_outbox = make_deliver()
            try:
                instance = instantiate(graph.pe(pe_name), index, allocation[pe_name], state.ctx)
                instance.preprocess()
                for item in root_shares.get((pe_name, index), []):
                    emissions = instance._invoke(item)
                    state.counters.inc("tasks")
                    route_out(pe_name, index, emissions, deliver)
                remaining = dict(expected_pills[(pe_name, index)])
                queue = queues[(pe_name, index)]
                while any(v > 0 for v in remaining.values()):
                    if poll_outbox is None:
                        item = queue.get()
                    else:
                        # Wake at the linger cadence so a buffered tail
                        # flushes on deadline even while we are starved of
                        # input (the documented upper bound on buffering).
                        try:
                            item = queue.get(timeout=batch_linger)
                        except Empty:
                            poll_outbox()
                            continue
                    # A queue item is a message or a batch envelope of
                    # messages; iterate without re-polling per tuple.
                    for tag, port, payload in batch_items(item):
                        if tag == _PILL:
                            remaining[port] -= 1
                            continue
                        emissions = instance._invoke({port: payload})
                        state.counters.inc("tasks")
                        route_out(pe_name, index, emissions, deliver)
                route_out(pe_name, index, instance._flush_postprocess(), deliver)
                # Flush buffered tuples BEFORE the pills: per-queue FIFO
                # then guarantees no consumer sees end-of-stream with our
                # data still buffered behind it.
                flush_outbox()
                broadcast_pills(pe_name)
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                state.record_error(exc)
                # Close downstream anyway so peers do not hang on a dead
                # producer; the error is re-raised after the run.
                try:
                    flush_outbox()
                    broadcast_pills(pe_name)
                except BaseException as cleanup_exc:  # pragma: no cover
                    state.record_error(cleanup_exc)
            finally:
                state.meter.deactivate(worker_id)

        threads = [
            threading.Thread(
                target=worker,
                args=(name, idx),
                name=f"multi-{name}.{idx}",
                daemon=True,
            )
            for name, idx in concrete.all_instances()
        ]
        # Metered from launch initiation, not first schedule: the spawn
        # stagger is a thread-substrate artifact, and a static process is
        # active from launch to termination (accounting module docs).
        for name, idx in concrete.all_instances():
            state.meter.activate(f"{name}.{idx}")
        for thread in threads:
            thread.start()
        timeout = state.options.get("join_timeout", 300.0)
        for thread in threads:
            thread.join(timeout=timeout)
            if thread.is_alive():
                state.record_error(
                    TimeoutError(f"worker {thread.name} did not finish in {timeout}s")
                )
                break
        return None
