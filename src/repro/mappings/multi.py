"""Static Multiprocessing mapping (the paper's ``multi`` baseline).

The native dispel4py parallel mapping: the abstract workflow is statically
partitioned (Figure 1 rule, :mod:`repro.core.partition`), every PE instance
gets a dedicated worker with a private input queue, and data flows
port-to-port.  Termination uses counted poison pills: each finishing
upstream instance sends one pill to every downstream instance, and an
instance closes an input port after collecting one pill per producer
instance.

Characteristics the evaluation relies on:

- handles stateful PEs and groupings natively (each instance is a dedicated
  worker holding local state) -- "an appropriate baseline for all
  experimentation";
- needs at least one process per instance
  (:class:`~repro.core.exceptions.InsufficientProcessesError` below the
  minimum -- Seismic forces 12, Sentiment forces 14);
- static allocation wastes leftover processes and cannot adapt to skewed
  loads, which is what dynamic scheduling improves on.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.autoscale.trace import ScalingTrace
from repro.core.concrete import ConcreteWorkflow
from repro.mappings.base import (
    EnactmentState,
    Mapping,
    dispatch_emissions,
    instantiate,
    marshal,
    resolve_batch_linger,
    resolve_batch_size,
)
from repro.mappings.registry import Capabilities, register_mapping
from repro.runtime.queues import (
    POISON_PILL,
    BatchingBuffer,
    CloseableQueue,
    Empty,
    batch_items,
)
from repro.runtime.workers import WorkerPool

#: Message tags on instance queues.
_DATA = "data"
_PILL = "pill"


class _WorkerCancelled(BaseException):
    """Internal: a streaming worker observed the job's cancel flag."""


@register_mapping(
    Capabilities(
        stateful=True,
        batching=True,
        fusion=True,
        streaming=True,
        static_allocation=True,
        description="Static Multiprocessing baseline (one process per instance)",
    )
)
class MultiMapping(Mapping):
    """Static one-instance-per-process enactment.

    Streaming submissions give every *source* instance a private input
    channel fed round-robin by the live :class:`~repro.mappings.base.
    LiveFeed`; the channel's poison pill (sent at ``close_input``) plays
    the role the exhausted input share plays in the one-shot path, after
    which the usual counted-pill termination cascades downstream.  Workers
    run on the session's warm :class:`WorkerPool` (or an ephemeral one),
    poll a cancel flag, and on cancellation still close their downstream
    ports so no peer blocks on a dead producer.
    """

    name = "multi"
    supports_stateful = True
    supports_streaming = True
    wants_pool = True

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        graph = state.graph
        concrete = ConcreteWorkflow.from_static(graph, state.processes)
        allocation = concrete.allocation
        batch_size = resolve_batch_size(state.options)
        batch_linger = resolve_batch_linger(state.options)
        state.counters.inc("instances", concrete.total_instances())
        state.counters.inc("idle_processes", state.processes - concrete.total_instances())

        queues: Dict[Tuple[str, int], CloseableQueue] = {
            (name, idx): CloseableQueue()
            for name, count in allocation.items()
            for idx in range(count)
        }

        # Expected pills per (instance, port): one per upstream instance per
        # in-edge.  Pills are broadcast to *all* destination instances
        # regardless of grouping, so every instance can prove closure.
        expected_pills: Dict[Tuple[str, int], Dict[str, int]] = {}
        for name, count in allocation.items():
            per_port: Dict[str, int] = {}
            for edge in graph.in_edges(name):
                per_port[edge.dst_port] = per_port.get(edge.dst_port, 0) + allocation[edge.src]
            for idx in range(count):
                expected_pills[(name, idx)] = dict(per_port)

        send_lock = threading.Lock()

        def send(dst: str, dst_index: int, message: Any) -> None:
            # Queue transfer cost is charged to the sender (as a pickle +
            # pipe write would be), once per queue item -- a batch envelope
            # is one transfer; no core is held while waiting.
            if state.platform.queue_latency > 0:
                state.ctx.io_wait(state.platform.queue_latency)
            queues[(dst, dst_index)].put(message)
            state.counters.inc("queue_puts")

        def make_deliver():
            """Per-worker delivery path: direct sends, or batched via a
            worker-local :class:`BatchingBuffer` per destination instance.

            Buffers are worker-owned (no locking on the hot path); the
            returned ``flush`` MUST run before the worker's pills go out,
            so end-of-stream can never overtake buffered tuples on the
            same channel (FIFO per queue then guarantees pill-after-data).
            The third element, ``poll``, is non-None when a linger bound is
            set: the worker calls it while idle so a buffered tail honours
            the bound even with no further traffic to that destination.
            """
            if batch_size <= 1:
                return send, lambda: None, None
            buffers: Dict[Tuple[str, int], BatchingBuffer] = {}

            def deliver(dst: str, dst_index: int, message: Any) -> None:
                key = (dst, dst_index)
                buffer = buffers.get(key)
                if buffer is None:
                    buffer = BatchingBuffer(
                        lambda item, _key=key: send(_key[0], _key[1], item),
                        batch_size=batch_size,
                        linger=batch_linger,
                    )
                    # Attached so a close() of the destination channel can
                    # never strand (or outrace) a buffered tail tuple.
                    queues[key].attach_buffer(buffer)
                    buffers[key] = buffer
                buffer.add(message)

            def flush() -> None:
                for buffer in buffers.values():
                    buffer.flush()

            def poll() -> None:
                for buffer in buffers.values():
                    buffer.poll()

            return deliver, flush, (poll if batch_linger > 0 else None)

        def broadcast_pills(pe_name: str) -> None:
            """A finished instance closes every downstream instance's port."""
            with send_lock:
                for edge in graph.out_edges(pe_name):
                    for dst_index in range(allocation[edge.dst]):
                        send(edge.dst, dst_index, (_PILL, edge.dst_port, None))
                        state.counters.inc("pills")

        def route_out(
            pe_name: str, index: int, emissions: List[Tuple[str, Any]], deliver
        ) -> None:
            for delivery in dispatch_emissions(
                concrete, state.collector, pe_name, index, emissions
            ):
                deliver(delivery.dst, delivery.dst_index, (_DATA, delivery.dst_port, marshal(delivery.data)))

        streaming = state.streaming
        root_shares: Dict[Tuple[str, int], List[Dict[str, Any]]] = {}
        channels: Dict[Tuple[str, int], CloseableQueue] = {}
        if streaming:
            # Source instances read from private live-input channels instead
            # of pre-split shares; the feed round-robins across instances
            # exactly as split_inputs does below.
            for root in state.provided:
                for idx in range(allocation[root]):
                    channels[(root, idx)] = CloseableQueue()
        else:

            def split_inputs(items: List[Dict[str, Any]], count: int) -> List[List[Dict[str, Any]]]:
                shares: List[List[Dict[str, Any]]] = [[] for _ in range(count)]
                for i, item in enumerate(items):
                    shares[i % count].append(item)
                return shares

            for root, items in state.provided.items():
                shares = split_inputs(items, allocation[root])
                for idx, share in enumerate(shares):
                    root_shares[(root, idx)] = share

        def worker(pe_name: str, index: int) -> None:
            worker_id = f"{pe_name}.{index}"
            deliver, flush_outbox, poll_outbox = make_deliver()
            try:
                instance = instantiate(graph.pe(pe_name), index, allocation[pe_name], state.ctx)
                instance.preprocess()
                for item in root_shares.get((pe_name, index), []):
                    emissions = instance._invoke(item)
                    state.counters.inc("tasks")
                    route_out(pe_name, index, emissions, deliver)
                remaining = dict(expected_pills[(pe_name, index)])
                queue = queues[(pe_name, index)]
                while any(v > 0 for v in remaining.values()):
                    if poll_outbox is None:
                        item = queue.get()
                    else:
                        # Wake at the linger cadence so a buffered tail
                        # flushes on deadline even while we are starved of
                        # input (the documented upper bound on buffering).
                        try:
                            item = queue.get(timeout=batch_linger)
                        except Empty:
                            poll_outbox()
                            continue
                    # A queue item is a message or a batch envelope of
                    # messages; iterate without re-polling per tuple.
                    for tag, port, payload in batch_items(item):
                        if tag == _PILL:
                            remaining[port] -= 1
                            continue
                        emissions = instance._invoke({port: payload})
                        state.counters.inc("tasks")
                        route_out(pe_name, index, emissions, deliver)
                route_out(pe_name, index, instance._flush_postprocess(), deliver)
                # Flush buffered tuples BEFORE the pills: per-queue FIFO
                # then guarantees no consumer sees end-of-stream with our
                # data still buffered behind it.
                flush_outbox()
                broadcast_pills(pe_name)
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                state.record_error(exc)
                # Close downstream anyway so peers do not hang on a dead
                # producer; the error is re-raised after the run.
                try:
                    flush_outbox()
                    broadcast_pills(pe_name)
                except BaseException as cleanup_exc:  # pragma: no cover
                    state.record_error(cleanup_exc)
            finally:
                state.meter.deactivate(worker_id)

        def worker_streaming(pe_name: str, index: int) -> None:
            """Live-input variant: channel-fed sources, cancel-aware loops."""
            worker_id = f"{pe_name}.{index}"
            cancelled = state.control.cancelled
            poll = state.options.get("stream_poll", 0.05)
            deliver, flush_outbox, poll_outbox = make_deliver()
            try:
                instance = instantiate(graph.pe(pe_name), index, allocation[pe_name], state.ctx)
                instance.preprocess()
                channel = channels.get((pe_name, index))
                if channel is not None:
                    while True:
                        if cancelled.is_set():
                            raise _WorkerCancelled()
                        try:
                            item = channel.get(timeout=poll)
                        except Empty:
                            if poll_outbox is not None:
                                poll_outbox()
                            continue
                        if item is POISON_PILL:
                            break
                        emissions = instance._invoke(item)
                        state.counters.inc("tasks")
                        route_out(pe_name, index, emissions, deliver)
                remaining = dict(expected_pills[(pe_name, index)])
                queue = queues[(pe_name, index)]
                while any(v > 0 for v in remaining.values()):
                    if cancelled.is_set():
                        raise _WorkerCancelled()
                    try:
                        item = queue.get(timeout=poll)
                    except Empty:
                        if poll_outbox is not None:
                            poll_outbox()
                        continue
                    for tag, port, payload in batch_items(item):
                        if tag == _PILL:
                            remaining[port] -= 1
                            continue
                        emissions = instance._invoke({port: payload})
                        state.counters.inc("tasks")
                        route_out(pe_name, index, emissions, deliver)
                route_out(pe_name, index, instance._flush_postprocess(), deliver)
                flush_outbox()
                broadcast_pills(pe_name)
            except _WorkerCancelled:
                # Abandon in-flight data, but still close downstream so no
                # peer blocks on a producer that will never finish.
                try:
                    broadcast_pills(pe_name)
                except BaseException as exc:  # pragma: no cover
                    state.record_error(exc)
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                state.record_error(exc)
                try:
                    flush_outbox()
                    broadcast_pills(pe_name)
                except BaseException as cleanup_exc:  # pragma: no cover
                    state.record_error(cleanup_exc)
            finally:
                state.meter.deactivate(worker_id)

        timeout = state.options.get("join_timeout", 300.0)
        # Metered from launch initiation, not first schedule: the spawn
        # stagger is a substrate artifact, and a static process is active
        # from launch to termination (accounting module docs).
        for name, idx in concrete.all_instances():
            state.meter.activate(f"{name}.{idx}")

        if streaming:
            pool = state.pool
            own_pool = pool is None
            if own_pool:
                pool = WorkerPool(state.processes, name=f"multi-{graph.name}")
            try:
                handles = [
                    pool.apply_async(worker_streaming, (name, idx))
                    for name, idx in concrete.all_instances()
                ]
                # The *feed* stage: drain initial inputs into the live
                # channels (lazily, while workers already consume), then
                # forward sends until close_input pills the channels.
                rr: Dict[str, int] = {}

                def feed_sink(root: str, item: Dict[str, Any]) -> None:
                    index = rr.get(root, 0)
                    rr[root] = index + 1
                    channels[(root, index % allocation[root])].put(item)
                    state.counters.inc("stream_inputs")

                def feed_close() -> None:
                    for channel in channels.values():
                        channel.close(1)

                def run_feed() -> None:
                    try:
                        state.feed.attach(feed_sink, feed_close)
                    except BaseException as exc:  # noqa: BLE001 - feed boundary
                        # A failing input iterable must not strand the
                        # workers: close the channels so they drain out, and
                        # surface the error through the normal error path.
                        state.record_error(exc)
                        feed_close()

                # The feed gets its own thread so a *blocked* input iterable
                # cannot pin the driver: on cancel the workers unwind and
                # the stuck feeder is abandoned (bounded join below).
                feeder = threading.Thread(
                    target=run_feed, name=f"feed-{graph.name}", daemon=True
                )
                feeder.start()
                for (name, idx), handle in zip(concrete.all_instances(), handles):
                    handle.wait(timeout=timeout)
                    if not handle.ready():
                        state.record_error(
                            TimeoutError(
                                f"worker multi-{name}.{idx} did not finish in {timeout}s"
                            )
                        )
                        break
                # A cancelled job abandons a still-blocked feeder
                # immediately; otherwise give it a bounded grace period.
                feeder.join(timeout=0.1 if state.cancelled() else 5.0)
                if feeder.is_alive() and not state.cancelled():
                    state.record_error(
                        TimeoutError("live input feeder did not finish")
                    )
            finally:
                if own_pool:
                    pool.close()
                    pool.join(timeout=5.0)
            return None

        threads = [
            threading.Thread(
                target=worker,
                args=(name, idx),
                name=f"multi-{name}.{idx}",
                daemon=True,
            )
            for name, idx in concrete.all_instances()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=timeout)
            if thread.is_alive():
                state.record_error(
                    TimeoutError(f"worker {thread.name} did not finish in {timeout}s")
                )
                break
        return None
