"""Shared machinery for all enactment mappings.

A :class:`Mapping` translates an abstract workflow into a concrete one and
enacts it (Figure 1).  Subclasses implement :meth:`Mapping._enact`; this
base class owns everything common to all six mappings:

- validation and feature gating (stateless-only mappings reject stateful
  graphs with :class:`~repro.core.exceptions.UnsupportedFeatureError`; Redis
  mappings reject platforms without Redis),
- construction of the run-wide :class:`~repro.core.context.ExecutionContext`
  (clock, emulated cores, seeds),
- input normalization (how source PEs are driven), eagerly for the one-shot
  :meth:`Mapping.execute` path and lazily (:func:`iter_root_inputs`) for
  streaming submissions,
- graph optimization: the ``fuse`` / ``optimize`` / ``plan`` options
  resolve to a :class:`~repro.planner.Plan` (via the
  :class:`~repro.planner.Planner`) whose rewritten graph -- fused chains
  collapsed into :class:`~repro.core.fusion.FusedPE` operators, dead
  outputs pruned, cheap PEs replicated -- is what the mapping enacts;
  every mapping executes planned graphs transparently,
- output collection (emissions on unconnected ports become results), with
  an optional streaming tap so consumers can observe results as they are
  produced,
- metric capture (runtime + total process time via the activity meter),
- the session lifecycle (:meth:`Mapping.deploy` / :meth:`Mapping.submit`):
  enactment splits into *deploy* (spin up reusable resources: a warm
  :class:`~repro.runtime.workers.WorkerPool`, a redisim server), *feed*
  (drive sources -- up front or incrementally through a live
  :class:`~repro.jobs.Job`), *drain* (run to completion of the closed
  input) and *teardown* (:meth:`Deployment.teardown`), so consecutive
  submissions on one session skip the spin-up.
"""

from __future__ import annotations

import copy
import pickle
import threading
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.autoscale.trace import ScalingTrace
from repro.core.concrete import ConcreteWorkflow, Delivery, instance_id
from repro.core.context import ExecutionContext
from repro.core.exceptions import MappingError, UnsupportedFeatureError
from repro.core.fusion import MemberMeter
from repro.core.graph import WorkflowGraph
from repro.core.pe import GenericPE
from repro.jobs import Job, JobCancelledError
from repro.metrics.result import RunResult
from repro.planner import Plan, Planner
from repro.net.server import RespTCPServer
from repro.platforms.profiles import LAPTOP, PlatformProfile
from repro.redisim.server import RedisServer
from repro.runtime.accounting import ActivityMeter
from repro.runtime.clock import Clock
from repro.runtime.workers import WorkerPool

InputSpec = Union[None, int, List[Any], Dict[str, Union[int, List[Any]]]]


def marshal(data: Any, copy_payloads: bool = False) -> Any:
    """Hand a payload across a queue boundary.

    With ``copy_payloads`` the payload is pickle round-tripped, as crossing
    a real process boundary would.  The default is pass-through: payload
    *ownership transfers* at emission (a producer never touches an emitted
    object again, matching dispel4py semantics), so the copy is not needed
    for correctness -- and under threads the pickle work would serialize on
    the GIL, distorting exactly the scaling behaviour being measured (real
    processes pay serialization cost in parallel).  The Redis mappings keep
    full client-side serialization, where it models a real client encoding
    its output buffer.
    """
    if copy_payloads:
        return pickle.loads(pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL))
    return data


def resolve_batch_size(options: Dict[str, Any]) -> int:
    """Validate and resolve the ``batch_size`` transport option.

    ``1`` (the default) means unbatched transport, byte-identical to the
    pre-batching engine; larger values let mappings ship up to that many
    tuples per queue/stream operation.
    """
    size = options.get("batch_size", 1)
    try:
        coerced = int(size)
    except (TypeError, ValueError):
        raise MappingError(f"batch_size must be an integer, got {size!r}") from None
    if coerced != size:
        raise MappingError(f"batch_size must be an integer, got {size!r}")
    if coerced < 1:
        raise MappingError(f"batch_size must be >= 1, got {coerced}")
    return coerced


def pop_plan_options(options: Dict[str, Any]) -> Dict[str, Any]:
    """Extract the graph-planning options from a mapping options dict.

    Popped keys: ``fuse`` (the classic fusion-only shim), ``optimize``
    (the full rewrite-rule planner), ``plan`` (a prebuilt
    :class:`~repro.planner.Plan` to enact as-is) and ``wanted_outputs``
    (the results keys the caller consumes, enabling dead-output
    elimination).  The resolution into an actual plan happens after
    graph validation, in :meth:`Mapping._resolve_plan`.
    """
    return {
        "fuse": options.pop("fuse", False),
        "optimize": options.pop("optimize", False),
        "plan": options.pop("plan", None),
        "wanted_outputs": options.pop("wanted_outputs", None),
    }


def resolve_batch_linger(options: Dict[str, Any]) -> float:
    """Resolve ``batch_linger_ms`` (real milliseconds) to real seconds.

    The linger bound is a *real-time* knob, like ``reclaim_idle_ms``: it
    caps how long a buffered tuple may wait for companions, which only
    matters on the wall clock.
    """
    linger_ms = options.get("batch_linger_ms", 0.0)
    try:
        linger_ms = float(linger_ms)
    except (TypeError, ValueError):
        raise MappingError(
            f"batch_linger_ms must be a number, got {linger_ms!r}"
        ) from None
    if linger_ms < 0:
        raise MappingError(f"batch_linger_ms must be >= 0, got {linger_ms}")
    return linger_ms / 1000.0


# --------------------------------------------------------------------- inputs

def first_input_port(pe: GenericPE) -> Optional[str]:
    """The port a bare data item is fed to (the "read item i" idiom)."""
    return next(iter(pe.inputconnections), None)


def expand_input_item(pe: GenericPE, item: Any) -> Dict[str, Any]:
    """One user-supplied item as a full input mapping for ``pe``.

    Dicts are taken as complete input mappings; any other value is fed to
    the PE's first input port.
    """
    if isinstance(item, dict):
        return item
    port = first_input_port(pe)
    if port is not None:
        return {port: item}
    raise MappingError(
        f"source PE {pe.name!r} has no input port to feed {item!r} to"
    )


def _expand_stream(pe: GenericPE, spec: Any) -> Iterator[Dict[str, Any]]:
    """Lazy expansion of one root's input spec into input mappings.

    Spec errors that are knowable up front (negative counts) raise here;
    per-item errors surface as the offending item is consumed.
    """
    first_port = first_input_port(pe)
    if spec is None:
        return iter(({},))
    if isinstance(spec, int):
        if spec < 0:
            raise MappingError(f"iteration count must be >= 0, got {spec}")
        if first_port is None:
            return ({} for _ in range(spec))
        return ({first_port: i} for i in range(spec))

    return (expand_input_item(pe, item) for item in spec)


def iter_root_inputs(
    graph: WorkflowGraph, inputs: InputSpec
) -> Dict[str, Iterator[Dict[str, Any]]]:
    """Lazy counterpart of :func:`normalize_inputs`: per-root *iterators*.

    The streaming submission path consumes these while the workflow is
    already running, so a generator-backed source feeds the live graph
    item by item instead of being materialized up front.  Spec-shape
    errors (unknown or non-source PE names, negative counts) still raise
    eagerly; per-item expansion errors surface on consumption.
    """
    roots = graph.roots()
    if not roots:
        raise MappingError(f"workflow {graph.name!r} has no source PE")
    if isinstance(inputs, dict):
        provided: Dict[str, Iterator[Dict[str, Any]]] = {}
        root_names = {pe.name for pe in roots}
        for name, spec in inputs.items():
            if name not in graph.pes:
                raise MappingError(f"inputs reference unknown PE {name!r}")
            if name not in root_names:
                raise MappingError(f"inputs reference non-source PE {name!r}")
            provided[name] = _expand_stream(graph.pe(name), spec)
        for pe in roots:
            provided.setdefault(pe.name, iter(()))
        return provided
    return {pe.name: _expand_stream(pe, inputs) for pe in roots}


def normalize_inputs(
    graph: WorkflowGraph, inputs: InputSpec
) -> Dict[str, List[Dict[str, Any]]]:
    """Resolve the user's input spec into per-root lists of input mappings.

    Accepted forms (mirroring dispel4py's ``process(graph, inputs=...)``):

    - ``None`` -- each source PE is invoked once with empty inputs.
    - ``int n`` -- each source PE is invoked ``n`` times; if the PE declares
      an input port, iteration indices ``0..n-1`` are fed to its first
      input port (the common "read item i" source idiom).
    - ``list`` (or any iterable) -- one invocation per item for every
      source; dict items are taken as full input mappings, other values are
      fed to the source's first input port.
    - ``dict`` -- maps source PE name to any of the above.

    This is the eager form used by :meth:`Mapping.execute`; streaming
    submissions use :func:`iter_root_inputs` to consume iterables lazily.
    """
    return {
        name: list(items) for name, items in iter_root_inputs(graph, inputs).items()
    }


class ResultsCollector:
    """Thread-safe sink for emissions on unconnected output ports.

    ``tap``, when given, is invoked as ``tap(key, value)`` after each
    collected emission (outside the collector lock) -- the streaming
    results channel of :meth:`repro.jobs.Job.results`.
    """

    def __init__(self, tap: Optional[Callable[[str, Any], None]] = None) -> None:
        self._lock = threading.Lock()
        self._data: Dict[str, List[Any]] = {}
        self._tap = tap

    def add(self, pe_name: str, port: str, value: Any) -> None:
        key = f"{pe_name}.{port}"
        with self._lock:
            self._data.setdefault(key, []).append(value)
        if self._tap is not None:
            self._tap(key, value)

    def as_dict(self) -> Dict[str, List[Any]]:
        with self._lock:
            return {key: list(values) for key, values in self._data.items()}


class Counters:
    """Thread-safe named counters for engine instrumentation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: Dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._data[name] = self._data.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._data.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._data)


def instantiate(pe: GenericPE, index: int, num_instances: int, ctx: ExecutionContext) -> GenericPE:
    """Deep-copy a PE into one runnable instance bound to the run context."""
    clone = copy.deepcopy(pe)
    clone.instance_index = index
    clone.num_instances = num_instances
    clone.instance_id = instance_id(pe.name, index)
    clone.ctx = ctx
    clone.rng = ctx.rng_for(clone.instance_id)
    return clone


def dispatch_emissions(
    concrete: ConcreteWorkflow,
    collector: ResultsCollector,
    pe_name: str,
    index: int,
    emissions: List[Tuple[str, Any]],
) -> List[Delivery]:
    """Route one invocation's emissions; collect unconnected-port output.

    A PE may declare ``collector_aliases`` (fused port -> original
    ``(pe, port)`` pair, see :class:`repro.core.fusion.FusedPE`): emissions
    on an unconnected aliased port are credited to the original results
    key, so a fused run reports the same output keys as an unfused one.
    It may also declare ``collector_drops`` (a set of port names): the
    planner marks ports whose output nothing consumes -- dead-output
    elimination, fan-out replica ports serving other branches -- and
    emissions on them are discarded instead of collected.
    """
    deliveries: List[Delivery] = []
    pe = concrete.graph.pes.get(pe_name)
    aliases = getattr(pe, "collector_aliases", None)
    drops = getattr(pe, "collector_drops", None)
    for port, data in emissions:
        if concrete.graph.out_edges(pe_name, port):
            deliveries.extend(concrete.route_output(pe_name, index, port, data))
        elif aliases and port in aliases:
            original_pe, original_port = aliases[port]
            collector.add(original_pe, original_port, data)
        elif drops and port in drops:
            pass
        else:
            collector.add(pe_name, port, data)
    return deliveries


# ------------------------------------------------------------------- sessions

class Deployment:
    """Warm, reusable enactment resources of one mapping.

    The *deploy* stage of the session lifecycle: whatever survives between
    submissions lives here -- a pre-spawned :class:`WorkerPool` for the
    pool-driven mappings, a redisim :class:`RedisServer` for the Redis
    mappings.  A deployment starts *cold* (``warm=False``); the engine
    flips it warm when a later submission reuses it, so per-run counters
    (``deploy_cold`` / ``deploy_warm``) record whether the spin-up was
    skipped.
    """

    def __init__(
        self,
        mapping_name: str,
        processes: int,
        platform: PlatformProfile,
        pool: Optional[WorkerPool] = None,
        redis_server: Optional[RedisServer] = None,
        net_server: Optional[RespTCPServer] = None,
    ) -> None:
        self.mapping_name = mapping_name
        self.processes = processes
        self.platform = platform
        self.pool = pool
        self.redis_server = redis_server
        self.net_server = net_server
        #: True once a later submission reuses this deployment (the
        #: spin-up it represents was skipped).
        self.warm = False

    def compatible(
        self, mapping_name: str, processes: int, platform: PlatformProfile
    ) -> bool:
        """Whether a submission with these settings can reuse this deployment."""
        return (
            self.mapping_name == mapping_name
            and self.processes == processes
            and self.platform == platform
        )

    def teardown(self, timeout: float = 5.0) -> None:
        """Release the warm resources (idempotent)."""
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.close()
            pool.join(timeout=timeout)
        # The TCP front-end goes down before the keyspace it fronts, so
        # connection threads unwind against a still-open server.
        net_server, self.net_server = self.net_server, None
        if net_server is not None:
            net_server.close()
        server, self.redis_server = self.redis_server, None
        if server is not None:
            server.close()

    def __repr__(self) -> str:
        parts = [f"Deployment({self.mapping_name!r}, p={self.processes}"]
        if self.pool is not None:
            parts.append("pool")
        if self.redis_server is not None:
            parts.append("redis")
        if self.net_server is not None:
            parts.append(f"tcp@{self.net_server.address}")
        return ", ".join(parts) + (", warm)" if self.warm else ", cold)")


class DeploymentPool:
    """Up to ``size`` warm :class:`Deployment` slots of one mapping.

    Generalizes the engine's single warm session into *pooled leasing*:
    :meth:`try_acquire` hands out an idle deployment (deploying a fresh one
    while below capacity), :meth:`release` returns it for the next job.  The
    :class:`~repro.engine.Engine` keeps a size-1 pool per mapping (busy ->
    ephemeral cold fallback, the PR-5 contract); the
    :class:`~repro.scheduler.JobScheduler` keeps size-N pools and queues
    jobs instead of falling back.

    A leased deployment is exclusive to one job.  Idle deployments that no
    longer match the requested settings (processes / platform changed) are
    torn down and replaced cold.  Deploys happen outside the pool lock so a
    slow spin-up never blocks releases or unrelated acquires.
    """

    def __init__(
        self,
        mapping: "Mapping",
        size: int = 1,
        on_release: Optional[Callable[[], None]] = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self._mapping = mapping
        self._size = size
        self._on_release = on_release
        self._lock = threading.Lock()
        self._idle: List[Deployment] = []
        self._leased: List[Deployment] = []
        self._deploying = 0
        self._closed = False

    @property
    def size(self) -> int:
        """Maximum number of concurrently live deployments."""
        return self._size

    @property
    def deployment(self) -> Optional[Deployment]:
        """The pool's sole live deployment, or ``None`` when cold.

        Compatibility accessor for size-1 (engine session) pools; with a
        larger pool it returns an arbitrary live deployment.
        """
        with self._lock:
            live = self._idle + self._leased
            return live[0] if live else None

    def free_slots(self) -> int:
        """Slots a :meth:`try_acquire` could fill right now without waiting."""
        with self._lock:
            if self._closed:
                return 0
            busy = len(self._leased) + self._deploying
            return max(0, self._size - busy)

    def try_acquire(
        self, processes: int, platform: PlatformProfile
    ) -> Tuple[Optional[Deployment], bool]:
        """Lease a deployment, or report the pool busy.

        Returns ``(deployment, busy)``: a compatible idle deployment (now
        flagged ``warm``), a freshly deployed cold one while below capacity,
        or ``(None, True)`` when every slot is leased/deploying.  A closed
        pool returns ``(None, False)`` -- the caller runs ephemerally.
        Stale idle deployments (incompatible settings) are torn down and
        their slots reused.
        """
        stale: List[Deployment] = []
        with self._lock:
            if self._closed:
                return None, False
            keep: List[Deployment] = []
            for candidate in self._idle:
                if candidate.compatible(self._mapping.name, processes, platform):
                    keep.append(candidate)
                else:
                    stale.append(candidate)
            self._idle = keep
            if self._idle:
                deployment = self._idle.pop()
                # Reused, so the spin-up is already paid: this submission
                # (and any later one) counts as warm.
                deployment.warm = True
                self._leased.append(deployment)
                for doomed in stale:
                    doomed.teardown()
                return deployment, False
            if len(self._leased) + self._deploying >= self._size:
                busy = not stale  # a torn-down stale slot frees capacity
                if busy:
                    return None, True
            self._deploying += 1
        for doomed in stale:
            doomed.teardown()
        # Deploy outside the pool lock: spinning up a worker pool / redisim
        # server must not block releases (or close()) meanwhile.  The
        # ``_deploying`` count reserves our slot, so nobody races us.
        try:
            deployment = self._mapping.deploy(processes, platform)
        except BaseException:
            with self._lock:
                self._deploying -= 1
            raise
        with self._lock:
            self._deploying -= 1
            if not self._closed:
                self._leased.append(deployment)
                return deployment, False
        # The pool closed underneath us: run this one job ephemerally.
        deployment.teardown()
        return None, False

    def prewarm(
        self, processes: int, platform: PlatformProfile, count: Optional[int] = None
    ) -> int:
        """Deploy idle capacity ahead of demand; returns deployments added.

        Fills up to ``count`` free slots (default: all of them).  Prewarmed
        deployments count ``deploy_warm`` on their first lease -- the
        spin-up happened here, outside any job.
        """
        added = 0
        budget = self._size if count is None else count
        while added < budget:
            with self._lock:
                if self._closed:
                    break
                live = len(self._idle) + len(self._leased) + self._deploying
                if live >= self._size:
                    break
                self._deploying += 1
            try:
                deployment = self._mapping.deploy(processes, platform)
            except BaseException:
                with self._lock:
                    self._deploying -= 1
                raise
            deployment.warm = True
            with self._lock:
                self._deploying -= 1
                if self._closed:
                    break
                self._idle.append(deployment)
                added += 1
        else:
            return added
        deployment.teardown()  # closed mid-prewarm
        return added

    def release(self, deployment: Deployment, reusable: bool = True) -> None:
        """Return a leased deployment; non-reusable ones are torn down.

        Failed jobs forfeit their deployment's warmth (``reusable=False``)
        so a poisoned worker pool never serves the next job.  Releasing a
        deployment the pool no longer tracks (closed meanwhile) tears it
        down regardless.  Fires the pool's ``on_release`` callback last, so
        schedulers can re-run admission.
        """
        teardown = None
        with self._lock:
            if deployment in self._leased:
                self._leased.remove(deployment)
                if reusable and not self._closed:
                    self._idle.append(deployment)
                else:
                    teardown = deployment
            else:
                teardown = deployment
            callback = self._on_release
        if teardown is not None:
            teardown.teardown()
        if callback is not None:
            callback()

    def close(self) -> None:
        """Tear down every tracked deployment; the pool refuses further leases.

        Deployments still leased to straggler jobs are torn down too (the
        owner gives jobs a grace period first); their eventual
        :meth:`release` is a no-op teardown.  Idempotent.
        """
        with self._lock:
            self._closed = True
            doomed = self._idle + self._leased
            self._idle, self._leased = [], []
        for deployment in doomed:
            deployment.teardown()

    def __repr__(self) -> str:
        with self._lock:
            state = "closed" if self._closed else "open"
            return (
                f"DeploymentPool({self._mapping.name!r}, size={self._size}, "
                f"idle={len(self._idle)}, leased={len(self._leased)}, {state})"
            )


class LiveFeed:
    """Live input bridge between a :class:`~repro.jobs.Job` and its enactment.

    The *feed* stage of the session lifecycle.  Construction carries the
    lazy initial inputs (:func:`iter_root_inputs`); the enacting mapping
    calls :meth:`attach` once its input channels exist, which drains the
    initial iterators through the sink *while the workflow is already
    running* and then forwards live :meth:`push` calls (from
    ``Job.send``) directly.  :meth:`close` marks end-of-stream; unbound
    sources stay live until then.
    """

    def __init__(
        self,
        initial: Dict[str, Iterator[Dict[str, Any]]],
        cancelled: threading.Event,
    ) -> None:
        self._initial = initial
        self._cancelled = cancelled
        self._lock = threading.Lock()
        self._pending: List[Tuple[str, Dict[str, Any]]] = []
        self._sink: Optional[Callable[[str, Dict[str, Any]], None]] = None
        self._on_close: Optional[Callable[[], None]] = None
        self._closed = False

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def attach(
        self,
        sink: Callable[[str, Dict[str, Any]], None],
        on_close: Callable[[], None],
    ) -> None:
        """Mapping side: start delivery into the running enactment.

        Drains the lazy initial inputs through ``sink`` first (stopping
        early on cancellation), then atomically flushes anything buffered
        by concurrent ``push`` calls and switches to direct delivery.
        ``on_close`` fires exactly once when the input closes -- possibly
        immediately, if it already did.
        """
        for root, items in self._initial.items():
            for item in items:
                if self._cancelled.is_set():
                    break
                sink(root, item)
            if self._cancelled.is_set():
                break
        with self._lock:
            self._sink = sink
            self._on_close = on_close
            pending, self._pending = self._pending, []
            for root, item in pending:
                sink(root, item)
            closed = self._closed
        if closed:
            on_close()

    def push(self, root: str, item: Dict[str, Any]) -> None:
        """Job side: deliver one live input mapping to ``root``."""
        with self._lock:
            if self._closed:
                raise RuntimeError("input is closed")
            if self._sink is None:
                self._pending.append((root, item))
                return
            self._sink(root, item)

    def close(self) -> None:
        """Signal end-of-stream (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            on_close = self._on_close
        if on_close is not None:
            on_close()


class StreamControl:
    """Cancellation plumbing shared by a job handle and its enactment.

    Mappings register :meth:`on_cancel` hooks (close channels, broadcast
    pills) that fire exactly once when :meth:`cancel` is called -- or
    immediately, if it already was.  Worker loops poll :attr:`cancelled`.
    """

    def __init__(self) -> None:
        self.cancelled = threading.Event()
        self._lock = threading.Lock()
        self._hooks: List[Callable[[], None]] = []

    def on_cancel(self, hook: Callable[[], None]) -> None:
        with self._lock:
            if not self.cancelled.is_set():
                self._hooks.append(hook)
                return
        hook()

    def cancel(self) -> None:
        with self._lock:
            if self.cancelled.is_set():
                return
            self.cancelled.set()
            hooks, self._hooks = self._hooks, []
        for hook in hooks:
            hook()


class EnactmentState:
    """Everything :meth:`Mapping._enact` needs, bundled.

    ``feed`` / ``control`` / ``pool`` are only set on streaming
    submissions: the live input bridge, the cancellation plumbing, and the
    warm worker pool to run on (``None`` means spin up an ephemeral one).
    """

    def __init__(
        self,
        graph: WorkflowGraph,
        provided: Dict[str, Any],
        processes: int,
        ctx: ExecutionContext,
        platform: PlatformProfile,
        meter: ActivityMeter,
        collector: ResultsCollector,
        counters: Counters,
        options: Dict[str, Any],
        feed: Optional[LiveFeed] = None,
        control: Optional[StreamControl] = None,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        self.graph = graph
        self.provided = provided
        self.processes = processes
        self.ctx = ctx
        self.platform = platform
        self.meter = meter
        self.collector = collector
        self.counters = counters
        self.options = options
        self.feed = feed
        self.control = control
        self.pool = pool
        #: Member-level meter when the fusion rewrite ran (else None).
        self.member_meter: Optional[MemberMeter] = None
        #: Original root name -> fused root name (identity when unfused).
        self.root_rename: Dict[str, str] = {}
        self.errors: List[BaseException] = []
        self._errors_lock = threading.Lock()

    @property
    def clock(self) -> Clock:
        return self.ctx.clock

    @property
    def streaming(self) -> bool:
        """True when this enactment runs the live streaming path."""
        return self.feed is not None

    def cancelled(self) -> bool:
        """True once the owning job was cancelled (never for execute())."""
        return self.control is not None and self.control.cancelled.is_set()

    def record_error(self, exc: BaseException) -> None:
        with self._errors_lock:
            self.errors.append(exc)

    def raise_errors(self) -> None:
        with self._errors_lock:
            if self.errors:
                first = self.errors[0]
                raise MappingError(
                    f"{len(self.errors)} worker error(s); first: {first!r}"
                ) from first


class Mapping:
    """Base class of all enactment engines."""

    #: Registry name (``multi``, ``dyn_multi``, ...).
    name = "abstract"
    #: Whether the mapping can honour stateful PEs / groupings.
    supports_stateful = True
    #: Whether the mapping needs a Redis deployment on the platform.
    requires_redis = False
    #: Whether :meth:`submit` runs the live streaming path (incremental
    #: ingestion into a running workflow).  Mappings without it fall back
    #: to buffered submission -- still job-handled, results still stream.
    supports_streaming = False
    #: Whether :meth:`deploy` pre-spawns a warm :class:`WorkerPool` for
    #: streaming submissions to run on.
    wants_pool = False
    #: Whether :meth:`deploy` fronts the redisim server with a RESP TCP
    #: listener so worker OS processes can join over the network.
    wants_net = False

    # ------------------------------------------------------------- lifecycle
    def deploy(
        self, processes: int, platform: PlatformProfile = LAPTOP, **options: Any
    ) -> Deployment:
        """Spin up this mapping's reusable resources (the *deploy* stage).

        The returned :class:`Deployment` is what a session keeps warm
        across consecutive submissions: a pre-spawned worker pool for the
        pool-driven mappings (``wants_pool``), a redisim server for the
        Redis-backed ones, nothing for mappings with no spin-up cost.
        Callers own the deployment and must :meth:`Deployment.teardown`
        it; :meth:`repro.engine.Engine` does this for its sessions.
        """
        if processes < 1:
            raise MappingError(f"processes must be >= 1, got {processes}")
        pool = None
        if self.wants_pool:
            pool = WorkerPool(processes, name=f"{self.name}-warm")
        server = RedisServer() if self.requires_redis else None
        net_server = None
        if self.wants_net:
            # Front the deployment's keyspace with a TCP listener on an
            # ephemeral loopback port; worker processes join by address.
            net_server = RespTCPServer(server).start()
        return Deployment(
            self.name, processes, platform,
            pool=pool, redis_server=server, net_server=net_server,
        )

    def execute(
        self,
        graph: WorkflowGraph,
        inputs: InputSpec = None,
        processes: int = 1,
        platform: PlatformProfile = LAPTOP,
        time_scale: float = 1.0,
        seed: int = 0,
        **options: Any,
    ) -> RunResult:
        """Enact ``graph`` and return the measured :class:`RunResult`.

        The one-shot path: inputs are taken in full up front, enactment
        runs on the calling thread with an ephemeral (cold) deployment,
        and results surface only in the returned record -- exactly the
        pre-session contract.  Long-lived callers use :meth:`submit`.

        Parameters
        ----------
        graph:
            The abstract workflow.
        inputs:
            How source PEs are driven; see :func:`normalize_inputs`.
        processes:
            Total worker processes (the paper's x-axis).
        platform:
            Emulated platform profile (cores, speeds, latencies).
        time_scale:
            Nominal-to-real time multiplier for all synthetic durations.
        seed:
            Run-level random seed (per-instance RNGs derive from it).
        options:
            Mapping-specific tuning; unknown keys raise.
        """
        options = dict(options)
        plan_spec = pop_plan_options(options)
        self._check_enactable(graph, processes, platform)
        provided = normalize_inputs(graph, inputs)
        plan = self._resolve_plan(graph, plan_spec, platform, provided=provided)
        state = self._build_state(
            graph, provided, processes, platform, time_scale, seed, options,
            plan,
        )
        return self._run_measured(state)

    def submit(
        self,
        graph: WorkflowGraph,
        inputs: InputSpec = None,
        processes: int = 1,
        platform: PlatformProfile = LAPTOP,
        time_scale: float = 1.0,
        seed: int = 0,
        deployment: Optional[Deployment] = None,
        deadline: Optional[float] = None,
        stream: Optional[bool] = None,
        results_channel: bool = True,
        busy_fallback: bool = False,
        **options: Any,
    ) -> Job:
        """Start enacting ``graph`` and return a live :class:`Job` handle.

        On streaming mappings (``supports_streaming``) the workflow starts
        immediately on a background driver thread: initial ``inputs`` are
        consumed *lazily* into the running graph, ``job.send`` feeds more,
        ``job.close_input`` ends the stream, and ``job.results()`` yields
        outputs as the collector receives them.  Other mappings buffer
        ingestion and enact once the input closes (results still stream).
        ``stream=False`` forces the buffered wiring even on a streaming
        mapping -- the classic enactment path, byte-identical counters --
        which is what the ``Engine.run()`` shim uses.  ``results_channel=
        False`` skips the collector tap for wait-only callers (the shim
        again): ``job.results()`` then ends without yielding, instead of
        buffering every output a second time for a consumer that never
        comes.

        ``deployment`` is a warm :class:`Deployment` from :meth:`deploy`;
        ``None`` runs cold with ephemeral resources, exactly like
        :meth:`execute`.  ``busy_fallback=True`` marks a cold ephemeral run
        taken only because the caller's warm slot was occupied (the
        ``deploy_busy_fallback`` counter), distinguishing it from a plain
        first-use cold deploy.  ``deadline`` (real seconds) cancels the job
        when exceeded.  Validation errors raise here, synchronously;
        enactment errors surface from ``job.wait()`` / ``job.results()``.
        """
        options = dict(options)
        plan_spec = pop_plan_options(options)
        if deadline is not None and deadline <= 0:
            # Validated before any wiring: a bad deadline must not leave an
            # orphaned driver thread running on a torn-down deployment.
            raise ValueError(f"deadline must be > 0 seconds, got {deadline}")
        self._check_enactable(graph, processes, platform)
        if stream is None:
            stream = self.supports_streaming
        elif stream and not self.supports_streaming:
            raise MappingError(
                f"mapping {self.name!r} does not support live streaming "
                f"submissions; drop stream=True for buffered ingestion"
            )
        if deployment is not None and not deployment.compatible(
            self.name, processes, platform
        ):
            raise MappingError(
                f"deployment {deployment!r} is not compatible with a "
                f"{self.name!r} submission at {processes} processes"
            )
        if (
            deployment is not None
            and deployment.redis_server is not None
            and self.requires_redis
        ):
            options.setdefault("redis_server", deployment.redis_server)
        if (
            deployment is not None
            and deployment.net_server is not None
            and self.wants_net
        ):
            options.setdefault("net_server", deployment.net_server)
        # Streaming submissions must not consume the (possibly lazy) input
        # iterators, so the planner profiles without an input sample there.
        plan = self._resolve_plan(graph, plan_spec, platform)
        job = Job(mapping=self.name, workflow=graph.name, streaming=stream)
        tap = job._emit if results_channel else None
        if stream:
            self._wire_streaming(
                job, graph, inputs, processes, platform, time_scale, seed,
                options, plan, deployment, tap, busy_fallback,
            )
        else:
            self._wire_buffered(
                job, graph, inputs, processes, platform, time_scale, seed,
                options, plan, deployment, tap, busy_fallback,
            )
        job._arm_deadline(deadline)
        return job

    # -------------------------------------------------- submission internals
    def _wire_streaming(
        self,
        job: Job,
        graph: WorkflowGraph,
        inputs: InputSpec,
        processes: int,
        platform: PlatformProfile,
        time_scale: float,
        seed: int,
        options: Dict[str, Any],
        plan: Optional[Plan],
        deployment: Optional[Deployment],
        tap: Optional[Callable[[str, Any], None]],
        busy_fallback: bool = False,
    ) -> None:
        control = StreamControl()
        # For a *live* submission ``inputs=None`` means "no initial inputs,
        # the sources are driven by send()" -- not the one-shot convention
        # of a single empty invocation per source (drive a producer-style
        # source explicitly with ``inputs=[{}]`` or ``job.send(pe, [{}])``).
        provided = iter_root_inputs(graph, inputs if inputs is not None else [])
        state = self._build_state(
            graph, provided, processes, platform, time_scale, seed, options,
            plan, tap=tap, control=control,
            pool=deployment.pool if deployment is not None else None,
        )
        feed = LiveFeed(state.provided, cancelled=control.cancelled)
        state.feed = feed
        self._note_deployment(state, deployment, busy_fallback)
        roots = {pe.name for pe in graph.roots()}

        def send(target: Any, tuples: Any) -> None:
            root, items = expand_send(graph, target, tuples, roots)
            root = state.root_rename.get(root, root)
            for item in items:
                feed.push(root, item)

        job._wire(send, feed.close, control.cancel)

        def drive() -> None:
            job._mark_running()
            try:
                result = self._run_measured(state)
            except JobCancelledError:
                job._finish_cancelled()
            except BaseException as exc:  # noqa: BLE001 - driver boundary
                if control.cancelled.is_set():
                    # Cancellation unwinds workers mid-flight; whatever
                    # error that produced is the cancel, not a failure.
                    job._finish_cancelled()
                else:
                    job._fail(exc)
            else:
                job._finish(result)

        threading.Thread(
            target=drive, name=f"job-{self.name}-{graph.name}", daemon=True
        ).start()

    def _wire_buffered(
        self,
        job: Job,
        graph: WorkflowGraph,
        inputs: InputSpec,
        processes: int,
        platform: PlatformProfile,
        time_scale: float,
        seed: int,
        options: Dict[str, Any],
        plan: Optional[Plan],
        deployment: Optional[Deployment],
        tap: Optional[Callable[[str, Any], None]],
        busy_fallback: bool = False,
    ) -> None:
        # Initial inputs are materialized now (surfacing spec errors at
        # submit time); sends append under the lock until the input closes.
        buffer = normalize_inputs(graph, inputs)
        buffer_lock = threading.Lock()
        closed = threading.Event()
        cancelled = threading.Event()
        roots = {pe.name for pe in graph.roots()}

        def send(target: Any, tuples: Any) -> None:
            root, items = expand_send(graph, target, tuples, roots)
            with buffer_lock:
                buffer.setdefault(root, []).extend(items)

        def cancel() -> None:
            cancelled.set()
            closed.set()

        job._wire(send, closed.set, cancel)

        def drive() -> None:
            closed.wait()
            if cancelled.is_set():
                job._finish_cancelled()
                return
            job._mark_running()
            try:
                with buffer_lock:
                    provided = {root: list(items) for root, items in buffer.items()}
                state = self._build_state(
                    graph, provided, processes, platform, time_scale, seed,
                    options, plan, tap=tap,
                )
                self._note_deployment(state, deployment, busy_fallback)
                result = self._run_measured(state)
            except BaseException as exc:  # noqa: BLE001 - driver boundary
                job._fail(exc)
            else:
                # A cancel that landed mid-run cannot interrupt a buffered
                # enactment; it wins anyway -- the result is discarded by
                # the CANCELLED-state guard in Job._resolve.
                job._finish(result)

        threading.Thread(
            target=drive, name=f"job-{self.name}-{graph.name}", daemon=True
        ).start()

    @staticmethod
    def _note_deployment(
        state: EnactmentState,
        deployment: Optional[Deployment],
        busy_fallback: bool = False,
    ) -> None:
        """Counter-stamp how this submission got its enactment resources.

        A provided deployment counts ``deploy_warm`` (reused) or
        ``deploy_cold`` (first use); an ephemeral run taken only because the
        caller's warm slot was busy counts ``deploy_busy_fallback``.
        """
        if deployment is not None:
            state.counters.inc("deploy_warm" if deployment.warm else "deploy_cold")
        elif busy_fallback:
            state.counters.inc("deploy_busy_fallback")

    # ------------------------------------------------------ enactment stages
    def _check_enactable(
        self, graph: WorkflowGraph, processes: int, platform: PlatformProfile
    ) -> None:
        """Validation and feature gating shared by execute() and submit()."""
        if processes < 1:
            raise MappingError(f"processes must be >= 1, got {processes}")
        graph.validate()
        if graph.is_stateful() and not self.supports_stateful:
            raise UnsupportedFeatureError(
                f"mapping {self.name!r} supports only stateless workflows; "
                f"{graph.name!r} contains stateful PEs or state-pinning "
                f"groupings (use hybrid_redis or multi)"
            )
        if self.requires_redis and not platform.redis_available:
            raise MappingError(
                f"platform {platform.name!r} has no Redis deployment; "
                f"mapping {self.name!r} cannot run there"
            )

    def _resolve_plan(
        self,
        graph: WorkflowGraph,
        spec: Dict[str, Any],
        platform: PlatformProfile,
        provided: Optional[Dict[str, List[Dict[str, Any]]]] = None,
    ) -> Optional[Plan]:
        """Resolve the popped plan options into a :class:`Plan` (or None).

        A prebuilt ``plan=`` wins; ``optimize`` truthy runs the full
        planner (profiling against ``provided`` when the eager path has
        it); ``fuse`` truthy runs the fusion-only shim -- no profiling, no
        planner counters, byte-identical to the classic fusion rewrite.
        """
        if spec["plan"] is not None:
            plan = spec["plan"]
            if not isinstance(plan, Plan):
                raise MappingError(
                    f"plan= expects a repro.planner.Plan, got {plan!r}"
                )
            return plan
        if spec["optimize"]:
            return Planner.default().plan(
                graph,
                provided=provided,
                platform=platform,
                wanted_outputs=spec["wanted_outputs"],
            )
        if spec["fuse"]:
            return Planner.fusion_only().plan(graph, profile=False)
        return None

    def _build_state(
        self,
        graph: WorkflowGraph,
        provided: Dict[str, Any],
        processes: int,
        platform: PlatformProfile,
        time_scale: float,
        seed: int,
        options: Dict[str, Any],
        plan: Optional[Plan],
        tap: Optional[Callable[[str, Any], None]] = None,
        control: Optional[StreamControl] = None,
        pool: Optional[WorkerPool] = None,
    ) -> EnactmentState:
        """Assemble the run context (clock, collector, planned rewrite)."""
        clock = Clock(time_scale)
        ctx = ExecutionContext(
            clock=clock,
            cores=platform.make_core_limiter(),
            seed=seed,
            cpu_speed=platform.cpu_speed,
        )
        meter = ActivityMeter(clock)
        collector = ResultsCollector(tap=tap)
        counters = Counters()
        member_meter: Optional[MemberMeter] = None
        root_rename: Dict[str, str] = {}
        if plan is not None and plan.transformed:
            # Enact the plan's rewritten graph: an ordinary WorkflowGraph,
            # so every mapping executes it transparently.  Inputs were
            # normalized against the user's graph, then re-keyed onto the
            # rewritten sources (and pruned roots dropped).
            graph = plan.graph
            provided = plan.rename_inputs(provided)
            root_rename = dict(plan.member_to_fused)
            if plan.fused:
                member_meter = MemberMeter()
                ctx.pe_meter = member_meter
            for name, amount in plan.counters.items():
                counters.inc(name, amount)
        state = EnactmentState(
            graph=graph,
            provided=provided,
            processes=processes,
            ctx=ctx,
            platform=platform,
            meter=meter,
            collector=collector,
            counters=counters,
            options=options,
            control=control,
            pool=pool,
        )
        state.member_meter = member_meter
        state.root_rename = root_rename
        return state

    def _run_measured(self, state: EnactmentState) -> RunResult:
        """The *drain* stage: enact to completion and assemble the result."""
        clock = state.clock
        started = clock.now()
        trace = self._enact(state)
        runtime = clock.now() - started
        state.meter.close()
        if state.cancelled():
            raise JobCancelledError(f"job {state.graph.name!r} was cancelled")
        state.raise_errors()
        pe_times: Dict[str, float] = {}
        if state.member_meter is not None:
            pe_times = state.member_meter.times()
            for member, count in state.member_meter.tasks().items():
                state.counters.inc(f"member_tasks.{member}", count)
        return RunResult(
            mapping=self.name,
            workflow=state.graph.name,
            processes=state.processes,
            runtime=runtime,
            process_time=state.meter.total(),
            outputs=state.collector.as_dict(),
            counters=state.counters.as_dict(),
            trace=trace,
            per_worker_time=state.meter.per_worker(),
            pe_times=pe_times,
        )

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        """Run the workflow; return a scaling trace if the mapping has one."""
        raise NotImplementedError


def resolve_send_target(
    graph: WorkflowGraph, target: Any, roots: Optional[set] = None
) -> Tuple[str, Optional[str]]:
    """Resolve a ``Job.send`` target to ``(source PE name, port or None)``.

    Accepts a source PE object, its name, or ``"<pe>.<port>"`` addressing
    a specific input port.  Non-source PEs are rejected: mid-graph
    injection would bypass the groupings of the in-edges.  ``roots`` is
    the pre-computed source-name set -- the graph is immutable once
    submitted, so hot send paths pass it instead of re-deriving it per
    call.
    """
    port: Optional[str] = None
    if isinstance(target, GenericPE):
        name = target.name
    elif isinstance(target, str):
        name = target
        if name not in graph.pes and "." in name:
            name, port = name.rsplit(".", 1)
    else:
        raise MappingError(
            f"cannot send to {target!r}: pass a source PE, its name, "
            f"or '<pe>.<port>'"
        )
    if name not in graph.pes:
        raise MappingError(f"send target references unknown PE {name!r}")
    if roots is None:
        roots = {pe.name for pe in graph.roots()}
    if name not in roots:
        raise MappingError(
            f"send target {name!r} is not a source PE of {graph.name!r}"
        )
    if port is not None and port not in graph.pe(name).inputconnections:
        raise MappingError(
            f"source PE {name!r} has no input port {port!r}"
        )
    return name, port


def expand_send(
    graph: WorkflowGraph, target: Any, tuples: Any, roots: Optional[set] = None
) -> Tuple[str, List[Dict[str, Any]]]:
    """Expand one ``Job.send`` call into (root name, input mappings)."""
    name, port = resolve_send_target(graph, target, roots)
    pe = graph.pe(name)
    if port is not None:
        return name, [{port: item} for item in tuples]
    return name, [expand_input_item(pe, item) for item in tuples]
