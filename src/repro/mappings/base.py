"""Shared machinery for all enactment mappings.

A :class:`Mapping` translates an abstract workflow into a concrete one and
enacts it (Figure 1).  Subclasses implement :meth:`Mapping._enact`; this
base class owns everything common to all six mappings:

- validation and feature gating (stateless-only mappings reject stateful
  graphs with :class:`~repro.core.exceptions.UnsupportedFeatureError`; Redis
  mappings reject platforms without Redis),
- construction of the run-wide :class:`~repro.core.context.ExecutionContext`
  (clock, emulated cores, seeds),
- input normalization (how source PEs are driven),
- the operator-fusion rewrite (``fuse`` option): fusable 1:1 chains are
  collapsed into :class:`~repro.core.fusion.FusedPE` operators before
  enactment, so every mapping executes fused graphs transparently,
- output collection (emissions on unconnected ports become results),
- metric capture (runtime + total process time via the activity meter).
"""

from __future__ import annotations

import copy
import pickle
import threading
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.autoscale.trace import ScalingTrace
from repro.core.concrete import ConcreteWorkflow, Delivery, instance_id
from repro.core.context import ExecutionContext
from repro.core.exceptions import MappingError, UnsupportedFeatureError
from repro.core.fusion import MemberMeter, fuse_graph
from repro.core.graph import WorkflowGraph
from repro.core.pe import GenericPE
from repro.metrics.result import RunResult
from repro.platforms.profiles import LAPTOP, PlatformProfile
from repro.runtime.accounting import ActivityMeter
from repro.runtime.clock import Clock

InputSpec = Union[None, int, List[Any], Dict[str, Union[int, List[Any]]]]


def marshal(data: Any, copy_payloads: bool = False) -> Any:
    """Hand a payload across a queue boundary.

    With ``copy_payloads`` the payload is pickle round-tripped, as crossing
    a real process boundary would.  The default is pass-through: payload
    *ownership transfers* at emission (a producer never touches an emitted
    object again, matching dispel4py semantics), so the copy is not needed
    for correctness -- and under threads the pickle work would serialize on
    the GIL, distorting exactly the scaling behaviour being measured (real
    processes pay serialization cost in parallel).  The Redis mappings keep
    full client-side serialization, where it models a real client encoding
    its output buffer.
    """
    if copy_payloads:
        return pickle.loads(pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL))
    return data


def resolve_batch_size(options: Dict[str, Any]) -> int:
    """Validate and resolve the ``batch_size`` transport option.

    ``1`` (the default) means unbatched transport, byte-identical to the
    pre-batching engine; larger values let mappings ship up to that many
    tuples per queue/stream operation.
    """
    size = options.get("batch_size", 1)
    try:
        coerced = int(size)
    except (TypeError, ValueError):
        raise MappingError(f"batch_size must be an integer, got {size!r}") from None
    if coerced != size:
        raise MappingError(f"batch_size must be an integer, got {size!r}")
    if coerced < 1:
        raise MappingError(f"batch_size must be >= 1, got {coerced}")
    return coerced


def resolve_batch_linger(options: Dict[str, Any]) -> float:
    """Resolve ``batch_linger_ms`` (real milliseconds) to real seconds.

    The linger bound is a *real-time* knob, like ``reclaim_idle_ms``: it
    caps how long a buffered tuple may wait for companions, which only
    matters on the wall clock.
    """
    linger_ms = options.get("batch_linger_ms", 0.0)
    try:
        linger_ms = float(linger_ms)
    except (TypeError, ValueError):
        raise MappingError(
            f"batch_linger_ms must be a number, got {linger_ms!r}"
        ) from None
    if linger_ms < 0:
        raise MappingError(f"batch_linger_ms must be >= 0, got {linger_ms}")
    return linger_ms / 1000.0


def normalize_inputs(
    graph: WorkflowGraph, inputs: InputSpec
) -> Dict[str, List[Dict[str, Any]]]:
    """Resolve the user's input spec into per-root lists of input mappings.

    Accepted forms (mirroring dispel4py's ``process(graph, inputs=...)``):

    - ``None`` -- each source PE is invoked once with empty inputs.
    - ``int n`` -- each source PE is invoked ``n`` times; if the PE declares
      an input port, iteration indices ``0..n-1`` are fed to its first
      input port (the common "read item i" source idiom).
    - ``list`` -- one invocation per item for every source; dict items are
      taken as full input mappings, other values are fed to the source's
      first input port.
    - ``dict`` -- maps source PE name to any of the above.
    """
    roots = graph.roots()
    if not roots:
        raise MappingError(f"workflow {graph.name!r} has no source PE")

    def expand(pe: GenericPE, spec: Union[int, List[Any], None]) -> List[Dict[str, Any]]:
        first_port = next(iter(pe.inputconnections), None)
        if spec is None:
            return [{}]
        if isinstance(spec, int):
            if spec < 0:
                raise MappingError(f"iteration count must be >= 0, got {spec}")
            if first_port is None:
                return [{} for _ in range(spec)]
            return [{first_port: i} for i in range(spec)]
        items: List[Dict[str, Any]] = []
        for item in spec:
            if isinstance(item, dict):
                items.append(item)
            elif first_port is not None:
                items.append({first_port: item})
            else:
                raise MappingError(
                    f"source PE {pe.name!r} has no input port to feed {item!r} to"
                )
        return items

    if isinstance(inputs, dict):
        provided = {}
        root_names = {pe.name for pe in roots}
        for name, spec in inputs.items():
            if name not in graph.pes:
                raise MappingError(f"inputs reference unknown PE {name!r}")
            if name not in root_names:
                raise MappingError(f"inputs reference non-source PE {name!r}")
            provided[name] = expand(graph.pe(name), spec)
        for pe in roots:
            provided.setdefault(pe.name, [])
        return provided
    return {pe.name: expand(pe, inputs) for pe in roots}


class ResultsCollector:
    """Thread-safe sink for emissions on unconnected output ports."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: Dict[str, List[Any]] = {}

    def add(self, pe_name: str, port: str, value: Any) -> None:
        key = f"{pe_name}.{port}"
        with self._lock:
            self._data.setdefault(key, []).append(value)

    def as_dict(self) -> Dict[str, List[Any]]:
        with self._lock:
            return {key: list(values) for key, values in self._data.items()}


class Counters:
    """Thread-safe named counters for engine instrumentation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: Dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._data[name] = self._data.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._data.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._data)


def instantiate(pe: GenericPE, index: int, num_instances: int, ctx: ExecutionContext) -> GenericPE:
    """Deep-copy a PE into one runnable instance bound to the run context."""
    clone = copy.deepcopy(pe)
    clone.instance_index = index
    clone.num_instances = num_instances
    clone.instance_id = instance_id(pe.name, index)
    clone.ctx = ctx
    clone.rng = ctx.rng_for(clone.instance_id)
    return clone


def dispatch_emissions(
    concrete: ConcreteWorkflow,
    collector: ResultsCollector,
    pe_name: str,
    index: int,
    emissions: List[Tuple[str, Any]],
) -> List[Delivery]:
    """Route one invocation's emissions; collect unconnected-port output.

    A PE may declare ``collector_aliases`` (fused port -> original
    ``(pe, port)`` pair, see :class:`repro.core.fusion.FusedPE`): emissions
    on an unconnected aliased port are credited to the original results
    key, so a fused run reports the same output keys as an unfused one.
    """
    deliveries: List[Delivery] = []
    aliases = getattr(concrete.graph.pes.get(pe_name), "collector_aliases", None)
    for port, data in emissions:
        if concrete.graph.out_edges(pe_name, port):
            deliveries.extend(concrete.route_output(pe_name, index, port, data))
        elif aliases and port in aliases:
            original_pe, original_port = aliases[port]
            collector.add(original_pe, original_port, data)
        else:
            collector.add(pe_name, port, data)
    return deliveries


class EnactmentState:
    """Everything :meth:`Mapping._enact` needs, bundled."""

    def __init__(
        self,
        graph: WorkflowGraph,
        provided: Dict[str, List[Dict[str, Any]]],
        processes: int,
        ctx: ExecutionContext,
        platform: PlatformProfile,
        meter: ActivityMeter,
        collector: ResultsCollector,
        counters: Counters,
        options: Dict[str, Any],
    ) -> None:
        self.graph = graph
        self.provided = provided
        self.processes = processes
        self.ctx = ctx
        self.platform = platform
        self.meter = meter
        self.collector = collector
        self.counters = counters
        self.options = options
        self.errors: List[BaseException] = []
        self._errors_lock = threading.Lock()

    @property
    def clock(self) -> Clock:
        return self.ctx.clock

    def record_error(self, exc: BaseException) -> None:
        with self._errors_lock:
            self.errors.append(exc)

    def raise_errors(self) -> None:
        with self._errors_lock:
            if self.errors:
                first = self.errors[0]
                raise MappingError(
                    f"{len(self.errors)} worker error(s); first: {first!r}"
                ) from first


class Mapping:
    """Base class of all enactment engines."""

    #: Registry name (``multi``, ``dyn_multi``, ...).
    name = "abstract"
    #: Whether the mapping can honour stateful PEs / groupings.
    supports_stateful = True
    #: Whether the mapping needs a Redis deployment on the platform.
    requires_redis = False

    def execute(
        self,
        graph: WorkflowGraph,
        inputs: InputSpec = None,
        processes: int = 1,
        platform: PlatformProfile = LAPTOP,
        time_scale: float = 1.0,
        seed: int = 0,
        **options: Any,
    ) -> RunResult:
        """Enact ``graph`` and return the measured :class:`RunResult`.

        Parameters
        ----------
        graph:
            The abstract workflow.
        inputs:
            How source PEs are driven; see :func:`normalize_inputs`.
        processes:
            Total worker processes (the paper's x-axis).
        platform:
            Emulated platform profile (cores, speeds, latencies).
        time_scale:
            Nominal-to-real time multiplier for all synthetic durations.
        seed:
            Run-level random seed (per-instance RNGs derive from it).
        options:
            Mapping-specific tuning; unknown keys raise.
        """
        if processes < 1:
            raise MappingError(f"processes must be >= 1, got {processes}")
        options = dict(options)
        fuse_option = options.pop("fuse", False)
        graph.validate()
        if graph.is_stateful() and not self.supports_stateful:
            raise UnsupportedFeatureError(
                f"mapping {self.name!r} supports only stateless workflows; "
                f"{graph.name!r} contains stateful PEs or state-pinning "
                f"groupings (use hybrid_redis or multi)"
            )
        if self.requires_redis and not platform.redis_available:
            raise MappingError(
                f"platform {platform.name!r} has no Redis deployment; "
                f"mapping {self.name!r} cannot run there"
            )
        clock = Clock(time_scale)
        ctx = ExecutionContext(
            clock=clock,
            cores=platform.make_core_limiter(),
            seed=seed,
            cpu_speed=platform.cpu_speed,
        )
        provided = normalize_inputs(graph, inputs)
        meter = ActivityMeter(clock)
        collector = ResultsCollector()
        counters = Counters()
        member_meter: Optional[MemberMeter] = None
        if fuse_option:
            # Collapse fusable 1:1 chains before enactment: the rewritten
            # graph is an ordinary WorkflowGraph, so every mapping executes
            # FusedPEs transparently.  Inputs were normalized against the
            # user's graph above, then re-keyed onto fused source PEs.
            plan = fuse_graph(graph)
            if plan.fused:
                graph = plan.graph
                provided = plan.rename_inputs(provided)
                member_meter = MemberMeter()
                ctx.pe_meter = member_meter
                counters.inc("fused_chains", len(plan.chains))
                counters.inc("fused_members", sum(len(c) for c in plan.chains))
        state = EnactmentState(
            graph=graph,
            provided=provided,
            processes=processes,
            ctx=ctx,
            platform=platform,
            meter=meter,
            collector=collector,
            counters=counters,
            options=options,
        )
        started = clock.now()
        trace = self._enact(state)
        runtime = clock.now() - started
        meter.close()
        state.raise_errors()
        pe_times: Dict[str, float] = {}
        if member_meter is not None:
            pe_times = member_meter.times()
            for member, count in member_meter.tasks().items():
                counters.inc(f"member_tasks.{member}", count)
        return RunResult(
            mapping=self.name,
            workflow=graph.name,
            processes=processes,
            runtime=runtime,
            process_time=meter.total(),
            outputs=collector.as_dict(),
            counters=counters.as_dict(),
            trace=trace,
            per_worker_time=meter.per_worker(),
            pe_times=pe_times,
        )

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        """Run the workflow; return a scaling trace if the mapping has one."""
        raise NotImplementedError
