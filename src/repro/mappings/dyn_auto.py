"""Auto-scaling dynamic Multiprocessing mapping (``dyn_auto_multi``).

Extends :class:`~repro.mappings.dynamic.DynMultiMapping` with the paper's
Algorithm 1: a pool of ``processes`` workers of which only ``active_size``
are dispatched at any time, with a queue-monitoring strategy
(Section 3.2.2) growing/shrinking the active set by one per monitoring
step.  Workers not dispatched sit idle and accumulate no process time --
the efficiency the paper quantifies as "87% runtime and 76% process time
of dynamic scheduling's performance in optimal cases".

Tuned defaults (Table 1 grid)
-----------------------------
The default strategy is
:class:`~repro.autoscale.strategies.BacklogStrategy`, which compares the
backlog against the *active* process count instead of against the previous
observation.  The paper's raw queue-delta strategy
(:class:`~repro.autoscale.strategies.QueueSizeStrategy`, available via the
``strategy`` option and exercised by the strategy-ablation benchmark)
suffers from the inertia the paper itself reports: on workloads whose
inputs are seeded up front the queue only ever shrinks, the scaler never
grows past its initial half-pool, and runtime blows up ~3x against plain
dynamic scheduling.  With the backlog strategy the active size tracks
``min(queue, pool)``, reproducing Table 1's headline row (best case
measured here: 0.76 process time at ~1.05 runtime against ``dyn_multi``).

Options
-------
``termination``:
    :class:`~repro.mappings.termination.TerminationPolicy`.
``min_queue``:
    Queue-size floor below which the strategy always votes shrink.
``initial_active``:
    Starting active size (default: half the pool, Algorithm 1 line 6).
``scale_interval``:
    Nominal pacing of the auto-scaler's monitoring loop.
``session_chunk``:
    Maximum tasks a worker session processes before returning control.
``strategy``:
    Override the scaling strategy instance (used by the ablation bench).
``batch_size``:
    Tuples per queue item (micro-batched transport; see
    :mod:`repro.runtime.queues`).  Sessions treat ``session_chunk`` as a
    soft cap at batch granularity -- an envelope is never split.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.autoscale.autoscaler import Autoscaler
from repro.autoscale.strategies import BacklogStrategy
from repro.autoscale.trace import ScalingTrace
from repro.mappings.base import EnactmentState, Mapping
from repro.mappings.dynamic import DynamicWorkforce
from repro.mappings.registry import Capabilities, register_mapping
from repro.mappings.termination import TerminationPolicy
from repro.runtime.workers import WorkerPool


@register_mapping(
    Capabilities(
        stateful=False,
        dynamic=True,
        autoscaling=True,
        batching=True,
        fusion=True,
        streaming=True,
        description="Dynamic multiprocessing + Algorithm 1 auto-scaling",
    )
)
class DynAutoMultiMapping(Mapping):
    """Dynamic scheduling + Algorithm 1 auto-scaler (backlog strategy).

    Streaming submissions reuse the session's warm
    :class:`~repro.runtime.workers.WorkerPool` (skipping the per-run pool
    spin-up), feed the global queue from a background feeder thread while
    sessions already drain it, and keep the auto-scaler loop alive until
    the live input closes -- idle-open periods shrink the active set to
    the strategy's floor, so an open-but-quiet stream costs standby time,
    not busy workers.
    """

    name = "dyn_auto_multi"
    supports_stateful = False
    supports_streaming = True
    wants_pool = True

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        policy = state.options.get("termination", TerminationPolicy())
        workforce = DynamicWorkforce(state, policy)
        feeder: Optional[threading.Thread] = None
        if state.streaming:
            workforce.arm_cancel(state.processes)
            # Feed stage on its own thread: the scaler loop below must run
            # while the lazy initial inputs are still being drained.
            feeder = threading.Thread(
                target=workforce.attach_feed,
                name=f"feed-{state.graph.name}",
                daemon=True,
            )
            feeder.start()
        else:
            workforce.seed_roots()

        pool = state.pool
        own_pool = pool is None
        if own_pool:
            pool = WorkerPool(state.processes, name=f"auto-{state.graph.name}")
        error_start = len(pool.errors)
        strategy = state.options.get(
            "strategy", BacklogStrategy(min_queue=state.options.get("min_queue", 0))
        )
        trace = ScalingTrace(strategy.metric_name)
        # Under batched transport the backlog must be monitored in tuples:
        # qsize counts envelopes, which understates the pending work by the
        # batch factor and would make the scaler shrink a loaded pool.
        monitor = (
            workforce.queue.qsize
            if workforce.batch_size == 1
            else (lambda: workforce.queue.pending_tasks)
        )
        scaler = Autoscaler(
            pool,
            strategy,
            monitor=monitor,
            clock=state.clock,
            initial_active=state.options.get("initial_active"),
            scale_interval=state.options.get("scale_interval", 0.01),
            trace=trace,
        )
        session_chunk = state.options.get("session_chunk", 8)

        def session() -> int:
            # Pool threads are the "processes"; a session is one active
            # phase of that process.  Process time accumulates only here --
            # dispatched-but-idle time is the paper's standby state.
            worker_id = threading.current_thread().name
            with state.meter.active(worker_id):
                try:
                    return workforce.drain_session(worker_id, session_chunk)
                except BaseException as exc:  # noqa: BLE001 - worker boundary
                    state.record_error(exc)
                    return 0

        try:
            scaler.process(session, workforce.is_terminated)
        finally:
            # A warm pool is the session's deployment: it survives the
            # submission (teardown closes it); an ephemeral pool does not.
            if own_pool:
                pool.close()
                pool.join(timeout=state.options.get("join_timeout", 300.0))
            else:
                scaler.stop()
                if not scaler.wait_all_done(
                    timeout=state.options.get("join_timeout", 300.0)
                ):
                    # A session stuck past the timeout would otherwise ride
                    # along invisibly on the warm pool into the next job;
                    # failing the run forfeits the deployment instead.
                    state.record_error(
                        TimeoutError("worker sessions did not finish in time")
                    )
            if feeder is not None:
                feeder.join(timeout=0.1 if state.cancelled() else 5.0)
                # A feeder still stuck on a blocked iterable after a cancel
                # is simply abandoned (daemon); otherwise it is an error.
                if feeder.is_alive() and not state.cancelled():
                    state.record_error(
                        TimeoutError("live input feeder did not finish")
                    )
        for exc in pool.errors[error_start:]:
            state.record_error(exc)
        state.counters.inc("scale_iterations", len(trace))
        state.counters.inc("max_active", trace.max_active())
        return trace
