"""Auto-scaling dynamic Multiprocessing mapping (``dyn_auto_multi``).

Extends :class:`~repro.mappings.dynamic.DynMultiMapping` with the paper's
Algorithm 1: a pool of ``processes`` workers of which only ``active_size``
are dispatched at any time, with the queue-size strategy (Section 3.2.2)
growing/shrinking the active set by one per monitoring step.  Workers not
dispatched sit idle and accumulate no process time -- the efficiency the
paper quantifies as "87% runtime and 76% process time of dynamic
scheduling's performance in optimal cases".

Options
-------
``termination``:
    :class:`~repro.mappings.termination.TerminationPolicy`.
``min_queue``:
    Queue-size floor below which the strategy always votes shrink.
``initial_active``:
    Starting active size (default: half the pool, Algorithm 1 line 6).
``scale_interval``:
    Nominal pacing of the auto-scaler's monitoring loop.
``session_chunk``:
    Maximum tasks a worker session processes before returning control.
``strategy``:
    Override the scaling strategy instance (used by the ablation bench).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.autoscale.autoscaler import Autoscaler
from repro.autoscale.strategies import QueueSizeStrategy
from repro.autoscale.trace import ScalingTrace
from repro.mappings.base import EnactmentState, Mapping
from repro.mappings.dynamic import DynamicWorkforce
from repro.mappings.termination import TerminationPolicy
from repro.runtime.workers import WorkerPool


class DynAutoMultiMapping(Mapping):
    """Dynamic scheduling + Algorithm 1 auto-scaler (queue-size strategy)."""

    name = "dyn_auto_multi"
    supports_stateful = False

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        policy = state.options.get("termination", TerminationPolicy())
        workforce = DynamicWorkforce(state, policy)
        workforce.seed_roots()

        pool = WorkerPool(state.processes, name=f"auto-{state.graph.name}")
        strategy = state.options.get(
            "strategy", QueueSizeStrategy(min_queue=state.options.get("min_queue", 0))
        )
        trace = ScalingTrace(strategy.metric_name)
        scaler = Autoscaler(
            pool,
            strategy,
            monitor=workforce.queue.qsize,
            clock=state.clock,
            initial_active=state.options.get("initial_active"),
            scale_interval=state.options.get("scale_interval", 0.01),
            trace=trace,
        )
        session_chunk = state.options.get("session_chunk", 8)

        def session() -> int:
            # Pool threads are the "processes"; a session is one active
            # phase of that process.  Process time accumulates only here --
            # dispatched-but-idle time is the paper's standby state.
            worker_id = threading.current_thread().name
            with state.meter.active(worker_id):
                try:
                    return workforce.drain_session(worker_id, session_chunk)
                except BaseException as exc:  # noqa: BLE001 - worker boundary
                    state.record_error(exc)
                    return 0

        try:
            scaler.process(session, workforce.is_terminated)
        finally:
            pool.close()
            pool.join(timeout=state.options.get("join_timeout", 300.0))
        for exc in pool.errors:
            state.record_error(exc)
        state.counters.inc("scale_iterations", len(trace))
        state.counters.inc("max_active", trace.max_active())
        return trace
