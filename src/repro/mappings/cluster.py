"""Distributed Redis mapping (``cluster_redis``): worker OS processes over TCP.

The networked end-state of the Redis mapping family: the same dynamic
consumer-group scheduling as :mod:`dyn_redis <repro.mappings.redis_dynamic>`,
but workers are separate **operating-system processes** that join the
deployment by ``host:port`` and speak RESP to a
:class:`~repro.net.server.RespTCPServer` (or genuine Redis) -- nothing in a
worker shares memory with the coordinator.  This is the configuration the
paper's architecture actually describes: dispel4py workers connecting to a
Redis deployment over the network.

How a run is assembled:

- The **coordinator** (:meth:`ClusterRedisMapping._enact`) resolves a server
  address -- an explicit ``address`` option (external ``repro serve-redis``
  daemon), the warm deployment's TCP front-end, or a self-provisioned
  loopback server -- seeds the task board, and publishes a pickled *jobspec*
  (graph, platform, clock scale, seed, transport and termination tuning)
  under ``{ns}:jobspec``.
- Each **worker process** dials the address, fetches the jobspec, rebuilds
  the run context (same ``Clock``/``ExecutionContext``/seed derivation as
  every other mapping, so RNG streams -- and therefore outputs -- are
  identical to ``dyn_redis``), and runs the standard fetch/process/ack loop
  against the stream.  Results relay back through a ``{ns}:results`` list
  the coordinator pumps into its collector; counters accumulate locally and
  flush once at exit.
- **Recovery** is inherited wholesale: a worker SIGKILLed mid-run leaves
  its fetched-but-unacked entries in the group PEL, and starved survivors
  adopt them via ``XAUTOCLAIM`` exactly as in-process workers do -- now
  across a real socket and a real process boundary.  The ``crash_workers``
  / ``crash_after`` options inject that failure deterministically for
  tests.

Because workers can start from a bare interpreter (``spawn``) or join from
another machine entirely (``repro join ADDRESS NAMESPACE``), everything a
worker needs travels through the keyspace; the only out-of-band inputs are
the address, the namespace, and a worker index.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import threading
import time
import uuid
from typing import Any, Dict, List, Optional

from repro.autoscale.trace import ScalingTrace
from repro.core.concrete import ConcreteWorkflow
from repro.core.context import ExecutionContext
from repro.core.pe import GenericPE
from repro.mappings.base import (
    EnactmentState,
    Mapping,
    dispatch_emissions,
    instantiate,
    resolve_batch_size,
)
from repro.mappings.redis_tasks import PILL, RedisTaskBoard, reclaim_threshold_ms
from repro.mappings.registry import Capabilities, register_mapping
from repro.mappings.termination import TerminationPolicy
from repro.net.client import SocketRedisClient
from repro.net.server import RespTCPServer
from repro.runtime.clock import Clock

#: How long a worker polls for the jobspec before giving up (real seconds).
JOBSPEC_TIMEOUT = 30.0


def _dumps(value: Any) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def _graph_pes(graph) -> List[GenericPE]:
    """Every PE object a graph transports, including fused members."""
    pes: List[GenericPE] = []
    for pe in graph.pes.values():
        pes.append(pe)
        pes.extend(getattr(pe, "members", ()))
    return pes


def _dumps_jobspec(jobspec: Dict[str, Any]) -> bytes:
    """Pickle the jobspec with run-context handles stripped from the PEs.

    Abstract PEs carry a default :class:`ExecutionContext` whose clock
    holds thread-locals -- meaningless across a process boundary and not
    picklable.  Workers rebuild the real context from the jobspec and
    ``instantiate`` re-binds ``ctx``/``rng`` on every copy (fused members
    get theirs in ``FusedPE.preprocess``), so ``None`` placeholders are
    never observed.  The originals are restored afterwards: the coordinator
    shares these PE objects with the caller.
    """
    saved = [(pe, pe.ctx, pe.rng) for pe in _graph_pes(jobspec["graph"])]
    try:
        for pe, _, _ in saved:
            pe.ctx = None
            pe.rng = None
        return _dumps(jobspec)
    finally:
        for pe, ctx, rng in saved:
            pe.ctx = ctx
            pe.rng = rng


class _RelayCollector:
    """Worker-side stand-in for :class:`ResultsCollector`.

    Collected emissions cannot land in the coordinator's memory directly --
    there is a process boundary in the way -- so each one is RPUSHed to the
    run's results list, which the coordinator's pump thread drains into the
    real collector.  The client pickles the ``(pe, port, value)`` triple
    like any other list payload.
    """

    def __init__(self, client: SocketRedisClient, results_key: str) -> None:
        self._client = client
        self._key = results_key

    def add(self, pe_name: str, port: str, value: Any) -> None:
        self._client.rpush(self._key, (pe_name, port, value))


class _ClusterWorker:
    """One worker process's run state, rebuilt from the jobspec."""

    def __init__(
        self, client: SocketRedisClient, namespace: str, index: int, spec: Dict[str, Any]
    ) -> None:
        self.client = client
        self.namespace = namespace
        self.index = index
        self.consumer = f"cluster-{index}"
        self.spec = spec
        self.graph = spec["graph"]
        platform = spec["platform"]
        self.clock = Clock(spec["time_scale"])
        # Identical context derivation to every in-process mapping: same
        # seed, same per-instance RNG streams, same core emulation -- the
        # reason cluster outputs are byte-identical to dyn_redis.
        self.ctx = ExecutionContext(
            clock=self.clock,
            cores=platform.make_core_limiter(),
            seed=spec["seed"],
            cpu_speed=platform.cpu_speed,
        )
        self.policy: TerminationPolicy = spec["policy"]
        self.batch_size: int = spec["batch_size"]
        self.reclaim_idle_ms: float = spec["reclaim_idle_ms"]
        self.total_workers: int = spec["total_workers"]
        self.crash_after: Optional[int] = (
            spec["crash_after"] if index in spec["crash_workers"] else None
        )
        self.board = RedisTaskBoard(client, namespace=namespace)
        self.concrete = ConcreteWorkflow.single_instance(self.graph)
        self.collector = _RelayCollector(client, f"{namespace}:results")
        self.copies: Dict[str, GenericPE] = {
            name: instantiate(pe, 0, 1, self.ctx)
            for name, pe in self.graph.pes.items()
        }
        for pe in self.copies.values():
            pe.preprocess()
        self.counters: Dict[str, int] = {"graph_copies": 1}
        self._fetched_entries = 0

    def _inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def flush_counters(self) -> None:
        """One pipelined HINCRBY burst merging local counters into the run's."""
        if not self.counters:
            return
        counters, self.counters = self.counters, {}
        pipe = self.client.pipeline()
        key = f"{self.namespace}:counters"
        for name, amount in counters.items():
            pipe._queue(["HINCRBY", key, name, amount])
        pipe.execute()

    def _maybe_crash(self, new_entries: int) -> None:
        """Deterministic failure injection for the recovery tests.

        Dies *after* fetching (entries are in this consumer's PEL) but
        *before* processing or acking -- the exact window XAUTOCLAIM
        recovery exists for.  SIGKILL, not an exception: nothing may run
        cleanup, or the entries would be handed back gracefully and the
        adoption path would go untested.
        """
        self._fetched_entries += new_entries
        if self.crash_after is not None and self._fetched_entries > self.crash_after:
            os.kill(os.getpid(), signal.SIGKILL)

    def process_entry(self, entry_id: str, payload: Any) -> int:
        tasks = self.board.entry_tasks(payload)
        children = []
        try:
            for pe_name, port, item in tasks:
                inputs = item if port is None else {port: item}
                emissions = self.copies[pe_name]._invoke(inputs)
                self._inc("tasks")
                children.extend(
                    (d.dst, d.dst_port, d.data)
                    for d in dispatch_emissions(
                        self.concrete, self.collector, pe_name, 0, emissions
                    )
                )
        finally:
            self.board.finish_entry(
                entry_id, len(tasks), children, self.client,
                batch_size=self.batch_size,
            )
        return len(tasks)

    def is_terminated(self) -> bool:
        if self.policy.unsafe_empty_check:
            return self.board.backlog() == 0
        return self.board.is_drained()

    def broadcast_pills(self) -> None:
        # Cross-process once-guard: a threading.Event cannot coordinate
        # separate OS processes, but INCR can -- only the first worker to
        # bump the counter broadcasts.
        if self.client.incr(f"{self.namespace}:pills_sent") == 1:
            self.board.put_pills(self.total_workers)
            self._inc("pills", self.total_workers)

    def reclaim_stale(self) -> int:
        """Adopt entries stuck with dead workers (see redis_dynamic.py)."""
        recovered = self.board.recover_stale(
            self.consumer, self.client, min_idle_ms=self.reclaim_idle_ms
        )
        tasks = 0
        for entry_id, payload in recovered:
            self._inc("reclaimed")
            tasks += self.process_entry(entry_id, payload)
        return tasks

    def run(self) -> None:
        """The worker loop: structurally identical to ``RedisWorkforce``."""
        base_block = max(1, int(self.clock.to_real(self.policy.poll_interval) * 1000))
        empty_streak = 0
        while True:
            block_ms = min(base_block * (1 << min(empty_streak, 5)), 32 * base_block)
            fetched = self.board.fetch(self.consumer, self.client, block_ms=block_ms)
            if not fetched:
                empty_streak += 1
                self._inc("empty_polls")
                if empty_streak >= self.policy.empty_retries:
                    if self.is_terminated():
                        self.broadcast_pills()
                        return
                    if (empty_streak - self.policy.empty_retries) % 8 == 0 and (
                        self.reclaim_stale()
                    ):
                        empty_streak = 0
                continue
            empty_streak = 0
            real_entries = sum(1 for _, payload in fetched if payload is not PILL)
            self._maybe_crash(real_entries)
            got_pill = False
            for entry_id, payload in fetched:
                if payload is PILL:
                    self.board.ack(entry_id, self.client)
                    got_pill = True
                    continue
                self.process_entry(entry_id, payload)
            if got_pill:
                return


def run_worker(address: str, namespace: str, index: int) -> None:
    """Join a cluster run as one worker process (also the ``repro join`` entry).

    Dials ``address``, polls ``{namespace}:jobspec`` until the coordinator
    publishes it, rebuilds the run context and consumes the task stream to
    termination.  Module-level by necessity: the ``spawn`` start method
    imports this module in a fresh interpreter and looks the target up by
    qualified name.
    """
    client = SocketRedisClient(address=address)
    try:
        deadline = time.monotonic() + JOBSPEC_TIMEOUT
        while True:
            raw = client.get(f"{namespace}:jobspec")
            if raw is not None:
                break
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"no jobspec appeared under {namespace!r} at {address} "
                    f"within {JOBSPEC_TIMEOUT}s"
                )
            time.sleep(0.05)
        spec = pickle.loads(raw)
        worker = _ClusterWorker(client, namespace, index, spec)
        try:
            worker.run()
        finally:
            worker.flush_counters()
    except BaseException as exc:  # noqa: BLE001 - process boundary
        try:
            client.rpush(f"{namespace}:errors", f"worker {index}: {exc!r}")
        finally:
            client.close()
        raise
    client.close()


@register_mapping(
    Capabilities(
        stateful=False,
        dynamic=True,
        requires_redis=True,
        recoverable=True,
        batching=True,
        fusion=True,
        networked=True,
        description="Distributed worker processes over RESP/TCP",
    )
)
class ClusterRedisMapping(Mapping):
    """Distributed dynamic scheduling: worker processes joining over TCP."""

    name = "cluster_redis"
    supports_stateful = False
    requires_redis = True
    wants_net = True

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        options = state.options
        policy = options.get("termination", TerminationPolicy())
        batch_size = resolve_batch_size(options)
        own_server: Optional[RespTCPServer] = None
        address = options.get("address")
        if address is None:
            net_server = options.get("net_server")
            if net_server is not None:
                address = net_server.address
            else:
                # Cold run (Engine.run / bare execute): self-provision a
                # loopback server.  It fronts the deployment's keyspace if
                # one was provided, else owns a private one.
                own_server = RespTCPServer(options.get("redis_server")).start()
                address = own_server.address
        namespace = options.get(
            "namespace", f"repro:{state.graph.name}:{uuid.uuid4().hex[:8]}"
        )
        client = SocketRedisClient(address=address)
        board = RedisTaskBoard(client, namespace=namespace)
        board.setup()
        results_key = f"{namespace}:results"
        errors_key = f"{namespace}:errors"
        run_keys = (
            f"{namespace}:jobspec", results_key, errors_key,
            f"{namespace}:pills_sent", f"{namespace}:counters",
        )
        client.delete(*run_keys)

        # Seed roots before publishing the jobspec: a worker that joins
        # early must find either no jobspec or a fully seeded board, never
        # a board it could drain to "terminated" mid-seed.
        tasks = [
            (root, None, item)
            for root, items in state.provided.items()
            for item in items
        ]
        if batch_size > 1:
            board.put_many(tasks, batch_size=batch_size)
        else:
            for task in tasks:
                board.put(task)
        state.counters.inc("seed_tasks", board.outstanding())

        crash_workers = options.get("crash_workers", ())
        jobspec = {
            "graph": state.graph,
            "platform": state.platform,
            "time_scale": state.clock.time_scale,
            "seed": state.ctx.seed,
            "policy": policy,
            "batch_size": batch_size,
            "reclaim_idle_ms": reclaim_threshold_ms(options, state.clock),
            "total_workers": state.processes,
            "crash_after": options.get("crash_after"),
            "crash_workers": tuple(crash_workers),
        }
        client.set(f"{namespace}:jobspec", _dumps_jobspec(jobspec))

        # Results pump: drains the relay list into the local collector for
        # the whole run, then keeps going until the list is empty *after*
        # the stop flag is set (workers are dead by then, so an empty poll
        # with the flag up means drained for good).
        stop_pump = threading.Event()

        def pump() -> None:
            pump_client = SocketRedisClient(address=address)
            try:
                while True:
                    hit = pump_client.blpop(results_key, timeout=0.2)
                    if hit is not None:
                        pe_name, port, value = hit[1]
                        state.collector.add(pe_name, port, value)
                    elif stop_pump.is_set():
                        return
            finally:
                pump_client.close()

        pump_thread = threading.Thread(target=pump, name="cluster-pump", daemon=True)
        pump_thread.start()

        mp = multiprocessing.get_context(options.get("start_method", "spawn"))
        workers = [
            mp.Process(
                target=run_worker,
                args=(address, namespace, index),
                name=f"cluster-{index}",
                daemon=True,
            )
            for index in range(state.processes)
        ]
        for index in range(len(workers)):
            state.meter.activate(f"cluster-{index}")
        try:
            for proc in workers:
                proc.start()
            timeout = options.get("join_timeout", 300.0)
            deadline = time.monotonic() + timeout
            for index, proc in enumerate(workers):
                proc.join(timeout=max(0.1, deadline - time.monotonic()))
                if proc.is_alive():
                    state.record_error(
                        TimeoutError(
                            f"worker {proc.name} did not finish in {timeout}s"
                        )
                    )
                    proc.terminate()
                    proc.join(timeout=5.0)
                elif proc.exitcode == -signal.SIGKILL and index in crash_workers:
                    # The injected crash: expected, recovery covers it.
                    state.counters.inc("crashed_workers")
                elif proc.exitcode != 0:
                    state.record_error(
                        RuntimeError(
                            f"worker {proc.name} exited with code {proc.exitcode}"
                        )
                    )
        finally:
            for index in range(len(workers)):
                state.meter.deactivate(f"cluster-{index}")
            stop_pump.set()
            pump_thread.join(timeout=10.0)
        for message in client.lrange(errors_key, 0, -1):
            state.record_error(RuntimeError(str(message)))
        if not state.errors and not board.is_drained():
            state.record_error(
                RuntimeError(
                    f"run ended with {board.outstanding()} task(s) outstanding"
                )
            )
        for name, value in client.hgetall(f"{namespace}:counters").items():
            state.counters.inc(name, int(value))
        board.teardown()
        client.delete(*run_keys)
        client.close()
        if own_server is not None:
            own_server.close()
        return None
