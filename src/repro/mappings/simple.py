"""Sequential reference mapping.

One logical instance per PE, executed in a single worker with FIFO data
propagation.  Used as the semantic oracle: every parallel mapping must
produce the same multiset of outputs as ``simple`` (the integration tests
assert exactly that).  The paper notes dynamic scheduling "is ineffective
with Simple mapping, where tasks are executed sequentially" -- hence no
dynamic variant exists for it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.autoscale.trace import ScalingTrace
from repro.core.concrete import ConcreteWorkflow
from repro.mappings.base import (
    EnactmentState,
    Mapping,
    dispatch_emissions,
    instantiate,
)
from repro.mappings.registry import Capabilities, register_mapping


@register_mapping(
    Capabilities(
        stateful=True,
        fusion=True,
        description="Sequential reference mapping (the semantic oracle)",
    )
)
class SimpleMapping(Mapping):
    """Sequential in-process enactment (dispel4py's *Simple* mapping)."""

    name = "simple"
    supports_stateful = True

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        graph = state.graph
        concrete = ConcreteWorkflow.single_instance(graph)
        instances = {
            name: instantiate(pe, 0, 1, state.ctx) for name, pe in graph.pes.items()
        }
        order = graph.topological_order()
        worker_id = "simple-0"
        state.meter.activate(worker_id)
        try:
            for name in order:
                instances[name].preprocess()

            fifo: Deque[Tuple[str, Dict[str, Any]]] = deque()
            for root, items in state.provided.items():
                for item in items:
                    fifo.append((root, item))

            def drain() -> None:
                while fifo:
                    pe_name, inputs = fifo.popleft()
                    emissions = instances[pe_name]._invoke(inputs)
                    state.counters.inc("tasks")
                    for delivery in dispatch_emissions(
                        concrete, state.collector, pe_name, 0, emissions
                    ):
                        fifo.append((delivery.dst, {delivery.dst_port: delivery.data}))

            drain()
            # Flush stateful aggregates in topological order so that a
            # postprocess emission from an upstream PE is consumed before
            # the downstream PE itself is flushed.
            for name in order:
                emissions = instances[name]._flush_postprocess()
                for delivery in dispatch_emissions(
                    concrete, state.collector, name, 0, emissions
                ):
                    fifo.append((delivery.dst, {delivery.dst_port: delivery.data}))
                drain()
        except BaseException as exc:  # noqa: BLE001 - single-worker boundary
            state.record_error(exc)
        finally:
            state.meter.deactivate(worker_id)
        return None
