"""Enactment mappings: the paper's techniques plus the networked substrate.

========================  ===================================================
Name                      Description
========================  ===================================================
``simple``                Sequential reference mapping.
``multi``                 Native static Multiprocessing mapping (baseline).
``dyn_multi``             Dynamic scheduling on a global queue [Liang22].
``dyn_auto_multi``        + auto-scaling (backlog strategy), Section 3.2.
``dyn_redis``             Dynamic scheduling on a Redis Stream, Section 3.1.1.
``dyn_auto_redis``        + auto-scaling (idle-time strategy), Section 3.2.
``hybrid_redis``          Stateful-aware hybrid mapping, Section 3.1.2.
``cluster_redis``         Distributed worker processes over RESP/TCP.
========================  ===================================================

Mappings self-register through the capability-aware registry
(:mod:`repro.mappings.registry`): each class carries a
:class:`~repro.mappings.registry.Capabilities` record, third-party
backends can join via :func:`register_mapping`, and
:func:`select_mapping` resolves ``mapping="auto"`` for a given graph and
platform.  Use :func:`get_mapping` to obtain an engine by name, or the
:class:`repro.Engine` facade / :func:`repro.run` convenience.
"""

from repro.mappings.base import Mapping, normalize_inputs
from repro.mappings.registry import (
    Capabilities,
    UnknownMappingError,
    capability_table,
    get_capabilities,
    get_mapping,
    get_mapping_class,
    mapping_names,
    register_mapping,
    select_mapping,
    unregister_mapping,
)

# Importing the implementation modules runs their @register_mapping
# decorators, populating the registry with the built-ins.
from repro.mappings.cluster import ClusterRedisMapping
from repro.mappings.dyn_auto import DynAutoMultiMapping
from repro.mappings.dynamic import DynMultiMapping
from repro.mappings.hybrid import HybridRedisMapping
from repro.mappings.multi import MultiMapping
from repro.mappings.redis_auto import DynAutoRedisMapping
from repro.mappings.redis_dynamic import DynRedisMapping
from repro.mappings.simple import SimpleMapping
from repro.mappings.termination import TerminationPolicy

__all__ = [
    "Capabilities",
    "ClusterRedisMapping",
    "DynAutoMultiMapping",
    "DynAutoRedisMapping",
    "DynMultiMapping",
    "HybridRedisMapping",
    "Mapping",
    "MultiMapping",
    "SimpleMapping",
    "DynRedisMapping",
    "TerminationPolicy",
    "UnknownMappingError",
    "capability_table",
    "get_capabilities",
    "get_mapping",
    "get_mapping_class",
    "mapping_names",
    "normalize_inputs",
    "register_mapping",
    "select_mapping",
    "unregister_mapping",
]
