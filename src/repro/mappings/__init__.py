"""Enactment mappings: the six techniques evaluated in the paper.

========================  ===================================================
Name                      Description
========================  ===================================================
``simple``                Sequential reference mapping.
``multi``                 Native static Multiprocessing mapping (baseline).
``dyn_multi``             Dynamic scheduling on a global queue [Liang22].
``dyn_auto_multi``        + auto-scaling (queue-size strategy), Section 3.2.
``dyn_redis``             Dynamic scheduling on a Redis Stream, Section 3.1.1.
``dyn_auto_redis``        + auto-scaling (idle-time strategy), Section 3.2.
``hybrid_redis``          Stateful-aware hybrid mapping, Section 3.1.2.
========================  ===================================================

Use :func:`get_mapping` to obtain an engine by name, or the top-level
:func:`repro.run` convenience.
"""

from typing import Dict, List, Type

from repro.mappings.base import Mapping, normalize_inputs
from repro.mappings.dyn_auto import DynAutoMultiMapping
from repro.mappings.dynamic import DynMultiMapping
from repro.mappings.hybrid import HybridRedisMapping
from repro.mappings.multi import MultiMapping
from repro.mappings.redis_auto import DynAutoRedisMapping
from repro.mappings.redis_dynamic import DynRedisMapping
from repro.mappings.simple import SimpleMapping
from repro.mappings.termination import TerminationPolicy

_MAPPINGS: Dict[str, Type[Mapping]] = {
    cls.name: cls
    for cls in (
        SimpleMapping,
        MultiMapping,
        DynMultiMapping,
        DynAutoMultiMapping,
        DynRedisMapping,
        DynAutoRedisMapping,
        HybridRedisMapping,
    )
}


def mapping_names() -> List[str]:
    """All registered mapping names."""
    return sorted(_MAPPINGS)


def get_mapping(name: str) -> Mapping:
    """Instantiate a mapping engine by registry name."""
    try:
        return _MAPPINGS[name]()
    except KeyError:
        known = ", ".join(mapping_names())
        raise KeyError(f"unknown mapping {name!r}; known: {known}") from None


__all__ = [
    "DynAutoMultiMapping",
    "DynAutoRedisMapping",
    "DynMultiMapping",
    "HybridRedisMapping",
    "Mapping",
    "MultiMapping",
    "SimpleMapping",
    "DynRedisMapping",
    "TerminationPolicy",
    "get_mapping",
    "mapping_names",
    "normalize_inputs",
]
