"""Capability-aware mapping registry.

Mappings self-register with :func:`register_mapping`, declaring a
:class:`Capabilities` record describing what they can enact.  The registry
replaces the old closed name->class dict: third-party backends register the
same way the built-in seven do, and :func:`select_mapping` resolves
``mapping="auto"`` by matching a workflow's requirements (statefulness,
platform features, process budget) against the declared capabilities.

Auto-selection policy (the paper's Section 5 conclusions, encoded):

- stateful workflows need state-pinning -- ``hybrid_redis`` where Redis is
  available, the static ``multi`` mapping otherwise;
- stateless workflows get dynamic scheduling with auto-scaling, preferring
  the Multiprocessing substrate ("Multiprocessing optimizations outperform
  those of Redis", Section 5.6);
- ``prefer=...`` short-circuits the policy with the caller's ordered
  choices, failing with :class:`UnsupportedFeatureError` (and the reasons)
  if none of them fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.exceptions import UnsupportedFeatureError
from repro.core.graph import WorkflowGraph
from repro.core.partition import minimum_processes
from repro.platforms.profiles import PlatformProfile


@dataclass(frozen=True)
class Capabilities:
    """Declarative description of what an enactment mapping supports.

    Attributes
    ----------
    stateful:
        Can honour stateful PEs and state-pinning groupings.
    requires_redis:
        Needs a Redis deployment on the target platform.
    autoscaling:
        Adapts its active process count at runtime (Algorithm 1).
    dynamic:
        Schedules tasks dynamically (no static PE-to-process pinning).
    recoverable:
        Survives worker crashes mid-run: consumer-group PEL reclaim for
        stateless tasks, and -- on ``hybrid_redis`` -- checkpoint/restore
        of pinned stateful instances (:mod:`repro.state`).
    batching:
        Honours the ``batch_size`` / ``batch_linger_ms`` transport options
        (micro-batched tuple envelopes on its queues/streams).  Mappings
        without it are rejected by the engine when batching is requested,
        rather than silently running unbatched.
    fusion:
        Executes operator-fusion rewrites (the ``fuse`` option): fusable
        1:1 chains collapse into in-process :class:`repro.core.fusion.
        FusedPE` operators before enactment.  All built-in mappings
        support it (the rewrite happens above the mapping); the flag gates
        third-party backends that bypass the shared enactment path --
        ``fuse=True`` on such a mapping is rejected rather than silently
        ignored (``fuse="auto"`` skips it instead).
    streaming:
        Runs the live streaming path of :meth:`repro.mappings.base.
        Mapping.submit`: tuples sent through a :class:`repro.jobs.Job`
        enter the *running* workflow immediately, and unbound sources stay
        live until ``close_input``.  Mappings without it still accept
        submissions -- ingestion is buffered and enactment starts when the
        input closes (results stream out either way).
    networked:
        Workers are separate OS processes joining the deployment over a
        real TCP socket (RESP protocol) instead of sharing the keyspace
        in-process.  Networked mappings accept the ``address`` option
        (``"host:port"`` of an external ``repro serve-redis`` daemon);
        the engine rejects ``address`` on mappings without this flag.
    static_allocation:
        Uses the static partitioning rule, which imposes a per-graph
        process floor (one process per PE instance).
    min_processes:
        Flat lower bound on the process count, independent of the graph.
    description:
        One-line summary for ``repro list`` and the README table.
    """

    stateful: bool = True
    requires_redis: bool = False
    autoscaling: bool = False
    dynamic: bool = False
    recoverable: bool = False
    batching: bool = False
    fusion: bool = False
    streaming: bool = False
    networked: bool = False
    static_allocation: bool = False
    min_processes: int = 1
    description: str = ""


class UnknownMappingError(KeyError):
    """Raised for a mapping name nobody registered (a KeyError subclass)."""


#: Registered mappings: name -> (class, capabilities).
_REGISTRY: Dict[str, Tuple[type, Capabilities]] = {}


def register_mapping(
    capabilities: Optional[Capabilities] = None,
) -> Callable[[type], type]:
    """Class decorator registering a :class:`Mapping` under its ``name``.

    Usage::

        @register_mapping(Capabilities(stateful=False, dynamic=True))
        class MyMapping(Mapping):
            name = "my_mapping"
            supports_stateful = False

    The capabilities record defaults to one derived from the class's
    ``supports_stateful`` / ``requires_redis`` attributes; when given
    explicitly it must agree with them (they gate
    :meth:`~repro.mappings.base.Mapping.execute`), so the declaration and
    the enforcement cannot drift apart.  Registering a second class under
    an existing name replaces the first -- that is how out-of-tree
    backends can shadow a built-in.
    """

    def decorate(cls: type) -> type:
        name = getattr(cls, "name", None)
        if not name or name == "abstract":
            raise ValueError(
                f"mapping class {cls.__name__} must define a unique `name` "
                f"attribute before registration"
            )
        caps = capabilities
        if caps is None:
            doc_lines = (cls.__doc__ or "").strip().splitlines()
            caps = Capabilities(
                stateful=bool(getattr(cls, "supports_stateful", True)),
                requires_redis=bool(getattr(cls, "requires_redis", False)),
                streaming=bool(getattr(cls, "supports_streaming", False)),
                description=doc_lines[0] if doc_lines else "",
            )
        if caps.stateful != bool(getattr(cls, "supports_stateful", True)):
            raise ValueError(
                f"mapping {name!r}: Capabilities.stateful={caps.stateful} "
                f"contradicts {cls.__name__}.supports_stateful"
            )
        if caps.requires_redis != bool(getattr(cls, "requires_redis", False)):
            raise ValueError(
                f"mapping {name!r}: Capabilities.requires_redis="
                f"{caps.requires_redis} contradicts {cls.__name__}.requires_redis"
            )
        if caps.streaming != bool(getattr(cls, "supports_streaming", False)):
            raise ValueError(
                f"mapping {name!r}: Capabilities.streaming={caps.streaming} "
                f"contradicts {cls.__name__}.supports_streaming"
            )
        _REGISTRY[name] = (cls, caps)
        cls.capabilities = caps
        return cls

    return decorate


def unregister_mapping(name: str) -> None:
    """Remove a registration (used by tests cleaning up ad-hoc backends)."""
    _REGISTRY.pop(name, None)


def mapping_names() -> List[str]:
    """All registered mapping names."""
    return sorted(_REGISTRY)


def get_mapping_class(name: str) -> type:
    """The registered class for ``name`` (without instantiating it)."""
    try:
        return _REGISTRY[name][0]
    except KeyError:
        known = ", ".join(mapping_names())
        raise UnknownMappingError(
            f"unknown mapping {name!r}; known: {known}"
        ) from None


def get_capabilities(name: str) -> Capabilities:
    """The declared capabilities of a registered mapping."""
    try:
        return _REGISTRY[name][1]
    except KeyError:
        known = ", ".join(mapping_names())
        raise UnknownMappingError(
            f"unknown mapping {name!r}; known: {known}"
        ) from None


def get_mapping(name: str):
    """Instantiate a mapping engine by registry name."""
    return get_mapping_class(name)()


def capability_table() -> List[Tuple[str, Capabilities]]:
    """(name, capabilities) rows, sorted by name -- for CLI/docs rendering."""
    return [(name, _REGISTRY[name][1]) for name in mapping_names()]


# --------------------------------------------------------------- selection

#: Auto-selection preference orders (first feasible candidate wins).
_STATEFUL_ORDER = ("hybrid_redis", "multi", "simple")
_STATELESS_ORDER = (
    "dyn_auto_multi",
    "dyn_auto_redis",
    "dyn_multi",
    "dyn_redis",
    "multi",
    "simple",
)


def _rejection_reason(
    name: str,
    caps: Capabilities,
    stateful: bool,
    platform: Optional[PlatformProfile],
    graph: WorkflowGraph,
    processes: Optional[int],
) -> Optional[str]:
    """Why ``name`` cannot enact this workflow, or None if it can."""
    if stateful and not caps.stateful:
        return (
            f"{name!r} supports only stateless workflows, but "
            f"{graph.name!r} contains stateful PEs or state-pinning groupings"
        )
    if caps.requires_redis and platform is not None and not platform.redis_available:
        return (
            f"{name!r} needs Redis, which platform {platform.name!r} "
            f"does not provide"
        )
    if processes is not None:
        floor = caps.min_processes
        if caps.static_allocation:
            floor = max(floor, minimum_processes(graph))
        if processes < floor:
            return (
                f"{name!r} needs at least {floor} processes for "
                f"{graph.name!r}, got {processes}"
            )
    return None


def select_mapping(
    graph: WorkflowGraph,
    platform: Optional[PlatformProfile] = None,
    prefer: Union[str, Sequence[str], None] = None,
    processes: Optional[int] = None,
) -> str:
    """Resolve ``mapping="auto"``: the best registered mapping for ``graph``.

    Parameters
    ----------
    graph:
        The abstract workflow (its statefulness drives the choice).
    platform:
        Target platform; Redis-dependent mappings are skipped where
        ``platform.redis_available`` is False.
    prefer:
        A mapping name, or an ordered sequence of names, to try before the
        default policy.  If none of the preferred names is feasible the
        selection *fails* with :class:`UnsupportedFeatureError` explaining
        each rejection, rather than silently falling back.
    processes:
        Optional process budget; mappings whose floor exceeds it are
        skipped (e.g. static ``multi`` needs one process per instance).

    Returns
    -------
    The registry name of the selected mapping.
    """
    stateful = graph.is_stateful()
    if prefer is not None:
        candidates: Iterable[str] = (prefer,) if isinstance(prefer, str) else tuple(prefer)
        if not candidates:
            raise ValueError(
                "prefer=... is empty; pass None for automatic selection"
            )
        explicit = True
    else:
        candidates = _STATEFUL_ORDER if stateful else _STATELESS_ORDER
        explicit = False

    reasons: List[str] = []
    for name in candidates:
        if name not in _REGISTRY:
            if explicit:
                known = ", ".join(mapping_names())
                raise UnknownMappingError(
                    f"unknown mapping {name!r} in prefer=...; known: {known}"
                )
            continue
        reason = _rejection_reason(
            name, get_capabilities(name), stateful, platform, graph, processes
        )
        if reason is None:
            return name
        reasons.append(reason)

    detail = "; ".join(reasons) if reasons else "no mappings are registered"
    raise UnsupportedFeatureError(
        f"no {'preferred ' if explicit else ''}mapping can enact workflow "
        f"{graph.name!r}: {detail}"
    )
