"""Auto-scaling dynamic Redis mapping (``dyn_auto_redis``).

Algorithm 1 on top of :class:`~repro.mappings.redis_dynamic.RedisWorkforce`,
with the idle-time monitoring strategy of Section 3.2.2: the auto-scaler
watches the Redis consumer group's **average idle time** over the consumers
that are currently in active sessions.  Idle time above the threshold (set
to the reactivation/redeployment cost of the platform) means capacity is
starved of work and a process is logically deactivated; low idle time means
the group is saturated and a process is activated.  Figures 13b/13e plot
the resulting inverse relationship.

Options
-------
``termination``:
    :class:`~repro.mappings.termination.TerminationPolicy`.
``idle_threshold_ms``:
    Idle-time threshold in *real* milliseconds (default: 4x the scaled
    poll interval, a reasonable stand-in for redeployment cost).
``initial_active`` / ``scale_interval`` / ``session_chunk`` / ``strategy``:
    As in :class:`~repro.mappings.dyn_auto.DynAutoMultiMapping`.
``batch_size``:
    Tasks per stream entry (micro-batched transport; see
    :mod:`repro.mappings.redis_dynamic`).  The headline lever for this
    mapping: it divides the per-tuple Redis round-trip count -- the cost
    that makes Redis mappings trail their Multiprocessing twins
    (Section 5.6) -- by the batch factor.
"""

from __future__ import annotations

import threading
from typing import Optional, Set

from repro.autoscale.autoscaler import Autoscaler
from repro.autoscale.strategies import IdleTimeStrategy
from repro.autoscale.trace import ScalingTrace
from repro.mappings.base import EnactmentState, Mapping
from repro.mappings.redis_dynamic import RedisWorkforce
from repro.mappings.registry import Capabilities, register_mapping
from repro.mappings.termination import TerminationPolicy
from repro.runtime.workers import WorkerPool


@register_mapping(
    Capabilities(
        stateful=False,
        dynamic=True,
        autoscaling=True,
        requires_redis=True,
        recoverable=True,
        batching=True,
        fusion=True,
        description="Redis dynamic scheduling + idle-time auto-scaling",
    )
)
class DynAutoRedisMapping(Mapping):
    """Dynamic Redis scheduling + Algorithm 1 auto-scaler (idle-time strategy)."""

    name = "dyn_auto_redis"
    supports_stateful = False
    requires_redis = True

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        policy = state.options.get("termination", TerminationPolicy())
        workforce = RedisWorkforce(state, policy)
        workforce.seed_roots()

        pool = WorkerPool(state.processes, name=f"autoredis-{state.graph.name}")
        # The idle threshold is per-*interaction*, and with batched
        # transport a consumer legitimately goes batch_size tuples between
        # server interactions -- a saturated worker chewing an envelope
        # looks exactly as "idle" to XINFO as a starved one.  Scale the
        # default threshold with the envelope size so the strategy keeps
        # measuring starvation, not batch service time (an explicit
        # idle_threshold_ms override is taken as-is).
        default_threshold = (
            4.0
            * state.clock.to_real(policy.poll_interval)
            * 1000.0
            * workforce.batch_size
        )
        strategy = state.options.get(
            "strategy",
            IdleTimeStrategy(
                threshold_ms=state.options.get("idle_threshold_ms", default_threshold)
            ),
        )
        trace = ScalingTrace(strategy.metric_name)

        active_consumers: Set[str] = set()
        active_lock = threading.Lock()

        def monitor() -> float:
            with active_lock:
                consumers = set(active_consumers)
            if not consumers:
                # No active sessions: report the threshold itself so the
                # strategy holds rather than oscillating on no signal.
                return getattr(strategy, "threshold_ms", 0.0)
            return workforce.board.avg_idle_ms(consumers)

        scaler = Autoscaler(
            pool,
            strategy,
            monitor=monitor,
            clock=state.clock,
            initial_active=state.options.get("initial_active"),
            scale_interval=state.options.get("scale_interval", 0.01),
            trace=trace,
        )
        session_chunk = state.options.get("session_chunk", 8)

        def session() -> int:
            worker_id = threading.current_thread().name
            consumer = f"consumer-{worker_id}"
            with active_lock:
                active_consumers.add(consumer)
            with state.meter.active(worker_id):
                try:
                    return workforce.drain_session(worker_id, consumer, session_chunk)
                except BaseException as exc:  # noqa: BLE001 - worker boundary
                    state.record_error(exc)
                    return 0
                finally:
                    with active_lock:
                        active_consumers.discard(consumer)

        try:
            scaler.process(session, workforce.is_terminated)
        finally:
            pool.close()
            pool.join(timeout=state.options.get("join_timeout", 300.0))
        for exc in pool.errors:
            state.record_error(exc)
        workforce.teardown()
        state.counters.inc("scale_iterations", len(trace))
        state.counters.inc("max_active", trace.max_active())
        return trace
