"""Termination strategies for dynamic scheduling (Section 3.2.3).

Static mappings terminate with counted *poison pills*: a finishing upstream
instance signals end-of-stream to every downstream instance, which closes a
port once it has received one pill per producer.  That breaks under dynamic
scheduling, where "task processing order is not reserved" -- a pill can
overtake live tasks in the global queue.

The paper's dynamic strategy combines an emptiness check with a *retry*
mechanism: a worker observing an empty queue waits a configurable threshold,
retries a bounded number of times, and only then decides to terminate --
broadcasting poison pills to accelerate the other workers' exit.

The paper concedes the emptiness check "is not foolproof and could lead to
unexpected exits in some extreme cases": a worker may be about to enqueue
children when its peers see an empty queue.  Our queues therefore also track
*outstanding* work (tasks put but not yet fully processed), and the default
policy only allows a termination decision once the queue is provably
drained.  Setting :attr:`TerminationPolicy.unsafe_empty_check` reproduces
the paper's raw behaviour for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TerminationPolicy:
    """Tuning of the dynamic termination protocol.

    Attributes
    ----------
    poll_interval:
        Nominal seconds a worker blocks on the queue per fetch attempt (the
        paper's "configurable threshold duration").
    empty_retries:
        Number of consecutive empty fetches before a worker evaluates the
        termination condition (the paper's "retry a specified number of
        times").
    unsafe_empty_check:
        If True, the termination condition is plain queue emptiness (the
        paper's native dynamic check).  If False (default), the condition is
        the drained-proof ``outstanding == 0``.
    """

    poll_interval: float = 0.02
    empty_retries: int = 3
    unsafe_empty_check: bool = False

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.empty_retries < 1:
            raise ValueError("empty_retries must be >= 1")
