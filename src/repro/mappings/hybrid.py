"""Hybrid Redis mapping (``hybrid_redis``, Section 3.1.2).

The mapping that reconciles dynamic scheduling with stateful applications:

- **Stateful PE instances are pinned to dedicated processes** holding local
  state and a *private queue* (a Redis list consumed with BLPOP), so
  group-by and global groupings are honoured without any global state
  synchronisation.
- **Stateless PEs are scheduled dynamically** by the remaining
  ``N - #stateful-instances`` processes through the same global Redis
  stream as ``dyn_redis`` -- with the extra capability of "depositing their
  outputs into private queues specifically designated for stateful tasks".

Termination is staged: once the global task pool is drained, stateful PEs
are closed in topological order (each instance flushes its aggregate in
``postprocess``, whose emissions may create further downstream work that is
drained before the next stage closes); finally the stateless workers are
released with poison pills.

Crash recovery (``repro.state``)
--------------------------------
Pinned local state dies with its worker, so the mapping optionally runs the
stateful plane in *recoverable* mode (enabled by any of the
``checkpoint_interval`` / ``state_store`` / ``crash_injector`` options):

- deliveries into private queues are **sequence-numbered** (RPUSHSEQ) and
  consumed with BLMOVE into a per-instance *pending log*, so nothing is
  destroyed before its effect is checkpointed;
- every ``checkpoint_interval`` deliveries (and whenever the queue goes
  idle with uncommitted work) the instance snapshots its state -- tagged
  with the last applied sequence number -- into the
  :class:`~repro.state.store.StateStore`, then atomically trims the
  committed entries from the pending log and releases their
  outstanding-work credits;
- a supervisor on the coordinator thread detects silently-dead pinned
  workers, **re-pins** the instance on a fresh worker, restores the latest
  snapshot and replays the pending log (entries at or below the snapshot's
  sequence are deduplicated) before resuming the private queue.

Deliveries between a checkpoint and a crash are therefore applied exactly
once to the instance's state, but their downstream emissions may be sent
twice (at-least-once): the outstanding-work credit of an uncommitted
delivery is only released by the checkpoint that covers it, which also
keeps the drain proof honest across crashes.

Batched transport (``batch_size``)
----------------------------------
Both planes micro-batch with ``batch_size > 1``: stateless tasks travel as
batch envelopes on the global stream (as in ``dyn_redis``), and deliveries
into a private queue are grouped per pinned instance -- one RPUSHSEQ
element carrying up to ``batch_size`` messages under a **single sequence
number**, with its credits added by one ``INCRBY len(batch)``.  The
consumer BLMOVEs one element per round trip (= up to ``batch_size``
tuples), and the recovery machinery operates at batch granularity
throughout: an envelope is one pending-log element (checkpoint trimming is
untouched), its credits are released all-or-nothing by the checkpoint that
covers it, and replay dedup compares the envelope's sequence number --
either the whole envelope predates the snapshot or none of it does, which
is exactly the atomicity the per-element seq provides.  The close marker
is never batched.

The paper evaluates this mapping against ``multi`` on the Sentiment
Analysis workflow (Figure 12, Table 3), where it reaches as low as 32% of
the baseline runtime.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.autoscale.trace import ScalingTrace
from repro.core.concrete import ConcreteWorkflow, Delivery
from repro.core.exceptions import InsufficientProcessesError, MappingError
from repro.mappings.base import (
    EnactmentState,
    Mapping,
    dispatch_emissions,
    instantiate,
    resolve_batch_size,
)
from repro.mappings.redis_tasks import PILL, RedisTaskBoard, reclaim_threshold_ms
from repro.mappings.registry import Capabilities, register_mapping
from repro.mappings.termination import TerminationPolicy
from repro.redisim.client import RedisClient
from repro.redisim.server import RedisServer
from repro.runtime.queues import Batch, as_envelope, batch_items, batch_len, chunked
from repro.state import (
    CrashInjector,
    DEFAULT_CHECKPOINT_INTERVAL,
    InjectedCrash,
    RedisSnapshotStore,
    StateStore,
)


@register_mapping(
    Capabilities(
        stateful=True,
        dynamic=True,
        requires_redis=True,
        recoverable=True,
        batching=True,
        fusion=True,
        min_processes=2,
        description="Stateful-aware hybrid: pinned state + dynamic stateless pool",
    )
)
class HybridRedisMapping(Mapping):
    """Stateful-aware dynamic scheduling over Redis (``hybrid_redis``)."""

    name = "hybrid_redis"
    supports_stateful = True
    requires_redis = True

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        graph = state.graph
        policy: TerminationPolicy = state.options.get("termination", TerminationPolicy())
        server: RedisServer = state.options.get("redis_server") or RedisServer()

        # ------------------------------------------------- recovery options
        checkpoint_interval: Optional[int] = state.options.get("checkpoint_interval")
        state_store: Optional[StateStore] = state.options.get("state_store")
        injector: Optional[CrashInjector] = state.options.get("crash_injector")
        recover_opt = state.options.get("recover")
        recovery: bool = (
            bool(recover_opt)
            if recover_opt is not None
            else (
                checkpoint_interval is not None
                or state_store is not None
                or injector is not None
            )
        )
        if recovery and checkpoint_interval is None:
            checkpoint_interval = DEFAULT_CHECKPOINT_INTERVAL
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise MappingError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        max_respawns: int = state.options.get("max_respawns", 3)
        batch_size = resolve_batch_size(state.options)
        trace = ScalingTrace(metric_name="recovery events") if recovery else None

        def new_client() -> RedisClient:
            return RedisClient(
                server,
                op_latency=state.platform.redis_latency,
                clock=state.clock,
            )

        namespace = f"repro:{graph.name}"
        board = RedisTaskBoard(new_client(), namespace=namespace)
        board.setup()
        own_store = False
        if recovery and state_store is None:
            state_store = RedisSnapshotStore(new_client(), namespace=namespace)
            own_store = True

        def store_for(client: RedisClient) -> StateStore:
            """The run's snapshot store, one connection per worker.

            Only the mapping's *own* default store (which lives on the run's
            Redis deployment) is rebound onto the worker's client; a
            user-supplied store keeps its own connection and deployment --
            rebinding it here would silently divert snapshots onto the
            run's server.
            """
            if own_store:
                return state_store.for_client(client)
            return state_store

        # ---------------------------------------------------- allocation
        stateful_names = {pe.name for pe in graph.stateful_pes()}
        allocation: Dict[str, int] = {}
        for name, pe in graph.pes.items():
            if name in stateful_names:
                allocation[name] = pe.numprocesses if pe.numprocesses else 1
            else:
                allocation[name] = 1
        concrete = ConcreteWorkflow(graph, allocation)
        n_stateful = sum(allocation[name] for name in stateful_names)
        stateless_workers = state.processes - n_stateful
        if stateless_workers < 1:
            raise InsufficientProcessesError(
                f"hybrid_redis needs at least {n_stateful + 1} processes for "
                f"{graph.name!r} ({n_stateful} stateful instances + 1 stateless "
                f"worker); got {state.processes}"
            )
        state.counters.inc("stateful_instances", n_stateful)
        state.counters.inc("stateless_workers", stateless_workers)

        def private_key(pe_name: str, index: int) -> str:
            return f"{namespace}:private:{pe_name}:{index}"

        abort = threading.Event()
        #: Set by the coordinator once the run is drained and pills are out.
        #: With batched fetches (count > 1) one worker can swallow pills
        #: meant for peers; the event is the peers' pill-independent exit.
        shutdown = threading.Event()

        def push_private(target, key: str, message: tuple) -> None:
            """Push one message onto a private queue (client or pipeline).

            The single place that decides plain vs sequence-tagged pushes:
            in recoverable mode every private-queue message -- deliveries,
            root seeds and close markers alike -- must carry a sequence
            number, or the consumer's replay cursor would desynchronize.
            """
            if recovery:
                target.rpush_seq(key, message)
            else:
                target.rpush(key, message)

        # ------------------------------------------------------ dispatching
        def queue_deliveries(pipe, deliveries: List[Delivery]) -> None:
            """Append routed deliveries to a pipeline (one round trip).

            Private queues bypass the global stream entirely; the shared
            outstanding counter still covers them so the drain proof holds
            across both planes.  In recoverable mode private-queue pushes
            are sequence-tagged (RPUSHSEQ) so consumers get a stable replay
            cursor.

            With ``batch_size > 1`` deliveries are grouped: stateless tasks
            into stream-entry envelopes, private-queue messages per pinned
            instance into single RPUSHSEQ elements (one seq per envelope),
            each preceded by one ``INCRBY len(envelope)`` -- credits always
            land before the payload, so the drain proof never observes a
            published-but-uncounted tuple.
            """
            if batch_size <= 1:
                for d in deliveries:
                    pipe.incr(board.counter_key)
                    if d.dst in stateful_names:
                        push_private(
                            pipe, private_key(d.dst, d.dst_index), ("data", d.dst_port, d.data)
                        )
                        state.counters.inc("private_puts")
                    else:
                        pipe.xadd(board.stream_key, {"task": (d.dst, d.dst_port, d.data)})
                return
            stateless_tasks: List[tuple] = []
            private: Dict[str, List[tuple]] = {}
            for d in deliveries:
                if d.dst in stateful_names:
                    private.setdefault(private_key(d.dst, d.dst_index), []).append(
                        ("data", d.dst_port, d.data)
                    )
                else:
                    stateless_tasks.append((d.dst, d.dst_port, d.data))
            board.queue_tasks(pipe, stateless_tasks, batch_size)
            for key, messages in private.items():
                for chunk in chunked(messages, batch_size):
                    pipe.incrby(board.counter_key, len(chunk))
                    push_private(pipe, key, as_envelope(chunk))
                    state.counters.inc("private_puts", len(chunk))

        def route_and_dispatch(
            pe_name: str, index: int, emissions: List[Tuple[str, object]], client: RedisClient
        ) -> None:
            pipe = client.pipeline()
            queue_deliveries(
                pipe, dispatch_emissions(concrete, state.collector, pe_name, index, emissions)
            )
            pipe.execute()

        # ------------------------------------------------------ seed roots
        seed_client = new_client()
        # Run-scoped hygiene before anything is seeded: a reused Redis
        # deployment (shared ``redis_server`` + same graph name) may hold a
        # previous run's private queues, pending logs and snapshots -- e.g.
        # after an aborted run whose dead workers never cleaned up.  Left in
        # place they would be replayed into (and contaminate) this run, and
        # their checkpoint commits would release credits this run's counter
        # never held.
        for name in stateful_names:
            for idx in range(allocation[name]):
                key = private_key(name, idx)
                seed_client.delete(key, f"{key}:pending")
                if recovery:
                    state_store.delete(f"{name}.{idx}")
        rr_counter = 0
        if batch_size > 1:
            # Group seeds like deliveries: round-robin assignment at tuple
            # granularity (identical placement to the unbatched path), then
            # envelope per destination; one pipelined round trip total.
            stateless_seeds: List[tuple] = []
            private_seeds: Dict[str, List[tuple]] = {}
            for root, items in state.provided.items():
                for item in items:
                    if root in stateful_names:
                        index = rr_counter % allocation[root]
                        rr_counter += 1
                        private_seeds.setdefault(private_key(root, index), []).append(
                            ("root", item, None)
                        )
                    else:
                        stateless_seeds.append((root, None, item))
            seed_pipe = seed_client.pipeline()
            board.queue_tasks(seed_pipe, stateless_seeds, batch_size)
            for key, messages in private_seeds.items():
                for chunk in chunked(messages, batch_size):
                    seed_pipe.incrby(board.counter_key, len(chunk))
                    push_private(seed_pipe, key, as_envelope(chunk))
            seed_pipe.execute()
        else:
            for root, items in state.provided.items():
                for item in items:
                    if root in stateful_names:
                        index = rr_counter % allocation[root]
                        rr_counter += 1
                        seed_client.incr(board.counter_key)
                        push_private(seed_client, private_key(root, index), ("root", item, None))
                    else:
                        board.put((root, None, item), client=seed_client)

        # --------------------------------------------------- stateful plane
        #: Live thread per pinned instance; replaced on re-pin.
        threads: Dict[Tuple[str, int], threading.Thread] = {}
        completed: Set[Tuple[str, int]] = set()
        respawns: Dict[Tuple[str, int], int] = {}
        plane_lock = threading.Lock()

        def stateful_worker(pe_name: str, index: int) -> None:
            slot = (pe_name, index)
            worker_id = f"stateful-{pe_name}.{index}"
            client = new_client()
            try:
                instance = instantiate(graph.pe(pe_name), index, allocation[pe_name], state.ctx)
                instance.preprocess()
                if recovery:
                    self._run_recoverable(
                        state, instance, pe_name, index,
                        client=client,
                        key=private_key(pe_name, index),
                        board=board,
                        policy=policy,
                        abort=abort,
                        queue_deliveries=queue_deliveries,
                        concrete=concrete,
                        store=store_for(client),
                        checkpoint_interval=checkpoint_interval,
                        injector=injector,
                        trace=trace,
                    )
                else:
                    self._run_plain(
                        state, instance, pe_name, index,
                        client=client,
                        key=private_key(pe_name, index),
                        board=board,
                        policy=policy,
                        abort=abort,
                        queue_deliveries=queue_deliveries,
                        concrete=concrete,
                        injector=injector,
                    )
                # Flush the aggregate state (top-3 tables, per-state sums...)
                route_and_dispatch(pe_name, index, instance._flush_postprocess(), client)
                with plane_lock:
                    completed.add(slot)
            except InjectedCrash:
                # Simulated process death: no error report, no abort -- the
                # supervisor notices the silent exit and re-pins.
                state.counters.inc("crashes")
                if trace is not None:
                    trace.note(state.clock.now(), "crash", f"{pe_name}.{index}")
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                state.record_error(exc)
                abort.set()
                with plane_lock:
                    completed.add(slot)
            finally:
                state.meter.deactivate(worker_id)

        def spawn(pe_name: str, index: int) -> None:
            thread = threading.Thread(
                target=stateful_worker,
                args=(pe_name, index),
                name=f"hybrid-stateful-{pe_name}.{index}",
                daemon=True,
            )
            with plane_lock:
                threads[(pe_name, index)] = thread
            state.meter.activate(f"stateful-{pe_name}.{index}")
            thread.start()

        def supervise() -> None:
            """Re-pin instances whose workers died without completing.

            Only the coordinator thread calls this, so detection and
            respawn cannot race with each other.
            """
            if not recovery or abort.is_set():
                return
            with plane_lock:
                dead = [
                    slot
                    for slot, thread in threads.items()
                    if not thread.is_alive() and slot not in completed
                ]
            for pe_name, index in dead:
                slot = (pe_name, index)
                attempts = respawns.get(slot, 0)
                if attempts >= max_respawns:
                    state.record_error(
                        MappingError(
                            f"stateful instance {pe_name}.{index} crashed more "
                            f"than {max_respawns} times; giving up"
                        )
                    )
                    abort.set()
                    return
                respawns[slot] = attempts + 1
                state.counters.inc("respawns")
                if trace is not None:
                    trace.note(
                        state.clock.now(),
                        "respawn",
                        f"{pe_name}.{index} attempt {attempts + 1}",
                    )
                spawn(pe_name, index)

        # -------------------------------------------------- stateless plane
        reclaim_idle_ms = reclaim_threshold_ms(state.options, state.clock)

        def stateless_worker(index: int) -> None:
            worker_id = f"stateless-{index}"
            consumer = f"consumer-{index}"
            client = new_client()
            try:
                copies = {
                    name: instantiate(pe, 0, 1, state.ctx)
                    for name, pe in graph.pes.items()
                    if name not in stateful_names
                }
                for pe in copies.values():
                    pe.preprocess()

                def run_entry(entry_id: str, payload) -> None:
                    """Run every task in one stream entry; settle it once.

                    Children from the whole envelope are published and the
                    entry's credits released (conditional XACKDECR, amount
                    = envelope size) in a single pipelined round trip.
                    """
                    tasks = board.entry_tasks(payload)
                    pipe = client.pipeline()
                    try:
                        deliveries: List[Delivery] = []
                        for task in tasks:
                            pe_name, port, item = task
                            inputs = item if port is None else {port: item}
                            emissions = copies[pe_name]._invoke(inputs)
                            state.counters.inc("tasks")
                            deliveries.extend(
                                dispatch_emissions(
                                    concrete, state.collector, pe_name, 0, emissions
                                )
                            )
                        queue_deliveries(pipe, deliveries)
                    finally:
                        pipe.xack_decr(
                            board.stream_key,
                            board.group,
                            entry_id,
                            board.counter_key,
                            len(tasks),
                        )
                        pipe.execute()

                base_block = max(1, int(state.clock.to_real(policy.poll_interval) * 1000))
                empty_streak = 0
                while not abort.is_set() and not shutdown.is_set():
                    # Exponential poll backoff while starved, so idle workers
                    # do not storm the server (and the GIL) at 1 kHz.
                    block_ms = min(base_block * (1 << min(empty_streak, 6)), 64 * base_block)
                    fetched = board.fetch(consumer, client, block_ms=block_ms)
                    if not fetched:
                        empty_streak += 1
                        # Reclaim on the first starved poll past the retry
                        # budget, then every 8th: in recoverable runs the
                        # counter legitimately stays > 0 between stateful
                        # checkpoints, and a per-poll XAUTOCLAIM from every
                        # starved worker would be pure overhead.
                        if (
                            empty_streak >= policy.empty_retries
                            and (empty_streak - policy.empty_retries) % 8 == 0
                            and not board.is_drained(client)
                        ):
                            recovered = board.recover_stale(
                                consumer, client, min_idle_ms=reclaim_idle_ms
                            )
                            for entry_id, payload in recovered:
                                state.counters.inc("reclaimed")
                                run_entry(entry_id, payload)
                            if recovered:
                                empty_streak = 0
                        continue
                    empty_streak = 0
                    # Pills trail real work in stream order; process the
                    # tasks first, ack every fetched pill (a multi-entry
                    # fetch may grab pills meant for peers, who then exit
                    # via the termination condition), then leave.
                    got_pill = False
                    for entry_id, payload in fetched:
                        if payload is PILL:
                            board.ack(entry_id, client)
                            got_pill = True
                            continue
                        run_entry(entry_id, payload)
                    if got_pill:
                        return
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                state.record_error(exc)
                abort.set()
            finally:
                state.meter.deactivate(worker_id)

        # ----------------------------------------------------- run the show
        stateful_slots = [
            (name, idx)
            for name in graph.topological_order()
            if name in stateful_names
            for idx in range(allocation[name])
        ]
        stateless_threads = [
            threading.Thread(
                target=stateless_worker,
                args=(i,),
                name=f"hybrid-stateless-{i}",
                daemon=True,
            )
            for i in range(stateless_workers)
        ]
        # Dedicated workers are active from launch initiation (see
        # dynamic.py for the spawn-stagger rationale).
        for name, idx in stateful_slots:
            state.meter.activate(f"stateful-{name}.{idx}")
        for i in range(len(stateless_threads)):
            state.meter.activate(f"stateless-{i}")
        for name, idx in stateful_slots:
            spawn(name, idx)
        for t in stateless_threads:
            t.start()

        join_timeout = state.options.get("join_timeout", 300.0)
        join_slice = max(0.01, state.clock.to_real(policy.poll_interval))
        coordinator_client = new_client()

        def wait_drained() -> None:
            deadline = state.clock.now() + join_timeout
            while not board.is_drained(coordinator_client):
                supervise()
                if abort.is_set():
                    raise MappingError("hybrid run aborted by worker error")
                if state.clock.now() > deadline:
                    raise MappingError(
                        f"hybrid run did not drain within {join_timeout}s "
                        f"(outstanding={board.outstanding(coordinator_client)})"
                    )
                state.clock.sleep(policy.poll_interval)

        def join_instance(pe_name: str, index: int, deadline: float) -> None:
            """Wait for one pinned instance to close, supervising re-pins."""
            slot = (pe_name, index)
            while True:
                with plane_lock:
                    thread = threads[slot]
                    done = slot in completed
                if done and not thread.is_alive():
                    return
                thread.join(timeout=join_slice)
                supervise()
                if abort.is_set():
                    raise MappingError("hybrid run aborted during staged close")
                if state.clock.now() > deadline:
                    raise MappingError(
                        f"stateful worker {pe_name}.{index} hung at close"
                    )

        try:
            wait_drained()
            # Staged close of the stateful plane in topological order: each
            # stage's postprocess may feed later stages, so drain between.
            for name in graph.topological_order():
                if name not in stateful_names:
                    continue
                for idx in range(allocation[name]):
                    push_private(coordinator_client, private_key(name, idx), ("close",))
                deadline = state.clock.now() + join_timeout
                for idx in range(allocation[name]):
                    join_instance(name, idx, deadline)
                wait_drained()
        except MappingError as exc:
            state.record_error(exc)
            abort.set()
        finally:
            board.put_pills(len(stateless_threads))
            shutdown.set()
            for t in stateless_threads:
                t.join(timeout=join_timeout)
                if t.is_alive():
                    state.record_error(TimeoutError(f"worker {t.name} hung at exit"))
                    abort.set()
                    break
            board.teardown()
        return trace

    # ------------------------------------------------------- consumption
    @staticmethod
    def _invoke_message(instance, message) -> List[Tuple[str, object]]:
        """Run one private-queue message through the instance."""
        if message[0] == "root":
            return instance._invoke(message[1])
        _kind, port, data = message
        return instance._invoke({port: data})

    @staticmethod
    def _is_close(item) -> bool:
        """True for the staged-close marker (never travels inside a batch)."""
        return not isinstance(item, Batch) and item[0] == "close"

    def _invoke_element(
        self, state, instance, pe_name, index, item, *,
        concrete, injector, iid,
    ) -> List[Delivery]:
        """Run every message of one private-queue element (bare or batch).

        Returns the routed deliveries of the whole element so the caller
        can publish them (and settle the element's credits) in a single
        pipelined round trip.  Crash-injection points stay *per message* --
        mid-batch crashes are exactly the boundary case recovery must
        survive -- while the post-dispatch point belongs to the caller.
        """
        deliveries: List[Delivery] = []
        for message in batch_items(item):
            if injector is not None:
                injector.record_invocation(iid)
            emissions = self._invoke_message(instance, message)
            state.counters.inc("stateful_tasks")
            if injector is not None:
                injector.maybe_crash(iid, "post-process")
            deliveries.extend(
                dispatch_emissions(concrete, state.collector, pe_name, index, emissions)
            )
        return deliveries

    def _run_plain(
        self, state, instance, pe_name, index, *,
        client, key, board, policy, abort, queue_deliveries, concrete,
        injector=None,
    ) -> None:
        """Non-recoverable consumption: destructive BLPOP, per-element decr.

        ``injector`` is honoured here too (with ``recover=False``) so the
        pre-recovery failure mode -- a dead pinned worker stalling the run
        until the join timeout -- stays demonstrable.
        """
        iid = instance.instance_id
        timeout = max(0.005, state.clock.to_real(policy.poll_interval))
        while not abort.is_set():
            hit = client.blpop(key, timeout=timeout)
            if hit is None:
                continue
            _key, item = hit
            if self._is_close(item):
                return
            deliveries = self._invoke_element(
                state, instance, pe_name, index, item,
                concrete=concrete, injector=injector, iid=iid,
            )
            # One pipelined round trip: children + completion.  The element
            # carries one credit per tuple it batched; release them all.
            pipe = client.pipeline()
            queue_deliveries(pipe, deliveries)
            pipe.decrby(board.counter_key, batch_len(item))
            pipe.execute()
            if injector is not None:
                injector.maybe_crash(iid, "post-dispatch")

    def _run_recoverable(
        self, state, instance, pe_name, index, *,
        client, key, board, policy, abort, queue_deliveries, concrete,
        store, checkpoint_interval, injector, trace,
    ) -> None:
        """Checkpointed consumption: BLMOVE into a pending log, sequence
        dedup, interval/idle checkpoints that release credits in bulk.

        The outstanding-work credit of a delivery is *not* released when it
        is processed but when a checkpoint covers it -- so a crash can never
        lose a credited delivery, and the coordinator's drain proof remains
        exact across crashes and re-pins.

        Batched elements keep every invariant at batch granularity: one
        pending-log element = one sequence number = ``len(batch)`` credits,
        applied/deduplicated/released as a unit.  The checkpoint interval
        counts *tuples* (credits), so ``checkpoint_interval=N`` still bounds
        the replay window to ~N deliveries regardless of envelope size; an
        envelope is never split across a checkpoint -- the interval firing
        mid-batch checkpoints right after the element completes.
        """
        iid = instance.instance_id
        pending_key = f"{key}:pending"
        timeout = max(0.005, state.clock.to_real(policy.poll_interval))
        last_seq = 0
        uncommitted_entries = 0  # pending-log elements not yet trimmed
        uncommitted_credits = 0  # outstanding-counter credits (tuples) not yet released

        snap = store.load(iid)
        if snap is not None:
            instance.set_state(snap.state)
            last_seq = snap.seq
            state.counters.inc("restores")
            if trace is not None:
                trace.note(state.clock.now(), "restore", f"{iid} seq={snap.seq}")

        def checkpoint() -> None:
            nonlocal uncommitted_entries, uncommitted_credits
            if uncommitted_entries == 0:
                return
            # Snapshot first, then trim+release atomically: a crash between
            # the two leaves entries <= last_seq in the pending log, which
            # replay skips (dedup) but still counts for the next trim.
            if not store.save(iid, last_seq, instance.get_state()):
                # A newer snapshot exists: this writer is stale (the
                # instance was re-pinned and advanced elsewhere).  The
                # pending log and credits now belong to the live owner --
                # touch nothing.
                return
            pipe = client.pipeline()
            pipe.ltrim(pending_key, uncommitted_entries, -1)
            if uncommitted_credits:
                pipe.decrby(board.counter_key, uncommitted_credits)
            pipe.execute()
            uncommitted_entries = 0
            uncommitted_credits = 0
            state.counters.inc("checkpoints")

        def process(seq: int, item) -> None:
            nonlocal last_seq, uncommitted_entries, uncommitted_credits
            uncommitted_entries += 1
            uncommitted_credits += batch_len(item)
            if seq <= last_seq:
                # Already reflected in the restored snapshot: skip the state
                # mutation, but keep the element in this commit window so
                # its credits are released by the next checkpoint.  Dedup is
                # exact at batch granularity because the element was applied
                # atomically under one seq before the snapshot covered it.
                state.counters.inc("deduplicated", batch_len(item))
                return
            deliveries = self._invoke_element(
                state, instance, pe_name, index, item,
                concrete=concrete, injector=injector, iid=iid,
            )
            pipe = client.pipeline()
            queue_deliveries(pipe, deliveries)
            pipe.execute()
            last_seq = seq
            if injector is not None:
                injector.maybe_crash(iid, "post-dispatch")

        # Replay what a crashed predecessor left behind: every entry still
        # in the pending log holds an unreleased credit, whether or not its
        # state effect survived in the snapshot.
        replayed_close = False
        backlog = client.lrange_seq(pending_key)
        if backlog:
            state.counters.inc("replayed", sum(batch_len(item) for _s, item in backlog))
        for seq, item in backlog:
            if self._is_close(item):
                replayed_close = True
                break
            process(seq, item)
        if backlog:
            checkpoint()

        while not replayed_close and not abort.is_set():
            hit = client.blmove_seq(key, pending_key, timeout=timeout)
            if hit is None:
                # Idle: commit stragglers so the drain proof can complete
                # even when the stream ends mid-interval.
                checkpoint()
                continue
            seq, item = hit
            if self._is_close(item):
                break
            process(seq, item)
            if uncommitted_credits >= checkpoint_interval:
                checkpoint()
        checkpoint()
        # The close marker (which carries no credit) is all that can remain.
        client.delete(pending_key)
