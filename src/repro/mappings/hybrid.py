"""Hybrid Redis mapping (``hybrid_redis``, Section 3.1.2).

The mapping that reconciles dynamic scheduling with stateful applications:

- **Stateful PE instances are pinned to dedicated processes** holding local
  state and a *private queue* (a Redis list consumed with BLPOP), so
  group-by and global groupings are honoured without any global state
  synchronisation.
- **Stateless PEs are scheduled dynamically** by the remaining
  ``N - #stateful-instances`` processes through the same global Redis
  stream as ``dyn_redis`` -- with the extra capability of "depositing their
  outputs into private queues specifically designated for stateful tasks".

Termination is staged: once the global task pool is drained, stateful PEs
are closed in topological order (each instance flushes its aggregate in
``postprocess``, whose emissions may create further downstream work that is
drained before the next stage closes); finally the stateless workers are
released with poison pills.

The paper evaluates this mapping against ``multi`` on the Sentiment
Analysis workflow (Figure 12, Table 3), where it reaches as low as 32% of
the baseline runtime.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.autoscale.trace import ScalingTrace
from repro.core.concrete import ConcreteWorkflow, Delivery
from repro.core.exceptions import InsufficientProcessesError, MappingError
from repro.mappings.base import (
    EnactmentState,
    Mapping,
    dispatch_emissions,
    instantiate,
)
from repro.mappings.redis_tasks import PILL, RedisTaskBoard
from repro.mappings.registry import Capabilities, register_mapping
from repro.mappings.termination import TerminationPolicy
from repro.redisim.client import RedisClient
from repro.redisim.server import RedisServer


@register_mapping(
    Capabilities(
        stateful=True,
        dynamic=True,
        requires_redis=True,
        min_processes=2,
        description="Stateful-aware hybrid: pinned state + dynamic stateless pool",
    )
)
class HybridRedisMapping(Mapping):
    """Stateful-aware dynamic scheduling over Redis (``hybrid_redis``)."""

    name = "hybrid_redis"
    supports_stateful = True
    requires_redis = True

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        graph = state.graph
        policy: TerminationPolicy = state.options.get("termination", TerminationPolicy())
        server: RedisServer = state.options.get("redis_server") or RedisServer()

        def new_client() -> RedisClient:
            return RedisClient(
                server,
                op_latency=state.platform.redis_latency,
                clock=state.clock,
            )

        namespace = f"repro:{graph.name}"
        board = RedisTaskBoard(new_client(), namespace=namespace)
        board.setup()

        # ---------------------------------------------------- allocation
        stateful_names = {pe.name for pe in graph.stateful_pes()}
        allocation: Dict[str, int] = {}
        for name, pe in graph.pes.items():
            if name in stateful_names:
                allocation[name] = pe.numprocesses if pe.numprocesses else 1
            else:
                allocation[name] = 1
        concrete = ConcreteWorkflow(graph, allocation)
        n_stateful = sum(allocation[name] for name in stateful_names)
        stateless_workers = state.processes - n_stateful
        if stateless_workers < 1:
            raise InsufficientProcessesError(
                f"hybrid_redis needs at least {n_stateful + 1} processes for "
                f"{graph.name!r} ({n_stateful} stateful instances + 1 stateless "
                f"worker); got {state.processes}"
            )
        state.counters.inc("stateful_instances", n_stateful)
        state.counters.inc("stateless_workers", stateless_workers)

        def private_key(pe_name: str, index: int) -> str:
            return f"{namespace}:private:{pe_name}:{index}"

        abort = threading.Event()

        # ------------------------------------------------------ dispatching
        def queue_deliveries(pipe, deliveries: List[Delivery]) -> None:
            """Append routed deliveries to a pipeline (one round trip).

            Private queues bypass the global stream entirely; the shared
            outstanding counter still covers them so the drain proof holds
            across both planes.
            """
            for d in deliveries:
                pipe.incr(board.counter_key)
                if d.dst in stateful_names:
                    pipe.rpush(private_key(d.dst, d.dst_index), ("data", d.dst_port, d.data))
                    state.counters.inc("private_puts")
                else:
                    pipe.xadd(board.stream_key, {"task": (d.dst, d.dst_port, d.data)})

        def route_and_dispatch(
            pe_name: str, index: int, emissions: List[Tuple[str, object]], client: RedisClient
        ) -> None:
            pipe = client.pipeline()
            queue_deliveries(
                pipe, dispatch_emissions(concrete, state.collector, pe_name, index, emissions)
            )
            pipe.execute()

        # ------------------------------------------------------ seed roots
        seed_client = new_client()
        rr_counter = 0
        for root, items in state.provided.items():
            for item in items:
                if root in stateful_names:
                    index = rr_counter % allocation[root]
                    rr_counter += 1
                    seed_client.incr(board.counter_key)
                    seed_client.rpush(private_key(root, index), ("root", item, None))
                else:
                    board.put((root, None, item), client=seed_client)

        # --------------------------------------------------- stateful plane
        def stateful_worker(pe_name: str, index: int) -> None:
            worker_id = f"stateful-{pe_name}.{index}"
            client = new_client()
            try:
                instance = instantiate(graph.pe(pe_name), index, allocation[pe_name], state.ctx)
                instance.preprocess()
                key = private_key(pe_name, index)
                timeout = max(0.005, state.clock.to_real(policy.poll_interval))
                while not abort.is_set():
                    hit = client.blpop(key, timeout=timeout)
                    if hit is None:
                        continue
                    _key, message = hit
                    kind = message[0]
                    if kind == "close":
                        break
                    if kind == "root":
                        emissions = instance._invoke(message[1])
                    else:
                        _kind, port, data = message
                        emissions = instance._invoke({port: data})
                    state.counters.inc("stateful_tasks")
                    # One pipelined round trip: children + completion.
                    pipe = client.pipeline()
                    queue_deliveries(
                        pipe,
                        dispatch_emissions(
                            concrete, state.collector, pe_name, index, emissions
                        ),
                    )
                    pipe.decr(board.counter_key)
                    pipe.execute()
                # Flush the aggregate state (top-3 tables, per-state sums...)
                route_and_dispatch(pe_name, index, instance._flush_postprocess(), client)
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                state.record_error(exc)
                abort.set()
            finally:
                state.meter.deactivate(worker_id)

        # -------------------------------------------------- stateless plane
        def stateless_worker(index: int) -> None:
            worker_id = f"stateless-{index}"
            consumer = f"consumer-{index}"
            client = new_client()
            try:
                copies = {
                    name: instantiate(pe, 0, 1, state.ctx)
                    for name, pe in graph.pes.items()
                    if name not in stateful_names
                }
                for pe in copies.values():
                    pe.preprocess()
                base_block = max(1, int(state.clock.to_real(policy.poll_interval) * 1000))
                empty_streak = 0
                while not abort.is_set():
                    # Exponential poll backoff while starved, so idle workers
                    # do not storm the server (and the GIL) at 1 kHz.
                    block_ms = min(base_block * (1 << min(empty_streak, 6)), 64 * base_block)
                    fetched = board.fetch(consumer, client, block_ms=block_ms)
                    if not fetched:
                        empty_streak += 1
                        continue
                    empty_streak = 0
                    for entry_id, task in fetched:
                        if task is PILL:
                            board.ack(entry_id, client)
                            return
                        pe_name, port, payload = task
                        inputs = payload if port is None else {port: payload}
                        pipe = client.pipeline()
                        try:
                            emissions = copies[pe_name]._invoke(inputs)
                            state.counters.inc("tasks")
                            queue_deliveries(
                                pipe,
                                dispatch_emissions(
                                    concrete, state.collector, pe_name, 0, emissions
                                ),
                            )
                        finally:
                            pipe.xack(board.stream_key, board.group, entry_id)
                            pipe.decr(board.counter_key)
                            pipe.execute()
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                state.record_error(exc)
                abort.set()
            finally:
                state.meter.deactivate(worker_id)

        # ----------------------------------------------------- run the show
        stateful_threads: Dict[str, List[threading.Thread]] = {}
        for name in graph.topological_order():
            if name not in stateful_names:
                continue
            threads = []
            for idx in range(allocation[name]):
                t = threading.Thread(
                    target=stateful_worker,
                    args=(name, idx),
                    name=f"hybrid-stateful-{name}.{idx}",
                    daemon=True,
                )
                threads.append(t)
            stateful_threads[name] = threads
        stateless_threads = [
            threading.Thread(
                target=stateless_worker,
                args=(i,),
                name=f"hybrid-stateless-{i}",
                daemon=True,
            )
            for i in range(stateless_workers)
        ]
        # Dedicated workers are active from launch initiation (see
        # dynamic.py for the spawn-stagger rationale).
        for name, threads in stateful_threads.items():
            for idx in range(len(threads)):
                state.meter.activate(f"stateful-{name}.{idx}")
        for i in range(len(stateless_threads)):
            state.meter.activate(f"stateless-{i}")
        for threads in stateful_threads.values():
            for t in threads:
                t.start()
        for t in stateless_threads:
            t.start()

        join_timeout = state.options.get("join_timeout", 300.0)
        coordinator_client = new_client()

        def wait_drained() -> None:
            deadline = state.clock.now() + join_timeout
            while not board.is_drained(coordinator_client):
                if abort.is_set():
                    raise MappingError("hybrid run aborted by worker error")
                if state.clock.now() > deadline:
                    raise MappingError(
                        f"hybrid run did not drain within {join_timeout}s "
                        f"(outstanding={board.outstanding(coordinator_client)})"
                    )
                state.clock.sleep(policy.poll_interval)

        try:
            wait_drained()
            # Staged close of the stateful plane in topological order: each
            # stage's postprocess may feed later stages, so drain between.
            for name in graph.topological_order():
                if name not in stateful_names:
                    continue
                for idx in range(allocation[name]):
                    coordinator_client.rpush(private_key(name, idx), ("close",))
                for t in stateful_threads[name]:
                    t.join(timeout=join_timeout)
                    if t.is_alive():
                        raise MappingError(f"stateful worker {t.name} hung at close")
                wait_drained()
        except MappingError as exc:
            state.record_error(exc)
            abort.set()
        finally:
            board.put_pills(len(stateless_threads))
            for t in stateless_threads:
                t.join(timeout=join_timeout)
                if t.is_alive():
                    state.record_error(TimeoutError(f"worker {t.name} hung at exit"))
                    abort.set()
                    break
            board.teardown()
        return None
