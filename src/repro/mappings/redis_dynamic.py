"""Dynamic Redis mapping (``dyn_redis``, Section 3.1.1).

"The multiprocessing queue is replaced with the powerful Redis stream":
identical scheduling structure to :mod:`repro.mappings.dynamic`, but the
global queue is a Redis Stream consumed through a consumer group, tasks are
acknowledged with XACK, and the outstanding counter lives in a Redis
string.  Each worker owns its own client connection; the per-command
latency of the platform profile models the client/server round trip that
makes Redis mappings heavier than their multiprocessing twins
(Section 5.6).

With ``batch_size > 1`` the transport is micro-batched end-to-end: root
seeds and children are published as batch envelopes (one ``XADD`` + one
``INCRBY`` per up-to-``batch_size`` tasks), and workers settle each
fetched envelope with a single conditional ``XACKDECR
amount=len(envelope)`` -- cutting the per-tuple command count (the
round-trip handicap above) by the batch factor while keeping the
outstanding-counter drain proof exact at batch granularity.  Fetches stay
one *entry* per poll: an entry already carries up to ``batch_size``
tuples, and pulling several envelopes at once would hand one worker a
quadratic slice of the backlog and collapse load balancing exactly when
work is scarce.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.autoscale.trace import ScalingTrace
from repro.core.concrete import ConcreteWorkflow
from repro.core.pe import GenericPE
from repro.mappings.base import (
    EnactmentState,
    Mapping,
    dispatch_emissions,
    instantiate,
    resolve_batch_size,
)
from repro.mappings.redis_tasks import PILL, RedisTaskBoard, reclaim_threshold_ms
from repro.mappings.registry import Capabilities, register_mapping
from repro.mappings.termination import TerminationPolicy
from repro.redisim.client import RedisClient
from repro.redisim.server import RedisServer


class RedisWorkforce:
    """Shared mechanics of the Redis-backed dynamic mappings."""

    def __init__(self, state: EnactmentState, policy: TerminationPolicy) -> None:
        self.state = state
        self.policy = policy
        self.server: RedisServer = state.options.get("redis_server") or RedisServer()
        #: Transport granularity: tasks per stream entry / entries per poll.
        self.batch_size: int = resolve_batch_size(state.options)
        #: How long a pending entry must sit unacknowledged before a starved
        #: peer adopts it (XAUTOCLAIM); see :func:`reclaim_threshold_ms`.
        self.reclaim_idle_ms: float = reclaim_threshold_ms(state.options, state.clock)
        self.board = RedisTaskBoard(
            self._new_client(), namespace=f"repro:{state.graph.name}"
        )
        self.board.setup()
        self.concrete = ConcreteWorkflow.single_instance(state.graph)
        self._copies: Dict[str, Dict[str, GenericPE]] = {}
        self._copies_lock = threading.Lock()
        self._pills_sent = threading.Event()

    def _new_client(self) -> RedisClient:
        return RedisClient(
            self.server,
            op_latency=self.state.platform.redis_latency,
            clock=self.state.clock,
        )

    def client_for_worker(self) -> RedisClient:
        return self._new_client()

    def seed_roots(self) -> None:
        if self.batch_size > 1:
            # One pipelined publication, envelopes of up to batch_size.
            tasks = [
                (root, None, item)
                for root, items in self.state.provided.items()
                for item in items
            ]
            self.board.put_many(tasks, batch_size=self.batch_size)
        else:
            for root, items in self.state.provided.items():
                for item in items:
                    self.board.put((root, None, item))
        self.state.counters.inc("seed_tasks", self.board.outstanding())

    def graph_copy(self, worker_key: str) -> Dict[str, GenericPE]:
        with self._copies_lock:
            copies = self._copies.get(worker_key)
        if copies is None:
            copies = {
                name: instantiate(pe, 0, 1, self.state.ctx)
                for name, pe in self.state.graph.pes.items()
            }
            for pe in copies.values():
                pe.preprocess()
            with self._copies_lock:
                self._copies[worker_key] = copies
            self.state.counters.inc("graph_copies")
        return copies

    def process_entry(
        self,
        copies: Dict[str, GenericPE],
        entry_id: str,
        payload: object,
        client: RedisClient,
    ) -> int:
        """Run every task carried by one stream entry; returns the count.

        The batch-aware hot path: an entry may be a single task or a batch
        envelope.  All tasks are executed without re-entering the fetch/ack
        machinery per tuple; their children are gathered and the entry is
        settled once -- one pipelined round trip publishing the children in
        envelopes and releasing the entry's credits with a conditional
        ``XACKDECR amount=len(entry)``.
        """
        tasks = self.board.entry_tasks(payload)
        children = []
        try:
            for task in tasks:
                pe_name, port, item = task
                inputs = item if port is None else {port: item}
                emissions = copies[pe_name]._invoke(inputs)
                self.state.counters.inc("tasks")
                children.extend(
                    (d.dst, d.dst_port, d.data)
                    for d in dispatch_emissions(
                        self.concrete, self.state.collector, pe_name, 0, emissions
                    )
                )
        finally:
            # One pipelined round trip: publish children, ack, complete.
            self.board.finish_entry(
                entry_id, len(tasks), children, client, batch_size=self.batch_size
            )
        return len(tasks)

    def is_terminated(self) -> bool:
        if self.policy.unsafe_empty_check:
            return self.board.backlog() == 0
        return self.board.is_drained()

    def broadcast_pills(self, count: int) -> None:
        if not self._pills_sent.is_set():
            self._pills_sent.set()
            self.board.put_pills(count)
            self.state.counters.inc("pills", count)

    def reclaim_stale(
        self, copies: Dict[str, GenericPE], consumer: str, client: RedisClient
    ) -> int:
        """Adopt and run tasks stuck with dead consumers (the recovery path).

        A consumer that dies between XREADGROUP and XACK leaves its entries
        in the PEL, where no ``>`` read will ever see them again -- without
        reclaim the outstanding counter never drains and the run hangs.
        Starved workers call this once the queue looks empty but work is
        still outstanding.  Returns the number of tasks recovered.
        """
        recovered = self.board.recover_stale(
            consumer, client, min_idle_ms=self.reclaim_idle_ms
        )
        tasks = 0
        for entry_id, payload in recovered:
            self.state.counters.inc("reclaimed")
            tasks += self.process_entry(copies, entry_id, payload, client)
        return tasks

    def worker_loop(self, worker_key: str, consumer: str, total_workers: int) -> None:
        """Dedicated-worker loop (dyn_redis): run until termination."""
        copies = self.graph_copy(worker_key)
        client = self.client_for_worker()
        base_block = max(1, int(self.state.clock.to_real(self.policy.poll_interval) * 1000))
        empty_streak = 0
        while True:
            # Exponential backoff while starved: idle consumers polling at
            # 1 kHz would contend on the server lock and the GIL.
            block_ms = min(base_block * (1 << min(empty_streak, 5)), 32 * base_block)
            fetched = self.board.fetch(consumer, client, block_ms=block_ms)
            if not fetched:
                empty_streak += 1
                self.state.counters.inc("empty_polls")
                if empty_streak >= self.policy.empty_retries:
                    if self.is_terminated():
                        self.broadcast_pills(total_workers)
                        return
                    # Starved but not drained: the missing work may be
                    # pending under a dead consumer.  Attempt reclaim on
                    # the first starved poll past the retry budget, then
                    # every 8th -- not per poll, which would add one
                    # XAUTOCLAIM round trip per interval per worker for
                    # the whole starved tail of a run.
                    if (empty_streak - self.policy.empty_retries) % 8 == 0 and (
                        self.reclaim_stale(copies, consumer, client)
                    ):
                        empty_streak = 0
                continue
            empty_streak = 0
            # Pills always trail real work in stream order (they are only
            # broadcast once the board drained), so process tasks first and
            # exit on the pill.  A multi-entry fetch may pull pills meant
            # for peers into our PEL; ack them all -- the peers still
            # terminate through the outstanding==0 condition.
            got_pill = False
            for entry_id, payload in fetched:
                if payload is PILL:
                    self.board.ack(entry_id, client)
                    got_pill = True
                    continue
                self.process_entry(copies, entry_id, payload, client)
            if got_pill:
                return

    def drain_session(self, worker_key: str, consumer: str, chunk: int) -> int:
        """Auto-scaled session: process up to ``chunk`` tasks, stop on empty.

        ``chunk`` is a soft cap at batch granularity: a session never
        splits a fetched envelope, so it may overshoot by at most one
        fetch's worth of tasks.
        """
        copies = self.graph_copy(worker_key)
        client = self.client_for_worker()
        block_ms = max(1, int(self.state.clock.to_real(self.policy.poll_interval) * 1000))
        processed = 0
        while processed < chunk:
            fetched = self.board.fetch(consumer, client, block_ms=block_ms)
            if not fetched:
                if not self.is_terminated():
                    processed += self.reclaim_stale(copies, consumer, client)
                break
            got_pill = False
            for entry_id, payload in fetched:
                if payload is PILL:
                    self.board.ack(entry_id, client)
                    got_pill = True
                    continue
                processed += self.process_entry(copies, entry_id, payload, client)
            if got_pill:
                return processed
        return processed

    def teardown(self) -> None:
        self.board.teardown()


@register_mapping(
    Capabilities(
        stateful=False,
        dynamic=True,
        requires_redis=True,
        recoverable=True,
        batching=True,
        fusion=True,
        description="Dynamic scheduling on a Redis Stream consumer group",
    )
)
class DynRedisMapping(Mapping):
    """Dynamic scheduling over a Redis Stream consumer group (``dyn_redis``)."""

    name = "dyn_redis"
    supports_stateful = False
    requires_redis = True

    def _enact(self, state: EnactmentState) -> Optional[ScalingTrace]:
        policy = state.options.get("termination", TerminationPolicy())
        workforce = RedisWorkforce(state, policy)
        workforce.seed_roots()

        def run_worker(index: int) -> None:
            worker_id = f"dynredis-{index}"
            try:
                workforce.worker_loop(worker_id, f"consumer-{index}", state.processes)
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                state.record_error(exc)
                workforce.broadcast_pills(state.processes)
            finally:
                state.meter.deactivate(worker_id)

        threads = [
            threading.Thread(
                target=run_worker, args=(i,), name=f"dynredis-{i}", daemon=True
            )
            for i in range(state.processes)
        ]
        # Active from launch initiation (see dynamic.py for the rationale).
        for index in range(len(threads)):
            state.meter.activate(f"dynredis-{index}")
        for thread in threads:
            thread.start()
        timeout = state.options.get("join_timeout", 300.0)
        for thread in threads:
            thread.join(timeout=timeout)
            if thread.is_alive():
                state.record_error(
                    TimeoutError(f"worker {thread.name} did not finish in {timeout}s")
                )
                break
        workforce.teardown()
        return None
