"""Processing elements of the Internal Extinction of Galaxies workflow.

Costs are expressed in nominal seconds and drawn from the behaviour of the
original dispel4py example: the VO query dominates (network IO), the
filter/compute stages are light CPU.  The *heavy* variant adds random
``beta(2, 5)`` sleeps (0..1 nominal seconds) to ``getVO Table`` and
``filter Columns``, exactly where the paper added them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.core.pe import IterativePE
from repro.workflows.astro.votable import VOTableService, catalog_coordinates


class ReadRaDec(IterativePE):
    """Stream galaxy coordinates from the (synthetic) input catalog.

    Driven with iteration indices; emits one ``{id, ra, dec}`` record per
    input.
    """

    def __init__(self, name: str = "readRaDec", read_cost: float = 0.002) -> None:
        super().__init__(name)
        self.read_cost = read_cost

    def _process(self, data: Any) -> Dict[str, float]:
        index = int(data)
        self.compute(self.read_cost)
        return catalog_coordinates(index)


class GetVOTable(IterativePE):
    """Download the galaxy's VOTable from the VO service (simulated).

    Parameters
    ----------
    service:
        Synthetic VO service (one per PE; deep-copied per instance).
    query_latency:
        Nominal IO wait per query (network round trip + transfer).
    parse_cost:
        Nominal CPU cost of parsing the returned table.
    heavy:
        Inject a ``beta(2, 5)``-distributed extra sleep of up to
        ``heavy_max_sleep`` nominal seconds (the paper's "heavy" knob).
    """

    def __init__(
        self,
        name: str = "getVOTable",
        service: Optional[VOTableService] = None,
        query_latency: float = 0.12,
        parse_cost: float = 0.02,
        heavy: bool = False,
        heavy_max_sleep: float = 1.0,
    ) -> None:
        super().__init__(name)
        self.service = service if service is not None else VOTableService()
        self.query_latency = query_latency
        self.parse_cost = parse_cost
        self.heavy = heavy
        self.heavy_max_sleep = heavy_max_sleep

    def _process(self, data: Dict[str, float]) -> Dict[str, Any]:
        self.io_wait(self.query_latency)
        if self.heavy:
            self.io_wait(float(self.rng.beta(2, 5)) * self.heavy_max_sleep)
        table = self.service.query(data["ra"], data["dec"])
        self.compute(self.parse_cost)
        return {"id": data["id"], "table": table}


class FilterColumns(IterativePE):
    """Project the VOTable down to the columns the computation needs."""

    #: Columns kept for the internal-extinction computation.
    KEEP = ("MType", "logr25")

    def __init__(
        self,
        name: str = "filterColumns",
        filter_cost: float = 0.03,
        heavy: bool = False,
        heavy_max_sleep: float = 1.0,
    ) -> None:
        super().__init__(name)
        self.filter_cost = filter_cost
        self.heavy = heavy
        self.heavy_max_sleep = heavy_max_sleep

    def _process(self, data: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.filter_cost)
        if self.heavy:
            self.io_wait(float(self.rng.beta(2, 5)) * self.heavy_max_sleep)
        table = data["table"]
        missing = [c for c in self.KEEP if c not in table]
        if missing:
            raise KeyError(f"VOTable for galaxy {data['id']} lacks columns {missing}")
        filtered = {column: np.asarray(table[column]) for column in self.KEEP}
        return {"id": data["id"], "table": filtered}


def internal_extinction(mtype: np.ndarray, logr25: np.ndarray) -> np.ndarray:
    """Vectorized internal-extinction computation.

    Follows the classic HyperLEDA-style correction used by the original
    dispel4py astrophysics example: the B-band internal extinction of a
    spiral galaxy is ``A_int = C(T) * log10(r25)``, with the coefficient
    ``C`` depending on the morphological T-type, and ellipticals/lenticular
    types (T < 1) taking no correction.
    """
    mtype = np.asarray(mtype, dtype=np.float64)
    logr25 = np.asarray(logr25, dtype=np.float64)
    if mtype.shape != logr25.shape:
        raise ValueError("MType and logr25 must have identical shapes")
    coefficient = np.select(
        [mtype < 1, mtype <= 3, mtype <= 5, mtype <= 7, mtype <= 10],
        [0.0, 1.58, 1.33, 1.10, 0.92],
        default=0.0,
    )
    return coefficient * logr25


class InternalExtinction(IterativePE):
    """Compute the per-source internal extinction and its galaxy mean."""

    def __init__(self, name: str = "internalExtinction", compute_cost: float = 0.02) -> None:
        super().__init__(name)
        self.compute_cost = compute_cost

    def _process(self, data: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.compute_cost)
        table = data["table"]
        extinction = internal_extinction(table["MType"], table["logr25"])
        return {
            "id": data["id"],
            "extinction": extinction,
            "mean_extinction": float(extinction.mean()),
        }
