"""Factory for the Internal Extinction of Galaxies workflow."""

from __future__ import annotations

from typing import List, Tuple

from repro.core.graph import WorkflowGraph
from repro.workflows.astro.pes import (
    FilterColumns,
    GetVOTable,
    InternalExtinction,
    ReadRaDec,
)

#: Galaxies per 1X workload unit (Section 4.1: "For a standard workload
#: (denoted as 1X), it reads data for 100 galaxies").
GALAXIES_PER_X = 100


def build_internal_extinction_workflow(
    scale: int = 1,
    heavy: bool = False,
    query_latency: float = 0.12,
) -> Tuple[WorkflowGraph, List[int]]:
    """Build the 4-PE galaxy workflow and its input stream.

    Parameters
    ----------
    scale:
        Workload multiplier: 1 -> 100 galaxies, 3 -> 300, 5 -> 500,
        10 -> 1000 (the paper's 1X/3X/5X/10X).
    heavy:
        Enable the paper's "heavy" variant: ``beta(2, 5)`` random sleeps
        (0..1 nominal seconds) inside ``getVO Table`` and
        ``filter Columns``.
    query_latency:
        Nominal VO-query IO latency per galaxy.

    Returns
    -------
    (graph, inputs):
        The workflow graph and the iteration-index input list to pass to
        :func:`repro.run`.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    chain = (
        ReadRaDec()
        >> GetVOTable(query_latency=query_latency, heavy=heavy)
        >> FilterColumns(heavy=heavy)
        >> InternalExtinction()
    )
    graph = WorkflowGraph.from_chain(
        chain, name=f"galaxy_extinction_{scale}x{'_heavy' if heavy else ''}"
    )
    inputs = list(range(scale * GALAXIES_PER_X))
    return graph, inputs
