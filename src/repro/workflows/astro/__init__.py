"""Internal Extinction of Galaxies workflow (Section 4.1).

Four stateless PEs::

    read RaDec -> getVO Table -> filter Columns -> internal Extinction

``read RaDec`` streams galaxy sky coordinates, ``getVO Table`` queries a
(simulated) Virtual Observatory service for the galaxy's VOTable,
``filter Columns`` projects the columns the computation needs, and
``internal Extinction`` computes the dust-extinction metric.

Workload knobs follow the paper exactly: the stream scales 1X = 100
galaxies up to 10X = 1000, and the *heavy* variant injects random sleeps
drawn from a ``beta(2, 5)`` distribution (0..1 nominal seconds) into the
``getVO Table`` and ``filter Columns`` PEs.
"""

from repro.workflows.astro.pes import (
    FilterColumns,
    GetVOTable,
    InternalExtinction,
    ReadRaDec,
)
from repro.workflows.astro.votable import VOTableService
from repro.workflows.astro.workflow import build_internal_extinction_workflow

__all__ = [
    "FilterColumns",
    "GetVOTable",
    "InternalExtinction",
    "ReadRaDec",
    "VOTableService",
    "build_internal_extinction_workflow",
]
