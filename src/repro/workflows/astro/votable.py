"""Simulated Virtual Observatory table service.

The paper's workflow downloads VOTables for each galaxy from a VO service
over the network.  Offline substitution (see DESIGN.md): a deterministic
synthetic catalog.  Given sky coordinates, the service synthesizes a small
photometry table whose contents are a pure function of the coordinates, so
repeated runs (and different mappings) observe identical data.

The columns mirror what the internal-extinction computation needs from the
real HyperLEDA-style tables:

- ``MType`` -- numeric morphological type code (de Vaucouleurs T-type,
  -5..10),
- ``logr25`` -- decimal log of the apparent axis ratio ``r25 = a/b``,
- ``BT`` / ``VT`` -- apparent magnitudes (carried along, filtered out by
  ``filter Columns``),
- ``e_logr25`` -- measurement error (likewise filtered out).

Query latency is modelled as an IO wait configured by the caller; the
*heavy* workload variant layers extra random sleeps on top (in the PE, not
here, matching where the paper injected them).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: Columns every synthetic VOTable carries, in order.
VOTABLE_COLUMNS = ("MType", "logr25", "BT", "VT", "e_logr25")


def catalog_coordinates(index: int) -> Dict[str, float]:
    """Deterministic (ra, dec) for catalog entry ``index``.

    A low-discrepancy golden-angle spiral over the sphere: well spread,
    reproducible, and with no two entries alike.
    """
    if index < 0:
        raise ValueError(f"catalog index must be >= 0, got {index}")
    golden = (1 + 5**0.5) / 2
    ra = (index * 360.0 / golden) % 360.0
    dec = float(np.degrees(np.arcsin(2 * ((index * golden) % 1.0) - 1)))
    return {"id": index, "ra": round(ra, 6), "dec": round(dec, 6)}


class VOTableService:
    """Deterministic synthetic VO service.

    Parameters
    ----------
    rows_per_table:
        Number of photometry rows returned per query (the real service
        returns the matching sources near the coordinates).
    seed:
        Base seed mixed with the query coordinates.
    """

    def __init__(self, rows_per_table: int = 32, seed: int = 7) -> None:
        if rows_per_table < 1:
            raise ValueError("rows_per_table must be >= 1")
        self.rows_per_table = rows_per_table
        self.seed = seed
        self.queries_served = 0

    def query(self, ra: float, dec: float) -> Dict[str, np.ndarray]:
        """Synthesize the VOTable for the given coordinates.

        Returns a column-oriented table (dict of 1-D numpy arrays), the
        in-memory shape a parsed VOTable has.
        """
        # Derive a stable seed from the coordinates (quantized so float
        # round-trips cannot change the draw).
        key = (int(round(ra * 1e6)) & 0xFFFFFFFF, int(round(dec * 1e6)) & 0xFFFFFFFF)
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, *key]))
        n = self.rows_per_table
        # T-type: integer -5..10, weighted towards spirals (where internal
        # extinction matters).
        mtype = rng.integers(-5, 11, size=n).astype(np.float64)
        # Apparent axis ratio r25 >= 1; log10 thereof in [0, ~1.2].
        logr25 = np.abs(rng.normal(0.25, 0.2, size=n)).clip(0.0, 1.2)
        bt = rng.normal(14.0, 1.5, size=n)
        vt = bt - np.abs(rng.normal(0.6, 0.2, size=n))
        e_logr25 = np.abs(rng.normal(0.02, 0.01, size=n))
        self.queries_served += 1
        return {
            "MType": mtype,
            "logr25": logr25,
            "BT": bt,
            "VT": vt,
            "e_logr25": e_logr25,
        }
