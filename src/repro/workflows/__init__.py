"""The three real-world evaluation workflows of Section 4.

- :mod:`repro.workflows.astro` -- Internal Extinction of Galaxies (4 PEs,
  all stateless; Section 4.1, Figures 8-10, Table 1).
- :mod:`repro.workflows.seismic` -- Seismic Cross-Correlation phase 1
  (9 PEs, stateless, imbalanced; Section 4.2, Figure 11, Table 2) plus the
  grouped phase 2 for hybrid experiments.
- :mod:`repro.workflows.sentiment` -- Sentiment Analyses for News Articles
  (stateless/stateful blend with group-by and global groupings;
  Section 4.3, Figure 12, Table 3).

Each subpackage exposes a ``build_workflow(...)`` factory returning a
ready-to-run :class:`~repro.core.graph.WorkflowGraph` plus an input spec,
and documents the synthetic substitutions for external data sources
(see DESIGN.md).
"""

from repro.workflows.astro import build_internal_extinction_workflow
from repro.workflows.seismic import build_seismic_phase1_workflow, build_seismic_phase2_workflow
from repro.workflows.sentiment import (
    build_recoverable_sentiment_workflow,
    build_sentiment_scoring_workflow,
    build_sentiment_workflow,
)

__all__ = [
    "build_internal_extinction_workflow",
    "build_recoverable_sentiment_workflow",
    "build_sentiment_scoring_workflow",
    "build_seismic_phase1_workflow",
    "build_seismic_phase2_workflow",
    "build_sentiment_workflow",
]
