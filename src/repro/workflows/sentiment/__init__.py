"""Sentiment Analyses for News Articles workflow (Section 4.3).

Two concurrent sentiment paths over a stream of news articles, aggregated
by US state (Figure 7)::

    readArticles -+-> sentimentAFINN ---------------> findStateAFINN -+
                  |                                                   +-> happyState -> top3Happiest
                  +-> tokenizeWD -> sentimentSWN3 --> findStateSWN3 --+

``happyState`` is stateful and distributed over four instances with a
*group-by* on the article's state; ``top3Happiest`` is stateful under a
*global* grouping (2 instances requested, only instance 0 receives data --
the static inefficiency the paper points out).  The remaining PEs are
stateless, making this workflow "an ideal testbed to explore the behavior
of enhanced dynamic deployment within the realm of a real stateful
application".

Substitutions (DESIGN.md): the Kaggle news dataset becomes a deterministic
synthetic article generator; the AFINN and SentiWordNet-3 lexicons become
embedded mini-lexicons with the same shape (word -> valence / positive &
negative scores).
"""

from repro.workflows.sentiment.articles import generate_articles
from repro.workflows.sentiment.lexicon import AFINN, SWN3, afinn_score, swn3_score
from repro.workflows.sentiment.pes import (
    FindState,
    HappyState,
    ReadArticles,
    RecoverableHappyState,
    RecoverableTop3Happiest,
    SentimentAFINN,
    SentimentSWN3,
    TokenizeWD,
    Top3Happiest,
)
from repro.workflows.sentiment.tokenizer import tokenize
from repro.workflows.sentiment.workflow import (
    build_recoverable_sentiment_workflow,
    build_sentiment_scoring_workflow,
    build_sentiment_workflow,
)

__all__ = [
    "AFINN",
    "FindState",
    "HappyState",
    "ReadArticles",
    "RecoverableHappyState",
    "RecoverableTop3Happiest",
    "SWN3",
    "SentimentAFINN",
    "SentimentSWN3",
    "TokenizeWD",
    "Top3Happiest",
    "afinn_score",
    "build_recoverable_sentiment_workflow",
    "build_sentiment_scoring_workflow",
    "build_sentiment_workflow",
    "generate_articles",
    "swn3_score",
    "tokenize",
]
