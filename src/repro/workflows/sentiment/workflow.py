"""Factory for the Sentiment Analyses for News Articles workflow."""

from __future__ import annotations

from typing import List, Tuple

from repro.core.graph import WorkflowGraph
from repro.workflows.sentiment.articles import generate_articles
from repro.workflows.sentiment.pes import (
    FindState,
    HappyState,
    ReadArticles,
    RecoverableHappyState,
    RecoverableTop3Happiest,
    SentimentAFINN,
    SentimentSWN3,
    TokenizeWD,
    Top3Happiest,
)

#: Default article count for the evaluation runs.
DEFAULT_ARTICLES = 400


def build_sentiment_workflow(
    articles: int = DEFAULT_ARTICLES,
    happy_instances: int = 4,
    top3_instances: int = 2,
    sentiment_instances: int = 2,
    seed: int = 23,
) -> Tuple[WorkflowGraph, List[int]]:
    """Build the Figure 7 workflow and its input stream.

    Instance pinning follows Section 5.4: ``happy State`` x4 and
    ``top 3 happiest`` x2; the two sentiment scorers are pinned to 2
    instances each (they dominate the stateless load), which puts the
    static ``multi`` minimum at 14 processes -- matching the paper's
    "multi demands a minimum of 14 processes".

    Returns
    -------
    (graph, inputs):
        The workflow graph and article-index input list.
    """
    return _build(
        articles,
        HappyState,
        Top3Happiest,
        happy_instances=happy_instances,
        top3_instances=top3_instances,
        sentiment_instances=sentiment_instances,
        seed=seed,
        name="sentiment_news",
    )


def build_recoverable_sentiment_workflow(
    articles: int = DEFAULT_ARTICLES,
    happy_instances: int = 4,
    top3_instances: int = 2,
    sentiment_instances: int = 2,
    seed: int = 23,
) -> Tuple[WorkflowGraph, List[int]]:
    """The sentiment workflow wired for checkpoint/restore.

    Identical topology to :func:`build_sentiment_workflow`, but the two
    stateful PEs carry explicit ``get_state``/``set_state`` hooks capturing
    exactly their aggregate tables -- run it on ``hybrid_redis`` with
    ``checkpoint_interval`` (or a ``state_store``) set and pinned instances
    survive worker crashes.
    """
    return _build(
        articles,
        RecoverableHappyState,
        RecoverableTop3Happiest,
        happy_instances=happy_instances,
        top3_instances=top3_instances,
        sentiment_instances=sentiment_instances,
        seed=seed,
        name="sentiment_news_recoverable",
    )


def build_sentiment_scoring_workflow(
    articles: int = DEFAULT_ARTICLES,
    sentiment_instances: int = 2,
    seed: int = 23,
) -> Tuple[WorkflowGraph, List[int]]:
    """The stateless scoring plane of the sentiment workflow (Figure 7).

    The Figure 7 pipeline truncated before the stateful aggregation: both
    scorer branches end at their ``findState`` PE, whose ``(state, score)``
    tuples are collected as run outputs instead of feeding ``happyState``.
    Identical per-article work to the full workflow on the dominant
    stateless path, but enactable by the stateless-only dynamic mappings --
    the workload the batching ablation uses to measure transport overhead
    on ``dyn_auto_redis`` (the stateful plane is exercised separately via
    ``hybrid_redis``).
    """
    if articles < 1:
        raise ValueError(f"articles must be >= 1, got {articles}")
    generate_articles(articles, seed=seed)
    read = ReadArticles(seed=seed)
    afinn = SentimentAFINN()
    afinn.numprocesses = sentiment_instances
    swn3 = SentimentSWN3()
    swn3.numprocesses = sentiment_instances
    afinn_branch = read >> afinn >> FindState(name="findStateAFINN")
    swn3_branch = read >> TokenizeWD() >> swn3 >> FindState(name="findStateSWN3")
    graph = WorkflowGraph.from_chain(
        afinn_branch, swn3_branch, name="sentiment_scoring"
    )
    return graph, list(range(articles))


def _build(
    articles: int,
    happy_cls: type,
    top3_cls: type,
    *,
    happy_instances: int,
    top3_instances: int,
    sentiment_instances: int,
    seed: int,
    name: str,
) -> Tuple[WorkflowGraph, List[int]]:
    if articles < 1:
        raise ValueError(f"articles must be >= 1, got {articles}")
    # Pre-warm the deterministic dataset on the driver thread (the paper
    # reads a file-backed dataset; workers should not synthesize articles).
    generate_articles(articles, seed=seed)
    read = ReadArticles(seed=seed)
    afinn = SentimentAFINN()
    afinn.numprocesses = sentiment_instances
    swn3 = SentimentSWN3()
    swn3.numprocesses = sentiment_instances
    happy = happy_cls(instances=happy_instances)
    top3 = top3_cls(instances=top3_instances)

    # Two scorer branches fan out of the reader and fan back into the
    # stateful happy-State aggregator (Figure 7); merged chains share the
    # reader and aggregator by identity.
    afinn_branch = read >> afinn >> FindState(name="findStateAFINN") >> happy >> top3
    swn3_branch = read >> TokenizeWD() >> swn3 >> FindState(name="findStateSWN3") >> happy
    graph = WorkflowGraph.from_chain(afinn_branch, swn3_branch, name=name)
    return graph, list(range(articles))
