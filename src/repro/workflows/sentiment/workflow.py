"""Factory for the Sentiment Analyses for News Articles workflow."""

from __future__ import annotations

from typing import List, Tuple

from repro.core.graph import WorkflowGraph
from repro.workflows.sentiment.articles import generate_articles
from repro.workflows.sentiment.pes import (
    FindState,
    HappyState,
    ReadArticles,
    SentimentAFINN,
    SentimentSWN3,
    TokenizeWD,
    Top3Happiest,
)

#: Default article count for the evaluation runs.
DEFAULT_ARTICLES = 400


def build_sentiment_workflow(
    articles: int = DEFAULT_ARTICLES,
    happy_instances: int = 4,
    top3_instances: int = 2,
    sentiment_instances: int = 2,
    seed: int = 23,
) -> Tuple[WorkflowGraph, List[int]]:
    """Build the Figure 7 workflow and its input stream.

    Instance pinning follows Section 5.4: ``happy State`` x4 and
    ``top 3 happiest`` x2; the two sentiment scorers are pinned to 2
    instances each (they dominate the stateless load), which puts the
    static ``multi`` minimum at 14 processes -- matching the paper's
    "multi demands a minimum of 14 processes".

    Returns
    -------
    (graph, inputs):
        The workflow graph and article-index input list.
    """
    if articles < 1:
        raise ValueError(f"articles must be >= 1, got {articles}")
    # Pre-warm the deterministic dataset on the driver thread (the paper
    # reads a file-backed dataset; workers should not synthesize articles).
    generate_articles(articles, seed=seed)
    graph = WorkflowGraph("sentiment_news")
    read = graph.add(ReadArticles(seed=seed))
    afinn = SentimentAFINN()
    afinn.numprocesses = sentiment_instances
    graph.add(afinn)
    token = graph.add(TokenizeWD())
    swn3 = SentimentSWN3()
    swn3.numprocesses = sentiment_instances
    graph.add(swn3)
    find_afinn = graph.add(FindState(name="findStateAFINN"))
    find_swn3 = graph.add(FindState(name="findStateSWN3"))
    happy = graph.add(HappyState(instances=happy_instances))
    top3 = graph.add(Top3Happiest(instances=top3_instances))

    graph.connect(read, "output", afinn, "input")
    graph.connect(read, "output", token, "input")
    graph.connect(token, "output", swn3, "input")
    graph.connect(afinn, "output", find_afinn, "input")
    graph.connect(swn3, "output", find_swn3, "input")
    graph.connect(find_afinn, "output", happy, "input")
    graph.connect(find_swn3, "output", happy, "input")
    graph.connect(happy, "output", top3, "input")
    return graph, list(range(articles))
