"""Processing elements of the Sentiment Analyses workflow.

Stateless PEs (read, the two sentiment scorers, the tokenizer, the two
state extractors) and the two stateful PEs of Figure 7:

- :class:`HappyState` -- *group-by* on ``state``: all scores of one state
  land on the same instance, which maintains the running aggregate.
- :class:`Top3Happiest` -- *global* grouping: all aggregates converge on
  one instance that keeps the top-3 table and flushes it at close.

Nominal costs model the original workloads: the SWN3 path (tokenize +
lexicon lookups per token) is markedly heavier than AFINN, and both scale
with article length -- the skew that makes static allocation lose to
hybrid dynamic scheduling.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.pe import GenericPE, IterativePE
from repro.workflows.sentiment.articles import make_article
from repro.workflows.sentiment.lexicon import afinn_score, swn3_score
from repro.workflows.sentiment.tokenizer import tokenize

#: Reference article length used to normalize per-article costs.
_REF_WORDS = 240.0


class ReadArticles(IterativePE):
    """Stream articles from the (synthetic) dataset by index."""

    def __init__(
        self,
        name: str = "readArticles",
        seed: int = 23,
        read_latency: float = 0.006,
        parse_cost: float = 0.004,
    ) -> None:
        super().__init__(name)
        self.seed = seed
        self.read_latency = read_latency
        self.parse_cost = parse_cost

    def _process(self, data: Any) -> Dict[str, Any]:
        self.io_wait(self.read_latency)
        self.compute(self.parse_cost)
        return make_article(int(data), seed=self.seed)


def _length_factor(article: Dict[str, Any]) -> float:
    return max(0.2, len(article["text"]) / (6.0 * _REF_WORDS))


class SentimentAFINN(IterativePE):
    """AFINN-lexicon sentiment score of the raw article text."""

    def __init__(self, name: str = "sentimentAFINN", cost: float = 0.050) -> None:
        super().__init__(name)
        self.cost = cost

    def _process(self, article: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost * _length_factor(article))
        score = afinn_score(tokenize(article["text"]))
        return {"id": article["id"], "state": article["state"], "score": float(score)}


class TokenizeWD(IterativePE):
    """Word-tokenize the article for the SWN3 path.

    Emits a compact bag-of-words (token -> count) rather than the raw token
    list: semantically equivalent for lexicon scoring and far lighter to
    ship between processes.
    """

    def __init__(self, name: str = "tokenizeWD", cost: float = 0.080) -> None:
        super().__init__(name)
        self.cost = cost

    def _process(self, article: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost * _length_factor(article))
        tokens = tokenize(article["text"])
        counts: Dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        return {
            "id": article["id"],
            "state": article["state"],
            "n_tokens": len(tokens),
            "counts": counts,
        }


class SentimentSWN3(IterativePE):
    """SentiWordNet-3 sentiment score over the tokenized bag-of-words."""

    def __init__(self, name: str = "sentimentSWN3", cost: float = 0.070) -> None:
        super().__init__(name)
        self.cost = cost

    def _process(self, record: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost * max(0.2, record["n_tokens"] / _REF_WORDS))
        score = sum(
            swn3_score([token]) * count for token, count in record["counts"].items()
        )
        return {"id": record["id"], "state": record["state"], "score": float(score)}


class FindState(IterativePE):
    """Map a scored record to its ``(state, score)`` tuple.

    Emits tuples so the downstream group-by can key on element 0, the
    dispel4py idiom (``grouping=[0]``).
    """

    def __init__(self, name: str = "findState", cost: float = 0.008) -> None:
        super().__init__(name)
        self.cost = cost

    def _process(self, record: Dict[str, Any]) -> Tuple[str, float]:
        self.compute(self.cost)
        return (record["state"], record["score"])


class HappyState(GenericPE):
    """Per-state running aggregate (stateful, group-by ``state``).

    Receives ``(state, score)`` tuples grouped by state; emits an updated
    ``(state, mean_score, count)`` aggregate per input, so the downstream
    top-3 always holds the latest picture.
    """

    def __init__(self, name: str = "happyState", instances: int = 4, cost: float = 0.008) -> None:
        super().__init__(name)
        self._add_input(self.INPUT_NAME, grouping=[0])
        self._add_output(self.OUTPUT_NAME)
        self.numprocesses = instances
        self.cost = cost
        self._totals: Dict[str, List[float]] = {}

    def process(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost)
        state, score = inputs[self.INPUT_NAME]
        bucket = self._totals.setdefault(state, [0.0, 0.0])
        bucket[0] += float(score)
        bucket[1] += 1.0
        return {
            self.OUTPUT_NAME: (state, bucket[0] / bucket[1], int(bucket[1]))
        }

    def snapshot(self) -> Dict[str, Tuple[float, int]]:
        """Final per-state (mean, count) table (used by white-box tests)."""
        return {
            state: (total / count, int(count))
            for state, (total, count) in self._totals.items()
        }


class RecoverableHappyState(HappyState):
    """``HappyState`` with explicit, minimal checkpoint hooks.

    The default :meth:`~repro.core.pe.GenericPE.get_state` would also drag
    constructor parameters (``cost``...) into every snapshot; the override
    captures exactly the aggregate table -- the idiom for PEs whose state
    is a small core inside a larger object.
    """

    def get_state(self) -> Dict[str, Any]:
        return {"totals": {state: list(bucket) for state, bucket in self._totals.items()}}

    def set_state(self, state: Dict[str, Any]) -> None:
        self._totals = {name: list(bucket) for name, bucket in state["totals"].items()}


class Top3Happiest(GenericPE):
    """Maintain and report the top-3 happiest states (stateful, global).

    Keeps the latest aggregate per state; at close emits the top three by
    mean score on the ``top3`` port.  The paper requests 2 instances for
    this PE -- under the global grouping only instance 0 ever receives
    data, and idle instances emit nothing.
    """

    def __init__(self, name: str = "top3Happiest", instances: int = 2, cost: float = 0.004) -> None:
        super().__init__(name)
        self._add_input(self.INPUT_NAME, grouping="global")
        self._add_output("top3")
        self.numprocesses = instances
        self.cost = cost
        self._latest: Dict[str, Tuple[float, int]] = {}

    def process(self, inputs: Dict[str, Any]) -> None:
        self.compute(self.cost)
        state, mean_score, count = inputs[self.INPUT_NAME]
        self._latest[state] = (float(mean_score), int(count))
        return None

    def top3(self) -> List[Tuple[str, float, int]]:
        ranked = sorted(
            ((state, mean, count) for state, (mean, count) in self._latest.items()),
            key=lambda row: (-row[1], row[0]),
        )
        return ranked[:3]

    def postprocess(self) -> None:
        if self._latest:
            self.write("top3", self.top3())


class RecoverableTop3Happiest(Top3Happiest):
    """``Top3Happiest`` with explicit checkpoint hooks (latest-wins table)."""

    def get_state(self) -> Dict[str, Any]:
        return {"latest": dict(self._latest)}

    def set_state(self, state: Dict[str, Any]) -> None:
        self._latest = dict(state["latest"])
