"""Synthetic news-article generator.

Offline substitute for the Kaggle "News Articles" dataset: deterministic
articles with a publication state, a headline and a body whose sentiment
skew is state-dependent (each state has a stable "mood" bias), so that the
top-3-happiest-states aggregation has a meaningful, reproducible answer.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

import numpy as np

from repro.workflows.sentiment.lexicon import AFINN, NEUTRAL_WORDS

#: The 50 US states (postal codes), the workflow's grouping domain.
US_STATES: tuple = (
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
    "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
    "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
    "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
    "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
)

_POSITIVE = tuple(word for word, score in AFINN.items() if score > 0)
_NEGATIVE = tuple(word for word, score in AFINN.items() if score < 0)

# Vectorized word pools (scalar RNG draws per word would serialize on the
# GIL and dominate the whole benchmark -- see the hpc guides: vectorize).
_NEUTRAL_ARR = np.array(NEUTRAL_WORDS)
_POSITIVE_ARR = np.array(_POSITIVE)
_NEGATIVE_ARR = np.array(_NEGATIVE)


def state_mood(state: str) -> float:
    """Stable per-state mood bias in [0, 1] (probability of positive words)."""
    index = US_STATES.index(state)
    # Spread moods deterministically over [0.25, 0.75].
    return 0.25 + 0.5 * ((index * 0.6180339887) % 1.0)


def make_article(article_id: int, seed: int = 23) -> Dict[str, object]:
    """One synthetic article: ``{id, state, title, text}``.

    Article length varies (60..420 words) to give the workflow the skewed
    per-task costs real news data has.  Results are cached (the dataset is
    deterministic, like the file-backed dataset the paper reads): without
    the cache, ten workers synthesizing articles concurrently convoy on the
    GIL through the many small RNG calls.  A shallow copy is returned so
    callers cannot mutate cache entries.
    """
    if article_id < 0:
        raise ValueError(f"article_id must be >= 0, got {article_id}")
    cached = _make_article_cached(article_id, seed)
    return dict(cached)


@lru_cache(maxsize=4096)
def _make_article_cached(article_id: int, seed: int) -> Dict[str, object]:
    rng = np.random.default_rng(np.random.SeedSequence([seed, article_id]))
    state = US_STATES[int(rng.integers(0, len(US_STATES)))]
    mood = state_mood(state)
    n_words = int(rng.integers(60, 421))
    # One vectorized draw per decision dimension instead of per-word scalar
    # RNG calls (which would cost ~1 ms of GIL time per article).
    rolls = rng.random(n_words)
    mood_rolls = rng.random(n_words)
    neutral_pick = _NEUTRAL_ARR[rng.integers(0, len(_NEUTRAL_ARR), size=n_words)]
    positive_pick = _POSITIVE_ARR[rng.integers(0, len(_POSITIVE_ARR), size=n_words)]
    negative_pick = _NEGATIVE_ARR[rng.integers(0, len(_NEGATIVE_ARR), size=n_words)]
    neutral_mask = rolls < 0.72
    positive_mask = ~neutral_mask & (mood_rolls < mood)
    words_arr = np.where(
        neutral_mask, neutral_pick, np.where(positive_mask, positive_pick, negative_pick)
    )
    words: List[str] = words_arr.tolist()
    title_words = words[: max(4, min(9, len(words)))]
    return {
        "id": article_id,
        "state": state,
        "title": " ".join(title_words).capitalize(),
        "text": " ".join(words) + ".",
    }


def generate_articles(count: int, seed: int = 23) -> List[Dict[str, object]]:
    """The first ``count`` articles of the synthetic dataset.

    Also serves as the cache pre-warmer: workflow factories call this once
    on the driver thread so workers read articles instead of synthesizing
    them (matching the paper's file-backed dataset).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [make_article(i, seed=seed) for i in range(count)]
