"""Word tokenizer for the sentiment workflow (the ``tokenize WD`` PE core)."""

from __future__ import annotations

import re
from typing import List

_WORD_RE = re.compile(r"[a-z0-9']+")


def tokenize(text: str) -> List[str]:
    """Lower-case word tokens, punctuation stripped.

    Matches what the original workflow's word tokenizer produces for
    English news prose: maximal runs of alphanumerics/apostrophes over the
    lower-cased text.
    """
    if not isinstance(text, str):
        raise TypeError(f"expected str, got {type(text).__name__}")
    return _WORD_RE.findall(text.lower())
