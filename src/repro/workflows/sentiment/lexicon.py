"""Embedded mini sentiment lexicons.

Offline substitutes for the AFINN lexicon (word -> integer valence in
-5..+5) and the SentiWordNet-3 lexicon (word -> positive/negative scores in
[0, 1]).  The vocabulary is small but covers both polarities and a band of
neutral filler words, which is all the workflow's behaviour depends on:
scores are summed per article and aggregated per state, so only the
*distribution* of valences matters for the benchmark.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

#: AFINN-style lexicon: word -> valence (-5 .. +5).
AFINN: Dict[str, int] = {
    # strongly positive
    "outstanding": 5, "superb": 5, "thrilled": 5, "breakthrough": 4,
    "brilliant": 4, "delighted": 4, "excellent": 4, "wonderful": 4,
    "amazing": 4, "triumph": 4,
    # positive
    "happy": 3, "joy": 3, "success": 3, "win": 3, "growth": 3,
    "celebrate": 3, "hope": 2, "improve": 2, "progress": 2, "gain": 2,
    "benefit": 2, "support": 2, "agree": 1, "calm": 1, "fair": 1,
    "steady": 1, "safe": 1, "useful": 1,
    # negative
    "concern": -1, "doubt": -1, "slow": -1, "tired": -1, "risk": -1,
    "problem": -2, "loss": -2, "decline": -2, "fear": -2, "worry": -2,
    "protest": -2, "fail": -2, "dispute": -2, "cut": -1,
    # strongly negative
    "crisis": -3, "angry": -3, "damage": -3, "fraud": -3, "violence": -3,
    "collapse": -3, "disaster": -4, "tragic": -4, "corruption": -4,
    "catastrophe": -5, "horrific": -5,
}

#: SentiWordNet-style lexicon: word -> (positive score, negative score).
SWN3: Dict[str, Tuple[float, float]] = {
    "outstanding": (0.875, 0.0), "superb": (0.875, 0.0),
    "thrilled": (0.75, 0.0), "breakthrough": (0.625, 0.0),
    "brilliant": (0.75, 0.0), "delighted": (0.75, 0.0),
    "excellent": (0.75, 0.0), "wonderful": (0.75, 0.0),
    "amazing": (0.625, 0.0), "triumph": (0.625, 0.0),
    "happy": (0.625, 0.0), "joy": (0.625, 0.0), "success": (0.5, 0.0),
    "win": (0.5, 0.0), "growth": (0.375, 0.0), "celebrate": (0.5, 0.0),
    "hope": (0.375, 0.0), "improve": (0.375, 0.0), "progress": (0.375, 0.0),
    "gain": (0.25, 0.0), "benefit": (0.375, 0.0), "support": (0.25, 0.0),
    "agree": (0.25, 0.0), "calm": (0.25, 0.125), "fair": (0.25, 0.0),
    "steady": (0.125, 0.0), "safe": (0.25, 0.0), "useful": (0.25, 0.0),
    "concern": (0.0, 0.375), "doubt": (0.0, 0.375), "slow": (0.0, 0.25),
    "tired": (0.0, 0.375), "risk": (0.0, 0.375), "problem": (0.0, 0.5),
    "loss": (0.0, 0.5), "decline": (0.0, 0.5), "fear": (0.0, 0.625),
    "worry": (0.0, 0.5), "protest": (0.0, 0.375), "fail": (0.0, 0.625),
    "dispute": (0.0, 0.375), "cut": (0.0, 0.25),
    "crisis": (0.0, 0.625), "angry": (0.0, 0.75), "damage": (0.0, 0.625),
    "fraud": (0.0, 0.75), "violence": (0.0, 0.75), "collapse": (0.0, 0.625),
    "disaster": (0.0, 0.875), "tragic": (0.0, 0.875),
    "corruption": (0.0, 0.75), "catastrophe": (0.0, 1.0),
    "horrific": (0.0, 1.0),
}

#: Neutral filler vocabulary used by the synthetic article generator.
NEUTRAL_WORDS: Tuple[str, ...] = (
    "the", "a", "of", "in", "on", "city", "council", "report", "today",
    "officials", "company", "market", "local", "state", "year", "week",
    "announced", "meeting", "people", "new", "plan", "project", "area",
    "residents", "government", "policy", "data", "study", "budget",
    "industry", "services", "community", "program", "development",
)


def afinn_score(tokens: Iterable[str]) -> int:
    """Summed AFINN valence of a token stream."""
    return sum(AFINN.get(token, 0) for token in tokens)


def swn3_score(tokens: Iterable[str]) -> float:
    """Summed (positive - negative) SentiWordNet score of a token stream."""
    total = 0.0
    for token in tokens:
        pos, neg = SWN3.get(token, (0.0, 0.0))
        total += pos - neg
    return total
