"""Factory for phase 1 of the Seismic Cross-Correlation workflow."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.graph import WorkflowGraph
from repro.workflows.seismic.pes import (
    Bandpass,
    CalcFFT,
    Decimate,
    Demean,
    Detrend,
    ReadTraces,
    RemoveResponse,
    Whiten,
    WriteOutput,
)

#: Station count used throughout the paper's evaluation ("a consistent
#: workload (50 stations as input) across all platforms").
DEFAULT_STATIONS = 50


def build_seismic_phase1_workflow(
    stations: int = DEFAULT_STATIONS,
    samples: int = 3000,
    out_dir: Optional[str] = None,
) -> Tuple[WorkflowGraph, List[int]]:
    """Build the nine-PE phase-1 pipeline and its input stream.

    Parameters
    ----------
    stations:
        Number of stations to stream (paper default 50).
    samples:
        Raw trace length per station.
    out_dir:
        Output directory for the writer PE (default: per-run temp dir).

    Returns
    -------
    (graph, inputs):
        The workflow graph and station-index input list.
    """
    if stations < 1:
        raise ValueError(f"stations must be >= 1, got {stations}")
    chain = (
        ReadTraces(samples=samples)
        >> Decimate()
        >> Detrend()
        >> Demean()
        >> RemoveResponse()
        >> Bandpass()
        >> Whiten()
        >> CalcFFT()
        >> WriteOutput(out_dir=out_dir)
    )
    graph = WorkflowGraph.from_chain(chain, name="seismic_phase1")
    return graph, list(range(stations))
