"""Synthetic seismic waveform generation.

The paper's workflow consumes continuous waveform data from FDSN stations.
Offline substitution (DESIGN.md): deterministic synthetic seismograms --
a superposition of microseism-band sinusoids, transient "events", a linear
instrument drift and white noise.  The composition is a pure function of
the station index, so every mapping processes identical data.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: Default sampling rate (Hz) of the raw synthetic traces.
DEFAULT_FS = 100.0
#: Default trace length in samples (30 s at 100 Hz).
DEFAULT_SAMPLES = 3000


def station_code(index: int) -> str:
    """Human-readable synthetic station code, e.g. ``"ST007"``."""
    if index < 0:
        raise ValueError(f"station index must be >= 0, got {index}")
    return f"ST{index:03d}"


def synth_trace(
    station: int,
    samples: int = DEFAULT_SAMPLES,
    fs: float = DEFAULT_FS,
    seed: int = 11,
) -> Dict[str, object]:
    """Generate one station's raw trace.

    Returns a trace record: ``{station, fs, data}`` with ``data`` a float64
    numpy array.  The signal contains:

    - two microseism-band tones (0.1-0.5 Hz) with station-dependent phase,
    - a decaying "event" wavelet at a station-dependent onset,
    - a linear drift (to give ``detrend`` real work),
    - a DC offset (for ``demean``),
    - white noise.
    """
    if samples < 16:
        raise ValueError("samples must be >= 16")
    rng = np.random.default_rng(np.random.SeedSequence([seed, station]))
    t = np.arange(samples) / fs
    f1, f2 = 0.1 + 0.05 * (station % 5), 0.3 + 0.02 * (station % 7)
    signal = (
        0.8 * np.sin(2 * np.pi * f1 * t + station)
        + 0.5 * np.sin(2 * np.pi * f2 * t + 2.0 * station)
    )
    onset = int(samples * (0.2 + 0.6 * ((station * 0.37) % 1.0)))
    event_t = t[onset:] - t[onset]
    signal[onset:] += 2.0 * np.exp(-event_t / 2.0) * np.sin(2 * np.pi * 5.0 * event_t)
    drift = 0.002 * t * (1 + station % 3)
    dc = 0.5 + 0.1 * (station % 4)
    noise = rng.normal(0.0, 0.2, size=samples)
    return {
        "station": station_code(station),
        "fs": fs,
        "data": signal + drift + dc + noise,
    }
