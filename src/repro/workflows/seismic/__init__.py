"""Seismic Cross-Correlation workflow (Section 4.2).

Phase 1 (the part the paper benchmarks -- all PEs stateless) is a nine-PE
pre-processing pipeline over raw station waveforms::

    readTraces -> decimate -> detrend -> demean -> removeResponse
               -> bandpass -> whiten -> calcFFT -> writeOutput

The workload is deliberately imbalanced: the intermediate PEs are pure
in-memory numerical transforms while the final PE performs disk IO --
the heterogeneity the paper calls out.

Phase 2 (cross-correlation over station pairs, with a *global* grouping
that makes it stateful) is included for completeness and used by the hybrid
mapping tests; the paper excludes it from the auto-scaling figures because
auto-scaling cannot handle stateful PEs.
"""

from repro.workflows.seismic.pes import (
    Bandpass,
    CalcFFT,
    CrossCorrelation,
    Decimate,
    Demean,
    Detrend,
    PairAggregator,
    ReadTraces,
    RemoveResponse,
    Whiten,
    WriteOutput,
    WriteXCorr,
)
from repro.workflows.seismic.phase1 import build_seismic_phase1_workflow
from repro.workflows.seismic.phase2 import build_seismic_phase2_workflow
from repro.workflows.seismic.waveform import synth_trace

__all__ = [
    "Bandpass",
    "CalcFFT",
    "CrossCorrelation",
    "Decimate",
    "Demean",
    "Detrend",
    "PairAggregator",
    "ReadTraces",
    "RemoveResponse",
    "Whiten",
    "WriteOutput",
    "WriteXCorr",
    "build_seismic_phase1_workflow",
    "build_seismic_phase2_workflow",
    "synth_trace",
]
