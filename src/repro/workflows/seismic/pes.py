"""Processing elements of the Seismic Cross-Correlation workflow.

Phase 1: nine stateless PEs from raw trace to FFT-on-disk.  The signal
processing is real (numpy/scipy); the declared nominal costs model the
relative stage weights of the paper's deployment, with the writer's disk
IO dominating -- the imbalance Section 4.2 highlights.

Phase 2: a stateful aggregation (global grouping) collecting every
station's spectrum, followed by stateless pairwise cross-correlation.
"""

from __future__ import annotations

import itertools
import os
import tempfile
from typing import Any, Dict, List, Optional

import numpy as np
from scipy import signal as sp_signal

from repro.core.pe import GenericPE, IterativePE
from repro.workflows.seismic.waveform import synth_trace


class ReadTraces(IterativePE):
    """Stream raw station traces (synthetic FDSN substitute)."""

    def __init__(
        self,
        name: str = "readTraces",
        samples: int = 3000,
        read_latency: float = 0.02,
        parse_cost: float = 0.005,
    ) -> None:
        super().__init__(name)
        self.samples = samples
        self.read_latency = read_latency
        self.parse_cost = parse_cost

    def _process(self, data: Any) -> Dict[str, Any]:
        station = int(data)
        self.io_wait(self.read_latency)
        self.compute(self.parse_cost)
        return synth_trace(station, samples=self.samples)


class Decimate(IterativePE):
    """Downsample the trace by an integer factor (anti-aliased)."""

    def __init__(self, name: str = "decimate", factor: int = 4, cost: float = 0.012) -> None:
        super().__init__(name)
        if factor < 1:
            raise ValueError("decimation factor must be >= 1")
        self.factor = factor
        self.cost = cost

    def _process(self, trace: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost)
        data = np.asarray(trace["data"], dtype=np.float64)
        if self.factor > 1:
            data = sp_signal.decimate(data, self.factor, zero_phase=True)
        return {**trace, "fs": trace["fs"] / self.factor, "data": data}


class Detrend(IterativePE):
    """Remove the linear trend."""

    def __init__(self, name: str = "detrend", cost: float = 0.010) -> None:
        super().__init__(name)
        self.cost = cost

    def _process(self, trace: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost)
        return {**trace, "data": sp_signal.detrend(np.asarray(trace["data"]), type="linear")}


class Demean(IterativePE):
    """Remove the DC offset."""

    def __init__(self, name: str = "demean", cost: float = 0.005) -> None:
        super().__init__(name)
        self.cost = cost

    def _process(self, trace: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost)
        data = np.asarray(trace["data"])
        return {**trace, "data": data - data.mean()}


class RemoveResponse(IterativePE):
    """Deconvolve a synthetic instrument response in the frequency domain."""

    def __init__(self, name: str = "removeResponse", cost: float = 0.020, water_level: float = 1e-6) -> None:
        super().__init__(name)
        self.cost = cost
        self.water_level = water_level

    def _process(self, trace: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost)
        data = np.asarray(trace["data"])
        spectrum = np.fft.rfft(data)
        freqs = np.fft.rfftfreq(len(data), d=1.0 / trace["fs"])
        # Single-pole high-pass instrument response with 0.05 Hz corner.
        response = freqs / np.sqrt(freqs**2 + 0.05**2)
        response[0] = self.water_level
        corrected = spectrum / np.maximum(response, self.water_level)
        return {**trace, "data": np.fft.irfft(corrected, n=len(data))}


class Bandpass(IterativePE):
    """Butterworth band-pass filter."""

    def __init__(
        self,
        name: str = "bandpass",
        low: float = 0.05,
        high: float = 2.0,
        order: int = 4,
        cost: float = 0.018,
    ) -> None:
        super().__init__(name)
        if not 0 < low < high:
            raise ValueError("need 0 < low < high")
        self.low = low
        self.high = high
        self.order = order
        self.cost = cost

    def _process(self, trace: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost)
        nyquist = trace["fs"] / 2.0
        high = min(self.high, nyquist * 0.95)
        sos = sp_signal.butter(
            self.order, [self.low / nyquist, high / nyquist], btype="band", output="sos"
        )
        return {**trace, "data": sp_signal.sosfiltfilt(sos, np.asarray(trace["data"]))}


class Whiten(IterativePE):
    """Spectral whitening: flatten the amplitude spectrum, keep the phase."""

    def __init__(self, name: str = "whiten", cost: float = 0.020, eps: float = 1e-10) -> None:
        super().__init__(name)
        self.cost = cost
        self.eps = eps

    def _process(self, trace: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost)
        data = np.asarray(trace["data"])
        spectrum = np.fft.rfft(data)
        whitened = spectrum / (np.abs(spectrum) + self.eps)
        return {**trace, "data": np.fft.irfft(whitened, n=len(data))}


class CalcFFT(IterativePE):
    """Final spectrum computation feeding the cross-correlation phase."""

    def __init__(self, name: str = "calcFFT", cost: float = 0.015) -> None:
        super().__init__(name)
        self.cost = cost

    def _process(self, trace: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost)
        data = np.asarray(trace["data"])
        return {
            "station": trace["station"],
            "fs": trace["fs"],
            "n": len(data),
            "fft": np.fft.rfft(data),
        }


class WriteOutput(IterativePE):
    """Persist the pre-processed spectrum to disk (the IO-heavy tail PE).

    Writes real bytes (``numpy.save``) to a per-run temporary directory,
    plus a configurable IO wait modelling the slower shared filesystem of
    the paper's platforms.  Emits ``{station, path, bytes}`` records.
    """

    def __init__(
        self,
        name: str = "writeOutput",
        out_dir: Optional[str] = None,
        io_cost: float = 0.12,
        cost: float = 0.004,
    ) -> None:
        super().__init__(name)
        self.out_dir = out_dir
        self.io_cost = io_cost
        self.cost = cost

    def preprocess(self) -> None:
        if self.out_dir is None:
            self.out_dir = tempfile.mkdtemp(prefix="repro-seismic-")
        os.makedirs(self.out_dir, exist_ok=True)

    def _process(self, record: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost)
        self.io_wait(self.io_cost)
        path = os.path.join(self.out_dir, f"{record['station']}.npy")
        np.save(path, record["fft"])
        return {
            "station": record["station"],
            "path": path,
            "bytes": int(os.path.getsize(path)),
        }


# --------------------------------------------------------------------- phase 2


class PairAggregator(GenericPE):
    """Collect every station's spectrum, emit all station pairs at close.

    A *global* grouping routes every spectrum to one instance, making this
    PE stateful -- the reason phase 2 is out of scope for plain dynamic
    scheduling and handled by ``multi`` / ``hybrid_redis``.
    """

    def __init__(self, name: str = "pairAggregator", cost: float = 0.002) -> None:
        super().__init__(name)
        self._add_input(self.INPUT_NAME, grouping="global")
        self._add_output("pairs")
        self.cost = cost
        self._spectra: List[Dict[str, Any]] = []

    def process(self, inputs: Dict[str, Any]) -> None:
        self.compute(self.cost)
        self._spectra.append(inputs[self.INPUT_NAME])
        return None

    def postprocess(self) -> None:
        ordered = sorted(self._spectra, key=lambda r: r["station"])
        for left, right in itertools.combinations(ordered, 2):
            self.write("pairs", {"a": left, "b": right})


class CrossCorrelation(IterativePE):
    """Frequency-domain cross-correlation of one station pair."""

    def __init__(self, name: str = "xcorr", cost: float = 0.010) -> None:
        super().__init__(name)
        self.cost = cost

    def _process(self, pair: Dict[str, Any]) -> Dict[str, Any]:
        self.compute(self.cost)
        a, b = pair["a"], pair["b"]
        n = min(a["n"], b["n"])
        cross = np.fft.irfft(a["fft"][: n // 2 + 1] * np.conj(b["fft"][: n // 2 + 1]), n=n)
        lag = int(np.argmax(np.abs(cross)))
        if lag > n // 2:
            lag -= n
        return {
            "pair": (a["station"], b["station"]),
            "peak": float(np.abs(cross).max()),
            "lag_samples": lag,
        }


class WriteXCorr(GenericPE):
    """Aggregate cross-correlation peaks (global grouping sink)."""

    def __init__(self, name: str = "writeXCorr") -> None:
        super().__init__(name)
        self._add_input(self.INPUT_NAME, grouping="global")
        self._add_output("summary")
        self._rows: List[Dict[str, Any]] = []

    def process(self, inputs: Dict[str, Any]) -> None:
        self._rows.append(inputs[self.INPUT_NAME])
        return None

    def postprocess(self) -> None:
        ranked = sorted(self._rows, key=lambda r: -r["peak"])
        self.write("summary", ranked)
