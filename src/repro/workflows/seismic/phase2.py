"""Factory for phase 2 (cross-correlation) of the seismic workflow.

Phase 2 contains a *global* grouping (all spectra to one aggregator
instance), which makes it stateful: plain dynamic scheduling refuses it,
``multi`` and ``hybrid_redis`` enact it.  The paper keeps phase 2 out of
its figures for exactly that reason; we include it as an additional
stateful test-bed beyond the sentiment workflow.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.graph import WorkflowGraph
from repro.workflows.seismic.pes import (
    Bandpass,
    CalcFFT,
    CrossCorrelation,
    Decimate,
    Demean,
    Detrend,
    PairAggregator,
    ReadTraces,
    RemoveResponse,
    Whiten,
    WriteXCorr,
)


def build_seismic_phase2_workflow(
    stations: int = 12,
    samples: int = 1500,
    xcorr_instances: int = 2,
) -> Tuple[WorkflowGraph, List[int]]:
    """Build the full phase1+phase2 pipeline ending in cross-correlations.

    Parameters
    ----------
    stations:
        Station count (pairs grow quadratically; default is kept small).
    samples:
        Raw trace length per station.
    xcorr_instances:
        Requested instance count for the pairwise correlation PE.
    """
    if stations < 2:
        raise ValueError("phase 2 needs at least 2 stations")
    aggregator = PairAggregator()
    xcorr = CrossCorrelation()
    xcorr.numprocesses = xcorr_instances
    chain = (
        ReadTraces(samples=samples)
        >> Decimate()
        >> Detrend()
        >> Demean()
        >> RemoveResponse()
        >> Bandpass()
        >> Whiten()
        >> CalcFFT()
        >> aggregator
    )
    # The aggregator emits station pairs on its named "pairs" port.
    tail = aggregator.out("pairs") >> xcorr >> WriteXCorr()
    graph = WorkflowGraph.from_chain(chain, tail, name="seismic_phase2")
    return graph, list(range(stations))
