"""Snapshot stores: where checkpointed PE-instance state lives.

A store maps an *instance id* (``"happyState.2"``) to its latest
:class:`Snapshot`.  Saves are guarded by the snapshot's sequence number --
a save that would move the cursor backwards is rejected -- so a stale
writer (a presumed-dead worker flushing one last checkpoint after its
instance was re-pinned elsewhere) can never clobber newer state.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol, runtime_checkable

from repro.redisim.client import RedisClient


@dataclass(frozen=True)
class Snapshot:
    """One checkpointed instance state.

    Attributes
    ----------
    seq:
        Sequence number of the last private-queue delivery whose effect is
        included in ``state``.  Replay after restore skips deliveries with
        ``seq <= Snapshot.seq`` (the at-least-once dedup cursor).
    state:
        The dict captured by :meth:`repro.core.pe.GenericPE.get_state`.
    """

    seq: int
    state: Dict[str, Any]


@runtime_checkable
class StateStore(Protocol):
    """Protocol every snapshot store implements."""

    def save(self, instance_id: str, seq: int, state: Dict[str, Any]) -> bool:
        """Persist a snapshot; ``False`` if a newer one already exists."""
        ...

    def load(self, instance_id: str) -> Optional[Snapshot]:
        """The latest snapshot for ``instance_id``, or ``None``."""
        ...

    def delete(self, instance_id: str) -> None:
        """Drop the snapshot for ``instance_id`` (no-op when absent)."""
        ...

    def instance_ids(self) -> List[str]:
        """Instance ids that currently have a snapshot."""
        ...


class InMemoryStateStore:
    """Thread-safe in-process store (tests, single-machine runs).

    State dicts are deep-copied on both save and load so a live instance
    and its snapshot can never alias each other -- the same isolation the
    Redis store gets from pickling.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshots: Dict[str, Snapshot] = {}

    def save(self, instance_id: str, seq: int, state: Dict[str, Any]) -> bool:
        with self._lock:
            existing = self._snapshots.get(instance_id)
            if existing is not None and existing.seq > seq:
                return False
            self._snapshots[instance_id] = Snapshot(int(seq), copy.deepcopy(state))
            return True

    def load(self, instance_id: str) -> Optional[Snapshot]:
        with self._lock:
            snap = self._snapshots.get(instance_id)
        if snap is None:
            return None
        return Snapshot(snap.seq, copy.deepcopy(snap.state))

    def delete(self, instance_id: str) -> None:
        with self._lock:
            self._snapshots.pop(instance_id, None)

    def instance_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._snapshots)


class RedisSnapshotStore:
    """Snapshots on a Redis deployment (the default for ``hybrid_redis``).

    One hash key per namespace holds every instance's latest snapshot; the
    substrate's SNAPSHOT command enforces the monotonic-sequence guard
    server-side, and the client's pickle round-trip provides isolation (and
    models what shipping state to a real Redis would cost).

    Parameters
    ----------
    client:
        Connection to the deployment that should hold the snapshots.  Use a
        dedicated client per writer thread, as with any connection.
    namespace:
        Key prefix isolating this run's snapshots (``<namespace>:snapshots``).
    """

    def __init__(self, client: RedisClient, namespace: str = "repro") -> None:
        self.client = client
        self.namespace = namespace
        self.key = f"{namespace}:snapshots"

    def save(self, instance_id: str, seq: int, state: Dict[str, Any]) -> bool:
        return self.client.snapshot(self.key, instance_id, seq, state)

    def load(self, instance_id: str) -> Optional[Snapshot]:
        hit = self.client.restore(self.key, instance_id)
        if hit is None:
            return None
        seq, state = hit
        return Snapshot(seq, state)

    def delete(self, instance_id: str) -> None:
        self.client.hdel(self.key, instance_id)

    def instance_ids(self) -> List[str]:
        return sorted(self.client.hgetall(self.key))

    def for_client(self, client: RedisClient) -> "RedisSnapshotStore":
        """The same logical store accessed over a different connection."""
        return RedisSnapshotStore(client, self.namespace)
