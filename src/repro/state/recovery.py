"""Crash injection for the recovery harness.

A :class:`CrashInjector` is handed to a run via the ``crash_injector``
option; pinned stateful workers consult it once per invocation and die
(abruptly, mid-loop -- no error report, no abort broadcast, exactly like a
killed process) when their trigger fires.  The mapping's supervisor then
detects the dead worker, re-pins the instance on a fresh worker, restores
the latest snapshot and replays the pending log.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class InjectedCrash(BaseException):
    """Raised inside a worker to simulate its process dying.

    Deliberately a ``BaseException``: an injected crash must not be caught
    by the worker's normal error boundary (which would report the error and
    abort the whole run) -- it unwinds the worker silently, as a SIGKILL
    would, leaving detection to the supervisor.
    """

    def __init__(self, instance_id: str, invocation: int) -> None:
        super().__init__(f"injected crash of {instance_id} at invocation {invocation}")
        self.instance_id = instance_id
        self.invocation = invocation


class CrashInjector:
    """Kill pinned workers at chosen invocation counts.

    Parameters
    ----------
    crash_after:
        ``instance_id -> n``: the worker pinned to that instance dies when
        it reaches its ``n``-th invocation (1-based, counted across
        re-pins, so a respawned worker continues the count and does not
        re-trigger an already-fired crash).
    max_crashes:
        Times each instance's trigger fires before going quiet (default 1:
        crash once, then let the replacement run to completion).
    point:
        When the crash fires relative to the triggering invocation:
        ``"post-process"`` (default) -- after the PE mutated its state but
        *before* its emissions were dispatched downstream, the
        interesting window for recovery correctness; ``"post-dispatch"``
        -- after downstream delivery, which on recovery duplicates the
        invocation's emissions (the documented at-least-once caveat).
    """

    _POINTS = ("post-process", "post-dispatch")

    def __init__(
        self,
        crash_after: Dict[str, int],
        max_crashes: int = 1,
        point: str = "post-process",
    ) -> None:
        if point not in self._POINTS:
            raise ValueError(f"point must be one of {self._POINTS}, got {point!r}")
        for instance_id, n in crash_after.items():
            if n < 1:
                raise ValueError(
                    f"crash_after[{instance_id!r}] must be >= 1, got {n}"
                )
        self.crash_after = dict(crash_after)
        self.max_crashes = max_crashes
        self.point = point
        self._lock = threading.Lock()
        self._invocations: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}

    def record_invocation(self, instance_id: str) -> int:
        """Count one invocation; returns the new total for the instance."""
        with self._lock:
            count = self._invocations.get(instance_id, 0) + 1
            self._invocations[instance_id] = count
            return count

    def maybe_crash(self, instance_id: str, at_point: str) -> None:
        """Raise :class:`InjectedCrash` if this instance's trigger fires here."""
        if at_point != self.point:
            return
        with self._lock:
            trigger = self.crash_after.get(instance_id)
            count = self._invocations.get(instance_id, 0)
            if trigger is None or count < trigger:
                return
            if self._fired.get(instance_id, 0) >= self.max_crashes:
                return
            self._fired[instance_id] = self._fired.get(instance_id, 0) + 1
        raise InjectedCrash(instance_id, count)

    def crashes_fired(self, instance_id: Optional[str] = None) -> int:
        """Total crashes injected (optionally for one instance)."""
        with self._lock:
            if instance_id is not None:
                return self._fired.get(instance_id, 0)
            return sum(self._fired.values())
