"""Checkpoint/restore subsystem for stateful enactment.

The paper makes dispel4py stateful under dynamic scheduling by pinning
stateful PE instances to dedicated workers (``hybrid_redis``, Section
3.1.2) -- but pinned local state dies with its worker.  This package treats
instance state as a first-class, persistable artifact:

- :class:`StateStore` -- where snapshots live: :class:`InMemoryStateStore`
  for tests and single-process runs, :class:`RedisSnapshotStore` on the
  run's Redis deployment (the default for ``hybrid_redis``), built on the
  substrate's sequence-guarded SNAPSHOT/RESTORE commands.
- :class:`Snapshot` -- one captured state: the PE's
  :meth:`~repro.core.pe.GenericPE.get_state` dict plus the sequence number
  of the last private-queue delivery it covers.
- :class:`CrashInjector` / :class:`InjectedCrash` -- the fault-injection
  harness: kills a pinned worker after a chosen number of invocations so
  recovery (re-pin, restore, replay) can be exercised deterministically.

Recovery semantics are at-least-once: deliveries between the last
checkpoint and the crash are replayed from the instance's pending log and
deduplicated against the snapshot's sequence cursor, but their *downstream*
emissions may be re-sent.  Exactly-once would require transactional
cross-queue dispatch; the paper's workflows (running aggregates, latest-
wins tables) are tolerant by construction.
"""

from repro.state.recovery import CrashInjector, InjectedCrash
from repro.state.store import (
    InMemoryStateStore,
    RedisSnapshotStore,
    Snapshot,
    StateStore,
)

#: Private-queue deliveries between checkpoints at the default interval.
DEFAULT_CHECKPOINT_INTERVAL = 25

__all__ = [
    "CrashInjector",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "InMemoryStateStore",
    "InjectedCrash",
    "RedisSnapshotStore",
    "Snapshot",
    "StateStore",
]
