"""The :class:`Engine` facade: configure once, run many workflows.

The facade replaces the kwargs-heavy ``run(graph, mapping=..., ...)`` call
with a reusable object that resolves the platform and the mapping registry
once and is then cheap to call per workflow::

    from repro import Engine, SERVER

    engine = Engine(mapping="auto", platform=SERVER, processes=12,
                    time_scale=0.02)
    result = engine.run(graph, inputs=100)          # auto-selects mapping
    again = engine.run(graph2, inputs=50, seed=7)   # per-run overrides

``mapping="auto"`` resolves per graph through
:func:`repro.mappings.select_mapping`: ``hybrid_redis`` for stateful
workflows, a dynamic auto-scaling mapping otherwise.  Engines accept
:class:`~repro.core.graph.WorkflowGraph`, :class:`~repro.core.fluent.Pipeline`
and fluent chains alike, support the context-manager protocol, and keep a
cache of instantiated mapping engines across runs.

Streaming sessions
------------------
:meth:`Engine.submit` starts enactment immediately and returns a
:class:`~repro.jobs.Job` handle: ``job.send(...)`` pushes tuples into the
live workflow, ``job.results()`` yields outputs as they are produced, and
``job.wait()`` preserves the one-shot contract.  Each engine keeps one
*session* per mapping -- a warm :class:`~repro.mappings.base.Deployment`
(worker pool, redisim server) reused by consecutive submissions so only
the first pays the spin-up (``deploy_cold`` vs ``deploy_warm`` counters).
:meth:`Engine.run` is a ``submit().wait()`` shim over an ephemeral cold
deployment, byte-identical to the pre-session engine.

:class:`RunConfig` is the frozen record of the engine's settings --
build one explicitly (``Engine.from_config``) when configurations are
stored or passed around.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.exceptions import UnsupportedFeatureError
from repro.core.fluent import coerce_graph
from repro.core.graph import WorkflowGraph
from repro.jobs import Job, JobState
from repro.mappings.base import Deployment, DeploymentPool, InputSpec, Mapping
from repro.mappings.registry import get_capabilities, get_mapping, select_mapping
from repro.metrics.result import RunResult
from repro.platforms.profiles import LAPTOP, PlatformProfile, get_platform

#: Sentinel mapping name triggering capability-based selection.
AUTO = "auto"


def validate_tristate(name: str, value: Any) -> None:
    """Validate a ``False | True | "auto"`` engine option.

    The single source of the error message for both the config layer
    (:meth:`RunConfig.fusion_options`) and the per-run path
    (:meth:`Engine._submit`), so a bad value reads identically wherever
    it is caught.
    """
    if value not in (False, True, "auto"):
        raise TypeError(f"{name} must be True, False or 'auto', got {value!r}")


def _check_option_typos(options: Dict[str, Any]) -> None:
    """Reject option keys that look like misspelled RunConfig fields.

    Unknown keys normally pass through as mapping options, so a typo'd
    ``procesess=12`` would otherwise be silently ignored and the run would
    use the default process count.
    """
    import difflib

    config_fields = [f.name for f in fields(RunConfig)]
    for key in options:
        if key in config_fields:
            raise TypeError(
                f"{key!r} is an engine-level setting, not a mapping option; "
                f"set it on Engine(...) or with_options(...), not here"
            )
        close = difflib.get_close_matches(key, config_fields, n=1, cutoff=0.8)
        if close:
            raise TypeError(
                f"unknown engine argument {key!r}; did you mean {close[0]!r}? "
                f"(unrecognised keywords are forwarded to the mapping as "
                f"options, so typos would be silently ignored)"
            )


@dataclass(frozen=True)
class RunConfig:
    """Frozen engine configuration.

    Attributes
    ----------
    mapping:
        Registry name, or ``"auto"`` for capability-based selection.
    platform:
        A :class:`PlatformProfile` or its registry name.
    processes:
        Worker process budget per run.
    time_scale:
        Nominal-to-real multiplier for synthetic durations.
    seed:
        Default run seed (overridable per run).
    prefer:
        Ordered mapping preferences consulted by ``"auto"`` selection.
    batch_size:
        Transport granularity: up to this many tuples travel per queue item
        / Redis command on mappings that declare ``Capabilities.batching``.
        ``1`` (default) is unbatched -- byte-identical to the pre-batching
        engine.  Larger values amortize the per-tuple enactment overhead
        (the dominant cost of fine-grained streams) at the price of
        coarser scheduling granularity.
    batch_linger_ms:
        Upper bound (real milliseconds) a buffered tuple may wait for
        batch companions on buffered port-to-port transport (the static
        ``multi`` mapping); ``0`` disables the linger trigger.  Dynamic
        mappings batch within one invocation/fetch and never hold tuples
        back, so linger does not apply to them.
    fuse:
        Operator fusion (:mod:`repro.core.fusion`): collapse fusable 1:1
        PE chains into in-process ``FusedPE`` operators before enactment,
        removing the queue hop (and, on Redis mappings, the round trip
        and pickle) between chained PEs.  ``False`` (default) leaves the
        graph untouched -- byte-identical to the pre-fusion engine.
        ``True`` requires a mapping declaring ``Capabilities.fusion`` and
        fails otherwise; ``"auto"`` fuses where the mapping supports it
        and silently skips where it does not.
    optimize:
        Cost-based graph optimization (:mod:`repro.planner`): apply the
        full rewrite-rule planner -- chain fusion plus dead-output
        elimination, fan-out replication and grouping-corridor partial
        fusion -- under a profiled cost model, and enact the rewritten
        graph.  Workflow outputs are unchanged by contract (knob
        suggestions are advisory only).  Same tri-state as ``fuse``:
        ``True`` requires ``Capabilities.fusion``, ``"auto"`` skips
        silently on mappings without it.  ``fuse`` stays as the
        byte-identical fusion-only shim; ``optimize`` supersedes it when
        both are set.
    checkpoint_interval:
        Deliveries between state checkpoints of pinned stateful instances
        (recoverable mappings only).  Setting it enables checkpoint/restore
        on ``hybrid_redis``; ``None`` (default) leaves recovery off unless
        ``state_store`` is provided.  Counted in tuples, so it bounds the
        replay window identically at any ``batch_size``.
    state_store:
        Where instance snapshots live (a :class:`repro.state.StateStore`).
        Providing one enables checkpoint/restore at the default interval;
        ``None`` with checkpointing enabled uses a Redis-backed store on
        the run's own deployment.
    options:
        Mapping-specific tuning forwarded to every run.
    """

    mapping: str = AUTO
    platform: Union[PlatformProfile, str] = LAPTOP
    processes: int = 1
    time_scale: float = 1.0
    seed: int = 0
    prefer: Union[str, Sequence[str], None] = None
    batch_size: int = 1
    batch_linger_ms: float = 0.0
    fuse: Union[bool, str] = False
    optimize: Union[bool, str] = False
    checkpoint_interval: Optional[int] = None
    state_store: Optional[Any] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def recovery_options(self) -> Dict[str, Any]:
        """The checkpoint/restore settings as mapping options (set fields only)."""
        opts: Dict[str, Any] = {}
        if self.checkpoint_interval is not None:
            opts["checkpoint_interval"] = self.checkpoint_interval
        if self.state_store is not None:
            opts["state_store"] = self.state_store
        return opts

    def transport_options(self) -> Dict[str, Any]:
        """The batching settings as mapping options (non-default only).

        Defaults stay *absent* from the options dict, so a default-configured
        engine hands every mapping exactly the options it did before
        batching existed.
        """
        opts: Dict[str, Any] = {}
        if self.batch_size != 1:
            opts["batch_size"] = self.batch_size
        if self.batch_linger_ms:
            opts["batch_linger_ms"] = self.batch_linger_ms
        return opts

    def fusion_options(self) -> Dict[str, Any]:
        """The fusion/optimizer settings as mapping options (if enabled).

        ``fuse=False`` / ``optimize=False`` stay absent, like the other
        transport defaults, so a default-configured engine hands mappings
        exactly the options it did before fusion existed.
        """
        opts: Dict[str, Any] = {}
        if self.fuse is not False:
            validate_tristate("fuse", self.fuse)
            opts["fuse"] = self.fuse
        if self.optimize is not False:
            validate_tristate("optimize", self.optimize)
            opts["optimize"] = self.optimize
        return opts

    def resolved_platform(self) -> PlatformProfile:
        """The platform as a :class:`PlatformProfile` (names looked up)."""
        if isinstance(self.platform, PlatformProfile):
            return self.platform
        return get_platform(self.platform)


class Engine:
    """Reusable enactment facade over the mapping registry.

    Parameters mirror :class:`RunConfig`; extra keyword arguments become
    mapping options (``Engine(mapping="dyn_auto_multi", session_chunk=16)``).
    """

    def __init__(
        self,
        mapping: str = AUTO,
        platform: Union[PlatformProfile, str] = LAPTOP,
        processes: int = 1,
        time_scale: float = 1.0,
        seed: int = 0,
        prefer: Union[str, Sequence[str], None] = None,
        batch_size: int = 1,
        batch_linger_ms: float = 0.0,
        fuse: Union[bool, str] = False,
        optimize: Union[bool, str] = False,
        checkpoint_interval: Optional[int] = None,
        state_store: Optional[Any] = None,
        options: Optional[Dict[str, Any]] = None,
        **extra_options: Any,
    ) -> None:
        merged_options = dict(options or {})
        merged_options.update(extra_options)
        _check_option_typos(merged_options)
        self.config = RunConfig(
            mapping=mapping,
            platform=platform,
            processes=processes,
            time_scale=time_scale,
            seed=seed,
            prefer=prefer,
            batch_size=batch_size,
            batch_linger_ms=batch_linger_ms,
            fuse=fuse,
            optimize=optimize,
            checkpoint_interval=checkpoint_interval,
            state_store=state_store,
            options=merged_options,
        )
        # One-time platform resolution; per-name engine cache across runs.
        self._platform = self.config.resolved_platform()
        self._engines: Dict[str, Mapping] = {}
        self._closed = False
        self._lock = threading.Lock()
        # One size-1 DeploymentPool per mapping: the warm *session* reused
        # by consecutive submissions (overlap falls back to ephemeral).
        self._sessions: Dict[str, DeploymentPool] = {}
        self._jobs: List[Job] = []

    @classmethod
    def from_config(cls, config: RunConfig) -> "Engine":
        """Build an engine from an explicit frozen :class:`RunConfig`.

        Equivalent to unpacking the config into the constructor; use it when
        configurations are stored or passed around.  Raises ``TypeError``
        when ``config.options`` contains keys that look like misspelled
        :class:`RunConfig` fields.
        """
        _check_option_typos(config.options)
        engine = cls.__new__(cls)
        engine.config = config
        engine._platform = config.resolved_platform()
        engine._engines = {}
        engine._closed = False
        engine._lock = threading.Lock()
        engine._sessions = {}
        engine._jobs = []
        return engine

    # ----------------------------------------------------------- resolution
    @property
    def platform(self) -> PlatformProfile:
        """The resolved :class:`PlatformProfile` this engine enacts on."""
        return self._platform

    def _ensure_open(self) -> None:
        """Every facade entry point refuses a closed engine, consistently."""
        if self._closed:
            raise RuntimeError("Engine is closed; create a new one")

    def resolve_mapping(
        self, graph: Any, processes: Optional[int] = None
    ) -> str:
        """The mapping name a run of ``graph`` would use (selection only)."""
        self._ensure_open()
        return self._resolve(
            coerce_graph(graph),
            self.config.mapping,
            processes if processes is not None else self.config.processes,
        )

    def _resolve(self, graph: WorkflowGraph, name: str, processes: int) -> str:
        """Shared selection path for :meth:`run` and :meth:`resolve_mapping`."""
        if name != AUTO:
            return name
        return select_mapping(
            graph,
            platform=self._platform,
            prefer=self.config.prefer,
            processes=processes,
        )

    def _engine_for(self, name: str) -> Mapping:
        engine = self._engines.get(name)
        if engine is None:
            engine = get_mapping(name)
            self._engines[name] = engine
        return engine

    # ------------------------------------------------------------------ run
    def run(
        self,
        workflow: Union[WorkflowGraph, Any],
        inputs: InputSpec = None,
        *,
        processes: Optional[int] = None,
        seed: Optional[int] = None,
        mapping: Optional[str] = None,
        time_scale: Optional[float] = None,
        **options: Any,
    ) -> RunResult:
        """Enact a workflow (graph, pipeline, or fluent chain).

        Engine-level settings apply unless overridden per run; ``options``
        merge over (and win against) the engine's configured options.

        A ``submit().wait()`` shim: the job runs on an ephemeral cold
        deployment (no session reuse, no extra counters), so one-shot runs
        stay byte-identical to the pre-session engine.  Long-lived callers
        ingesting or consuming incrementally use :meth:`submit`.
        """
        job = self._submit(
            workflow, inputs, processes=processes, seed=seed, mapping=mapping,
            time_scale=time_scale, deadline=None, warm=False, options=options,
        )
        return job.wait()

    def submit(
        self,
        workflow: Union[WorkflowGraph, Any],
        inputs: InputSpec = None,
        *,
        processes: Optional[int] = None,
        seed: Optional[int] = None,
        mapping: Optional[str] = None,
        time_scale: Optional[float] = None,
        deadline: Optional[float] = None,
        scheduler: Optional[Any] = None,
        tenant: Optional[str] = None,
        priority: int = 0,
        **options: Any,
    ) -> Job:
        """Start enacting a workflow and return its :class:`~repro.jobs.Job`.

        Enactment begins immediately on the mapping's session deployment:
        the first submission deploys cold (spinning up the worker pool /
        redisim server), consecutive ones reuse it warm.  Initial
        ``inputs`` are optional -- on streaming mappings
        (``Capabilities.streaming``) they are consumed lazily into the
        running workflow and ``job.send(...)`` adds more until
        ``job.close_input()``; other mappings buffer ingestion and enact
        when the input closes.  ``deadline`` (real seconds) cancels the
        job when exceeded.  Overlapping submissions on one mapping fall
        back to ephemeral cold deployments (a session's warmth is
        exclusive to one job at a time) -- counted ``deploy_busy_fallback``
        on the run.

        Passing ``scheduler=`` (a :class:`repro.scheduler.JobScheduler`
        bound to this engine) routes the submission through scheduled
        admission instead: the job queues under ``tenant`` fair-share
        accounting at ``priority`` until a shared warm deployment is free,
        eliminating busy fallbacks.  ``tenant``/``priority`` are only
        meaningful with a scheduler and raise ``TypeError`` otherwise.

        Raises
        ------
        RuntimeError
            On a closed engine.
        TypeError
            On misspelled engine-level options, or ``tenant``/``priority``
            without a ``scheduler``.
        ValueError
            When ``scheduler`` is bound to a different engine.
        UnsupportedFeatureError
            When an option needs a capability the mapping lacks.
        """
        if scheduler is not None:
            if scheduler.engine is not self:
                raise ValueError(
                    "scheduler= is bound to a different Engine; submit "
                    "through that engine (or build the scheduler over this "
                    "one)"
                )
            return scheduler.submit(
                workflow, inputs, processes=processes, seed=seed,
                mapping=mapping, time_scale=time_scale, deadline=deadline,
                tenant=tenant if tenant is not None else "default",
                priority=priority, **options,
            )
        if tenant is not None or priority != 0:
            raise TypeError(
                "tenant=/priority= apply to scheduled submission only; "
                "pass scheduler= as well"
            )
        return self._submit(
            workflow, inputs, processes=processes, seed=seed, mapping=mapping,
            time_scale=time_scale, deadline=deadline, warm=True, options=options,
        )

    def _submit(
        self,
        workflow: Union[WorkflowGraph, Any],
        inputs: InputSpec,
        processes: Optional[int],
        seed: Optional[int],
        mapping: Optional[str],
        time_scale: Optional[float],
        deadline: Optional[float],
        warm: bool,
        options: Dict[str, Any],
    ) -> Job:
        """Direct (unscheduled) submission behind :meth:`run` and :meth:`submit`."""
        graph, name, procs, merged = self._resolve_submission(
            workflow, processes, mapping, options
        )
        deployment, busy = (None, False)
        if warm:
            deployment, busy = self._lease(name, procs)
        try:
            job = self._start_job(
                name, graph, inputs, procs, merged,
                time_scale=time_scale, seed=seed, deadline=deadline,
                deployment=deployment,
                # run() forces the buffered wiring: the classic one-shot
                # enactment path, byte-identical outputs and counters --
                # and skips the results tap its wait()-only job never reads.
                stream=None if warm else False,
                results_channel=warm,
                busy_fallback=busy,
            )
        except BaseException:
            if deployment is not None:
                # Validation failures raise before the deployment is ever
                # touched (submit wires threads last), so its warmth -- and
                # the spin-up it represents -- survives for the next job.
                self._release(name, deployment, reusable=True)
            raise
        if deployment is not None:
            leased = deployment
            job._on_terminal(
                lambda j: self._release(name, leased, reusable=j.state is JobState.DONE)
            )
        return job

    def _resolve_submission(
        self,
        workflow: Union[WorkflowGraph, Any],
        processes: Optional[int],
        mapping: Optional[str],
        options: Dict[str, Any],
    ) -> tuple:
        """Coerce, resolve and capability-gate one submission.

        Shared by the direct path and the scheduler's admission queue, so
        both reject bad submissions synchronously at submit time.  Returns
        ``(graph, mapping_name, processes, merged_options)``.
        """
        self._ensure_open()
        _check_option_typos(options)
        graph = coerce_graph(workflow)
        procs = processes if processes is not None else self.config.processes
        name = self._resolve(
            graph, mapping if mapping is not None else self.config.mapping, procs
        )
        merged = {
            **self.config.recovery_options(),
            **self.config.transport_options(),
            **self.config.fusion_options(),
            **self.config.options,
            **options,
        }
        fuse_request = merged.get("fuse", False)
        validate_tristate("fuse", fuse_request)
        if fuse_request:
            # Same contract as batching below: a mapping that bypasses the
            # shared enactment path would silently run unfused while the
            # user believes chains were collapsed.  "auto" is the soft
            # request -- fuse where supported, skip where not.
            caps = get_capabilities(name)
            if not caps.fusion:
                if fuse_request == "auto":
                    merged.pop("fuse")
                else:
                    raise UnsupportedFeatureError(
                        f"operator fusion requested (fuse=True) but mapping "
                        f"{name!r} does not support fusion; pick a fusing "
                        f"mapping, use fuse='auto', or drop the option"
                    )
        optimize_request = merged.get("optimize", False)
        validate_tristate("optimize", optimize_request)
        if optimize_request:
            # The planner rides on the same enactment plumbing as fusion,
            # so it shares the fusion capability bit.
            caps = get_capabilities(name)
            if not caps.fusion:
                if optimize_request == "auto":
                    merged.pop("optimize")
                else:
                    raise UnsupportedFeatureError(
                        f"graph optimization requested (optimize=True) but "
                        f"mapping {name!r} does not support the planner; pick "
                        f"a fusing mapping, use optimize='auto', or drop the "
                        f"option"
                    )
        if merged.get("batch_size", 1) != 1 or merged.get("batch_linger_ms", 0):
            # Same contract as the recovery gate below: a mapping that
            # ignores the transport knobs would silently run unbatched
            # while the user believes they tuned the data plane.
            caps = get_capabilities(name)
            if not caps.batching:
                raise UnsupportedFeatureError(
                    f"batched transport requested (batch_size/batch_linger_ms) "
                    f"but mapping {name!r} does not support batching; pick a "
                    f"batching mapping or drop the transport options"
                )
        if "checkpoint_interval" in merged or "state_store" in merged:
            # Silently dropping the knobs would leave the user believing
            # their pinned state is crash-safe when it is not.  State
            # checkpointing needs a mapping that both pins stateful
            # instances and recovers them -- reclaim-only recoverability
            # (dyn_redis) does not qualify.
            caps = get_capabilities(name)
            if not (caps.recoverable and caps.stateful):
                raise UnsupportedFeatureError(
                    f"checkpoint/restore requested (checkpoint_interval/"
                    f"state_store) but mapping {name!r} does not support "
                    f"stateful checkpointing; use hybrid_redis or drop the "
                    f"recovery options"
                )
        if "address" in merged:
            # An address points workers at an external networked substrate
            # (``repro serve-redis``); a non-networked mapping would ignore
            # it and silently run in-process on a private keyspace.
            caps = get_capabilities(name)
            if not caps.networked:
                raise UnsupportedFeatureError(
                    f"a server address was given but mapping {name!r} is "
                    f"not networked; use cluster_redis or drop address="
                )
        return graph, name, procs, merged

    def _start_job(
        self,
        name: str,
        graph: WorkflowGraph,
        inputs: InputSpec,
        processes: int,
        merged: Dict[str, Any],
        *,
        time_scale: Optional[float],
        seed: Optional[int],
        deadline: Optional[float],
        deployment: Optional[Deployment],
        stream: Optional[bool],
        results_channel: bool,
        busy_fallback: bool = False,
    ) -> Job:
        """Hand one resolved submission to its mapping and track the job.

        The single funnel onto ``Mapping.submit`` for both the direct path
        and the scheduler, so engine-level defaults (time scale, seed) and
        job bookkeeping (``close()`` cancels every live job) apply
        identically.  Deployment leasing stays with the caller.
        """
        engine = self._engine_for(name)
        job = engine.submit(
            graph,
            inputs=inputs,
            processes=processes,
            platform=self._platform,
            time_scale=time_scale if time_scale is not None else self.config.time_scale,
            seed=seed if seed is not None else self.config.seed,
            deployment=deployment,
            deadline=deadline,
            stream=stream,
            results_channel=results_channel,
            busy_fallback=busy_fallback,
            **merged,
        )
        self._adopt_job(job)
        return job

    def _adopt_job(self, job: Job) -> None:
        """Track a job until terminal so :meth:`close` can cancel it."""
        with self._lock:
            self._jobs.append(job)
        job._on_terminal(self._forget_job)

    def _forget_job(self, job: Job) -> None:
        with self._lock:
            if job in self._jobs:
                self._jobs.remove(job)

    # -------------------------------------------------------------- sessions
    def _lease(self, name: str, processes: int) -> tuple:
        """Borrow the mapping's session deployment (deploying if needed).

        Returns ``(deployment, busy)`` from the mapping's size-1
        :class:`DeploymentPool`: ``(None, True)`` when the session is busy
        with another live job -- the caller then runs on an ephemeral cold
        deployment.  An existing deployment that no longer matches the
        requested settings is torn down and replaced (cold again).
        """
        with self._lock:
            pool = self._sessions.get(name)
            if pool is None:
                pool = DeploymentPool(self._engine_for(name), size=1)
                self._sessions[name] = pool
        return pool.try_acquire(processes, self._platform)

    def _release(self, name: str, deployment: Deployment, reusable: bool) -> None:
        """Return a leased deployment; failed runs forfeit their warmth."""
        with self._lock:
            pool = self._sessions.get(name)
        if pool is None:
            # The engine was closed while the job ran; the deployment is no
            # longer tracked.
            deployment.teardown()
            return
        pool.release(deployment, reusable=reusable)

    def with_options(self, **changes: Any) -> "Engine":
        """A new engine with updated settings (the caches start fresh).

        Like the constructor, keyword arguments that are not
        :class:`RunConfig` fields become mapping options.  Refuses a
        closed engine, like every other facade entry point.
        """
        self._ensure_open()
        options = dict(self.config.options)
        config_fields = {f.name for f in fields(RunConfig)}
        field_changes = {}
        option_changes = dict(changes.pop("options", {}))
        for key in list(changes):
            if key in config_fields:
                field_changes[key] = changes.pop(key)
            else:
                option_changes[key] = changes.pop(key)
        _check_option_typos(option_changes)
        options.update(option_changes)
        config = replace(self.config, **field_changes, options=options)
        return Engine.from_config(config)

    # -------------------------------------------------------------- context
    def close(self) -> None:
        """Shut the engine down; it refuses any further use.

        Live jobs are cancelled (and given a short grace period to unwind),
        every session's warm deployment is torn down, and the mapping-engine
        cache is released.  Idempotent.
        """
        with self._lock:
            already = self._closed
            self._closed = True
            jobs = list(self._jobs)
            pools, self._sessions = list(self._sessions.values()), {}
        if already and not jobs and not pools:
            return
        for job in jobs:
            job.cancel(reason="engine closed")
        for job in jobs:
            job._terminal.wait(timeout=5.0)
        for pool in pools:
            pool.close()
        self._engines.clear()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Engine(mapping={self.config.mapping!r}, "
            f"platform={self._platform.name!r}, "
            f"processes={self.config.processes}, {state})"
        )
