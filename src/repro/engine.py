"""The :class:`Engine` facade: configure once, run many workflows.

The facade replaces the kwargs-heavy ``run(graph, mapping=..., ...)`` call
with a reusable object that resolves the platform and the mapping registry
once and is then cheap to call per workflow::

    from repro import Engine, SERVER

    engine = Engine(mapping="auto", platform=SERVER, processes=12,
                    time_scale=0.02)
    result = engine.run(graph, inputs=100)          # auto-selects mapping
    again = engine.run(graph2, inputs=50, seed=7)   # per-run overrides

``mapping="auto"`` resolves per graph through
:func:`repro.mappings.select_mapping`: ``hybrid_redis`` for stateful
workflows, a dynamic auto-scaling mapping otherwise.  Engines accept
:class:`~repro.core.graph.WorkflowGraph`, :class:`~repro.core.fluent.Pipeline`
and fluent chains alike, support the context-manager protocol, and keep a
cache of instantiated mapping engines across runs.

:class:`RunConfig` is the frozen record of the engine's settings --
build one explicitly (``Engine.from_config``) when configurations are
stored or passed around.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Sequence, Union

from repro.core.exceptions import UnsupportedFeatureError
from repro.core.fluent import coerce_graph
from repro.core.graph import WorkflowGraph
from repro.mappings.base import InputSpec, Mapping
from repro.mappings.registry import get_capabilities, get_mapping, select_mapping
from repro.metrics.result import RunResult
from repro.platforms.profiles import LAPTOP, PlatformProfile, get_platform

#: Sentinel mapping name triggering capability-based selection.
AUTO = "auto"


def _check_option_typos(options: Dict[str, Any]) -> None:
    """Reject option keys that look like misspelled RunConfig fields.

    Unknown keys normally pass through as mapping options, so a typo'd
    ``procesess=12`` would otherwise be silently ignored and the run would
    use the default process count.
    """
    import difflib

    config_fields = [f.name for f in fields(RunConfig)]
    for key in options:
        if key in config_fields:
            raise TypeError(
                f"{key!r} is an engine-level setting, not a mapping option; "
                f"set it on Engine(...) or with_options(...), not here"
            )
        close = difflib.get_close_matches(key, config_fields, n=1, cutoff=0.8)
        if close:
            raise TypeError(
                f"unknown engine argument {key!r}; did you mean {close[0]!r}? "
                f"(unrecognised keywords are forwarded to the mapping as "
                f"options, so typos would be silently ignored)"
            )


@dataclass(frozen=True)
class RunConfig:
    """Frozen engine configuration.

    Attributes
    ----------
    mapping:
        Registry name, or ``"auto"`` for capability-based selection.
    platform:
        A :class:`PlatformProfile` or its registry name.
    processes:
        Worker process budget per run.
    time_scale:
        Nominal-to-real multiplier for synthetic durations.
    seed:
        Default run seed (overridable per run).
    prefer:
        Ordered mapping preferences consulted by ``"auto"`` selection.
    batch_size:
        Transport granularity: up to this many tuples travel per queue item
        / Redis command on mappings that declare ``Capabilities.batching``.
        ``1`` (default) is unbatched -- byte-identical to the pre-batching
        engine.  Larger values amortize the per-tuple enactment overhead
        (the dominant cost of fine-grained streams) at the price of
        coarser scheduling granularity.
    batch_linger_ms:
        Upper bound (real milliseconds) a buffered tuple may wait for
        batch companions on buffered port-to-port transport (the static
        ``multi`` mapping); ``0`` disables the linger trigger.  Dynamic
        mappings batch within one invocation/fetch and never hold tuples
        back, so linger does not apply to them.
    fuse:
        Operator fusion (:mod:`repro.core.fusion`): collapse fusable 1:1
        PE chains into in-process ``FusedPE`` operators before enactment,
        removing the queue hop (and, on Redis mappings, the round trip
        and pickle) between chained PEs.  ``False`` (default) leaves the
        graph untouched -- byte-identical to the pre-fusion engine.
        ``True`` requires a mapping declaring ``Capabilities.fusion`` and
        fails otherwise; ``"auto"`` fuses where the mapping supports it
        and silently skips where it does not.
    checkpoint_interval:
        Deliveries between state checkpoints of pinned stateful instances
        (recoverable mappings only).  Setting it enables checkpoint/restore
        on ``hybrid_redis``; ``None`` (default) leaves recovery off unless
        ``state_store`` is provided.  Counted in tuples, so it bounds the
        replay window identically at any ``batch_size``.
    state_store:
        Where instance snapshots live (a :class:`repro.state.StateStore`).
        Providing one enables checkpoint/restore at the default interval;
        ``None`` with checkpointing enabled uses a Redis-backed store on
        the run's own deployment.
    options:
        Mapping-specific tuning forwarded to every run.
    """

    mapping: str = AUTO
    platform: Union[PlatformProfile, str] = LAPTOP
    processes: int = 1
    time_scale: float = 1.0
    seed: int = 0
    prefer: Union[str, Sequence[str], None] = None
    batch_size: int = 1
    batch_linger_ms: float = 0.0
    fuse: Union[bool, str] = False
    checkpoint_interval: Optional[int] = None
    state_store: Optional[Any] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def recovery_options(self) -> Dict[str, Any]:
        """The checkpoint/restore settings as mapping options (set fields only)."""
        opts: Dict[str, Any] = {}
        if self.checkpoint_interval is not None:
            opts["checkpoint_interval"] = self.checkpoint_interval
        if self.state_store is not None:
            opts["state_store"] = self.state_store
        return opts

    def transport_options(self) -> Dict[str, Any]:
        """The batching settings as mapping options (non-default only).

        Defaults stay *absent* from the options dict, so a default-configured
        engine hands every mapping exactly the options it did before
        batching existed.
        """
        opts: Dict[str, Any] = {}
        if self.batch_size != 1:
            opts["batch_size"] = self.batch_size
        if self.batch_linger_ms:
            opts["batch_linger_ms"] = self.batch_linger_ms
        return opts

    def fusion_options(self) -> Dict[str, Any]:
        """The operator-fusion setting as a mapping option (if enabled).

        ``fuse=False`` stays absent, like the other transport defaults, so
        a default-configured engine hands mappings exactly the options it
        did before fusion existed.
        """
        if self.fuse is False:
            return {}
        if self.fuse not in (True, "auto"):
            raise TypeError(f"fuse must be True, False or 'auto', got {self.fuse!r}")
        return {"fuse": self.fuse}

    def resolved_platform(self) -> PlatformProfile:
        if isinstance(self.platform, PlatformProfile):
            return self.platform
        return get_platform(self.platform)


class Engine:
    """Reusable enactment facade over the mapping registry.

    Parameters mirror :class:`RunConfig`; extra keyword arguments become
    mapping options (``Engine(mapping="dyn_auto_multi", session_chunk=16)``).
    """

    def __init__(
        self,
        mapping: str = AUTO,
        platform: Union[PlatformProfile, str] = LAPTOP,
        processes: int = 1,
        time_scale: float = 1.0,
        seed: int = 0,
        prefer: Union[str, Sequence[str], None] = None,
        batch_size: int = 1,
        batch_linger_ms: float = 0.0,
        fuse: Union[bool, str] = False,
        checkpoint_interval: Optional[int] = None,
        state_store: Optional[Any] = None,
        options: Optional[Dict[str, Any]] = None,
        **extra_options: Any,
    ) -> None:
        merged_options = dict(options or {})
        merged_options.update(extra_options)
        _check_option_typos(merged_options)
        self.config = RunConfig(
            mapping=mapping,
            platform=platform,
            processes=processes,
            time_scale=time_scale,
            seed=seed,
            prefer=prefer,
            batch_size=batch_size,
            batch_linger_ms=batch_linger_ms,
            fuse=fuse,
            checkpoint_interval=checkpoint_interval,
            state_store=state_store,
            options=merged_options,
        )
        # One-time platform resolution; per-name engine cache across runs.
        self._platform = self.config.resolved_platform()
        self._engines: Dict[str, Mapping] = {}
        self._closed = False

    @classmethod
    def from_config(cls, config: RunConfig) -> "Engine":
        _check_option_typos(config.options)
        engine = cls.__new__(cls)
        engine.config = config
        engine._platform = config.resolved_platform()
        engine._engines = {}
        engine._closed = False
        return engine

    # ----------------------------------------------------------- resolution
    @property
    def platform(self) -> PlatformProfile:
        return self._platform

    def resolve_mapping(
        self, graph: Any, processes: Optional[int] = None
    ) -> str:
        """The mapping name a run of ``graph`` would use (selection only)."""
        return self._resolve(
            coerce_graph(graph),
            self.config.mapping,
            processes if processes is not None else self.config.processes,
        )

    def _resolve(self, graph: WorkflowGraph, name: str, processes: int) -> str:
        """Shared selection path for :meth:`run` and :meth:`resolve_mapping`."""
        if name != AUTO:
            return name
        return select_mapping(
            graph,
            platform=self._platform,
            prefer=self.config.prefer,
            processes=processes,
        )

    def _engine_for(self, name: str) -> Mapping:
        engine = self._engines.get(name)
        if engine is None:
            engine = get_mapping(name)
            self._engines[name] = engine
        return engine

    # ------------------------------------------------------------------ run
    def run(
        self,
        workflow: Union[WorkflowGraph, Any],
        inputs: InputSpec = None,
        *,
        processes: Optional[int] = None,
        seed: Optional[int] = None,
        mapping: Optional[str] = None,
        time_scale: Optional[float] = None,
        **options: Any,
    ) -> RunResult:
        """Enact a workflow (graph, pipeline, or fluent chain).

        Engine-level settings apply unless overridden per run; ``options``
        merge over (and win against) the engine's configured options.
        """
        if self._closed:
            raise RuntimeError("Engine is closed; create a new one")
        _check_option_typos(options)
        graph = coerce_graph(workflow)
        procs = processes if processes is not None else self.config.processes
        name = self._resolve(
            graph, mapping if mapping is not None else self.config.mapping, procs
        )
        merged = {
            **self.config.recovery_options(),
            **self.config.transport_options(),
            **self.config.fusion_options(),
            **self.config.options,
            **options,
        }
        fuse_request = merged.get("fuse", False)
        if fuse_request not in (False, True, "auto"):
            raise TypeError(
                f"fuse must be True, False or 'auto', got {fuse_request!r}"
            )
        if fuse_request:
            # Same contract as batching below: a mapping that bypasses the
            # shared enactment path would silently run unfused while the
            # user believes chains were collapsed.  "auto" is the soft
            # request -- fuse where supported, skip where not.
            caps = get_capabilities(name)
            if not caps.fusion:
                if fuse_request == "auto":
                    merged.pop("fuse")
                else:
                    raise UnsupportedFeatureError(
                        f"operator fusion requested (fuse=True) but mapping "
                        f"{name!r} does not support fusion; pick a fusing "
                        f"mapping, use fuse='auto', or drop the option"
                    )
        if merged.get("batch_size", 1) != 1 or merged.get("batch_linger_ms", 0):
            # Same contract as the recovery gate below: a mapping that
            # ignores the transport knobs would silently run unbatched
            # while the user believes they tuned the data plane.
            caps = get_capabilities(name)
            if not caps.batching:
                raise UnsupportedFeatureError(
                    f"batched transport requested (batch_size/batch_linger_ms) "
                    f"but mapping {name!r} does not support batching; pick a "
                    f"batching mapping or drop the transport options"
                )
        if "checkpoint_interval" in merged or "state_store" in merged:
            # Silently dropping the knobs would leave the user believing
            # their pinned state is crash-safe when it is not.  State
            # checkpointing needs a mapping that both pins stateful
            # instances and recovers them -- reclaim-only recoverability
            # (dyn_redis) does not qualify.
            caps = get_capabilities(name)
            if not (caps.recoverable and caps.stateful):
                raise UnsupportedFeatureError(
                    f"checkpoint/restore requested (checkpoint_interval/"
                    f"state_store) but mapping {name!r} does not support "
                    f"stateful checkpointing; use hybrid_redis or drop the "
                    f"recovery options"
                )
        return self._engine_for(name).execute(
            graph,
            inputs=inputs,
            processes=procs,
            platform=self._platform,
            time_scale=time_scale if time_scale is not None else self.config.time_scale,
            seed=seed if seed is not None else self.config.seed,
            **merged,
        )

    def with_options(self, **changes: Any) -> "Engine":
        """A new engine with updated settings (the caches start fresh).

        Like the constructor, keyword arguments that are not
        :class:`RunConfig` fields become mapping options.
        """
        options = dict(self.config.options)
        config_fields = {f.name for f in fields(RunConfig)}
        field_changes = {}
        option_changes = dict(changes.pop("options", {}))
        for key in list(changes):
            if key in config_fields:
                field_changes[key] = changes.pop(key)
            else:
                option_changes[key] = changes.pop(key)
        _check_option_typos(option_changes)
        options.update(option_changes)
        config = replace(self.config, **field_changes, options=options)
        return Engine.from_config(config)

    # -------------------------------------------------------------- context
    def close(self) -> None:
        """Release cached mapping engines; the engine refuses further runs."""
        self._engines.clear()
        self._closed = True

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Engine(mapping={self.config.mapping!r}, "
            f"platform={self._platform.name!r}, "
            f"processes={self.config.processes}, {state})"
        )
