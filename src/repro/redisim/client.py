"""Client facade over :class:`repro.redisim.server.RedisServer`.

The client exists for three reasons:

1. **API fidelity** -- method names and signatures mirror redis-py, so the
   mappings read exactly like code written against a real Redis server and
   could be pointed at one by swapping this class out.
2. **Marshalling realism** -- a real Redis client pickles/encodes payloads and
   ships them over a socket.  We keep the pickle round-trip for task payloads
   (stream fields and list values), which both models the serialization cost
   and guarantees producer/consumer isolation: a consumer can never observe
   mutations the producer makes after sending (the same guarantee processes
   get for free).
3. **Latency injection** -- ``op_latency`` adds a configurable nominal
   round-trip delay per command.  This is the knob that reproduces the
   paper's consistent observation that the Redis mappings are somewhat
   slower than their Multiprocessing counterparts (Section 5.6).

Each client instance tracks how many commands it issued (``ops``) so
benchmarks can report communication volume.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.redisim.server import RedisServer
from repro.runtime.clock import Clock


def _dumps(value: Any) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def _loads(value: Any) -> Any:
    if isinstance(value, bytes):
        return pickle.loads(value)
    return value


class Pipeline:
    """Batched command execution: one round trip, one lock acquisition.

    Mirrors redis-py's pipeline: queue commands, then :meth:`execute`.
    Payload values are encoded at queue time (as a real client would
    serialize into its output buffer); the single latency charge models the
    one round trip that makes pipelining worthwhile on a real deployment.
    """

    def __init__(self, client: "RedisClient") -> None:
        self._client = client
        self._commands: List[tuple] = []

    def __len__(self) -> int:
        return len(self._commands)

    def _queue(self, name: str, *args: Any, **kwargs: Any) -> "Pipeline":
        self._commands.append((name, args, kwargs))
        return self

    def set(self, key: str, value: Any) -> "Pipeline":
        return self._queue("set", key, value)

    def incrby(self, key: str, amount: int = 1) -> "Pipeline":
        return self._queue("incrby", key, amount)

    incr = incrby

    def decrby(self, key: str, amount: int = 1) -> "Pipeline":
        return self._queue("decrby", key, amount)

    decr = decrby

    def rpush(self, key: str, *values: Any) -> "Pipeline":
        encoded = tuple(self._client._enc(v) for v in values)
        return self._queue("rpush", key, *encoded)

    def rpush_seq(self, key: str, *values: Any) -> "Pipeline":
        encoded = tuple(self._client._enc(v) for v in values)
        return self._queue("rpushseq", key, *encoded)

    def ltrim(self, key: str, start: int, end: int) -> "Pipeline":
        return self._queue("ltrim", key, start, end)

    def lpush(self, key: str, *values: Any) -> "Pipeline":
        encoded = tuple(self._client._enc(v) for v in values)
        return self._queue("lpush", key, *encoded)

    def xadd(self, key: str, fields: Mapping[str, Any], id: str = "*") -> "Pipeline":  # noqa: A002
        return self._queue("xadd", key, self._client._enc_fields(fields), entry_id=id)

    def xack(self, key: str, group: str, *entry_ids: str) -> "Pipeline":
        return self._queue("xack", key, group, *entry_ids)

    def xack_decr(
        self, key: str, group: str, entry_id: str, counter_key: str, amount: int = 1
    ) -> "Pipeline":
        return self._queue("xackdecr", key, group, entry_id, counter_key, amount)

    def delete(self, *keys: str) -> "Pipeline":
        return self._queue("delete", *keys)

    def execute(self) -> List[Any]:
        """Run the batch; clears the pipeline and returns per-command results."""
        if not self._commands:
            return []
        self._client._charge()
        commands, self._commands = self._commands, []
        return self._client._server.transaction(commands)


class RedisClient:
    """A connection-like handle to an in-process :class:`RedisServer`.

    Parameters
    ----------
    server:
        Shared server instance (one per "deployment").
    op_latency:
        Nominal seconds of round-trip latency charged per command; scaled by
        ``clock``.  ``0`` disables latency injection.
    clock:
        Clock used to charge latency.  Required when ``op_latency > 0``.
    serialize:
        Pickle payload values (stream fields / list items).  Leave enabled
        for realistic isolation; disable only in micro-benchmarks that want
        to measure raw data-structure cost.
    """

    def __init__(
        self,
        server: RedisServer,
        op_latency: float = 0.0,
        clock: Optional[Clock] = None,
        serialize: bool = True,
    ) -> None:
        if op_latency < 0:
            raise ValueError("op_latency must be >= 0")
        if op_latency > 0 and clock is None:
            raise ValueError("a clock is required when op_latency > 0")
        self._server = server
        self._latency = op_latency
        self._clock = clock
        self._serialize = serialize
        self._pid = os.getpid()
        self.ops = 0

    # ------------------------------------------------------------------ util
    def _charge(self) -> None:
        # Per-pid guard (the SafeRedis pattern real clients use): a client
        # inherited across fork() must reset per-process handles before its
        # first command in the child, so spawn and fork behave identically.
        if os.getpid() != self._pid:
            self._on_fork()
            self._pid = os.getpid()
        self.ops += 1
        if self._latency > 0 and self._clock is not None:
            self._clock.sleep(self._latency)

    def _on_fork(self) -> None:
        """Reset state that must not be shared with the parent process.

        The in-process client holds no sockets, but the op counter is
        per-connection accounting: a forked child starts its own tally
        rather than double-counting the parent's.  Transports with real
        per-process handles (see :class:`repro.net.client.
        SocketRedisClient`'s pool) discard them at the same point.
        """
        self.ops = 0

    def _enc(self, value: Any) -> Any:
        return _dumps(value) if self._serialize else value

    def _dec(self, value: Any) -> Any:
        return _loads(value) if self._serialize else value

    def _enc_fields(self, fields: Mapping[str, Any]) -> Dict[str, Any]:
        return {name: self._enc(value) for name, value in fields.items()}

    def _dec_fields(self, fields: Mapping[str, Any]) -> Dict[str, Any]:
        return {name: self._dec(value) for name, value in fields.items()}

    def _dec_entries(
        self, entries: List[Tuple[str, Dict[str, Any]]]
    ) -> List[Tuple[str, Dict[str, Any]]]:
        return [(eid, self._dec_fields(fields)) for eid, fields in entries]

    def pipeline(self) -> Pipeline:
        """Start a command batch (single round trip on execute)."""
        return Pipeline(self)

    # --------------------------------------------------------------- generic
    def flushall(self) -> None:
        self._charge()
        self._server.flushall()

    def dbsize(self) -> int:
        self._charge()
        return self._server.dbsize()

    def keys(self, pattern: str = "*") -> List[str]:
        self._charge()
        return self._server.keys(pattern)

    def type(self, key: str) -> str:
        self._charge()
        return self._server.type(key)

    def delete(self, *keys: str) -> int:
        self._charge()
        return self._server.delete(*keys)

    def exists(self, *keys: str) -> int:
        self._charge()
        return self._server.exists(*keys)

    # --------------------------------------------------------------- strings
    def set(self, key: str, value: Any) -> bool:
        self._charge()
        return self._server.set(key, value)

    def get(self, key: str) -> Any:
        self._charge()
        return self._server.get(key)

    def incrby(self, key: str, amount: int = 1) -> int:
        self._charge()
        return self._server.incrby(key, amount)

    incr = incrby

    def decrby(self, key: str, amount: int = 1) -> int:
        self._charge()
        return self._server.decrby(key, amount)

    decr = decrby

    # ----------------------------------------------------------------- lists
    def lpush(self, key: str, *values: Any) -> int:
        self._charge()
        return self._server.lpush(key, *(self._enc(v) for v in values))

    def rpush(self, key: str, *values: Any) -> int:
        self._charge()
        return self._server.rpush(key, *(self._enc(v) for v in values))

    def lpop(self, key: str) -> Any:
        self._charge()
        value = self._server.lpop(key)
        return None if value is None else self._dec(value)

    def rpop(self, key: str) -> Any:
        self._charge()
        value = self._server.rpop(key)
        return None if value is None else self._dec(value)

    def blpop(
        self, keys: "str | Iterable[str]", timeout: Optional[float] = None
    ) -> Optional[Tuple[str, Any]]:
        self._charge()
        if isinstance(keys, str):
            keys = [keys]
        hit = self._server.blpop(keys, timeout=timeout)
        if hit is None:
            return None
        key, value = hit
        return key, self._dec(value)

    def llen(self, key: str) -> int:
        self._charge()
        return self._server.llen(key)

    def lrange(self, key: str, start: int, end: int) -> List[Any]:
        self._charge()
        return [self._dec(v) for v in self._server.lrange(key, start, end)]

    def ltrim(self, key: str, start: int, end: int) -> bool:
        self._charge()
        return self._server.ltrim(key, start, end)

    # ------------------------------------------------- sequenced lists
    def rpush_seq(self, key: str, *values: Any) -> List[int]:
        """RPUSHSEQ: append values tagged with monotonic per-key sequences."""
        self._charge()
        return self._server.rpushseq(key, *(self._enc(v) for v in values))

    def blmove_seq(
        self, source: str, destination: str, timeout: Optional[float] = None
    ) -> Optional[Tuple[int, Any]]:
        """Blocking move of one sequenced entry; returns ``(seq, value)``.

        The raw ``(seq, blob)`` pair lands on ``destination`` untouched, so
        a recovering consumer replaying ``destination`` sees exactly what
        was delivered (see :meth:`lrange_seq`).
        """
        self._charge()
        hit = self._server.blmove(source, destination, timeout=timeout)
        if hit is None:
            return None
        seq, value = hit
        return seq, self._dec(value)

    def lrange_seq(self, key: str, start: int = 0, end: int = -1) -> List[Tuple[int, Any]]:
        """LRANGE over a sequenced list, decoding to ``(seq, value)`` pairs."""
        self._charge()
        return [
            (seq, self._dec(value))
            for seq, value in self._server.lrange(key, start, end)
        ]

    # ------------------------------------------------------------- snapshots
    def snapshot(self, key: str, snapshot_id: str, seq: int, state: Any) -> bool:
        """SNAPSHOT: persist an instance-state blob guarded by ``seq``."""
        self._charge()
        return self._server.snapshot(key, snapshot_id, seq, self._enc(state))

    def restore(self, key: str, snapshot_id: str) -> Optional[Tuple[int, Any]]:
        """RESTORE: fetch the latest ``(seq, state)`` snapshot, or ``None``."""
        self._charge()
        hit = self._server.restore(key, snapshot_id)
        if hit is None:
            return None
        seq, blob = hit
        return seq, self._dec(blob)

    # ---------------------------------------------------------------- hashes
    def hset(self, key: str, field: str, value: Any) -> int:
        self._charge()
        return self._server.hset(key, field, value)

    def hget(self, key: str, field: str) -> Any:
        self._charge()
        return self._server.hget(key, field)

    def hdel(self, key: str, *fields: str) -> int:
        self._charge()
        return self._server.hdel(key, *fields)

    def hgetall(self, key: str) -> Dict[str, Any]:
        self._charge()
        return self._server.hgetall(key)

    def hlen(self, key: str) -> int:
        self._charge()
        return self._server.hlen(key)

    def hincrby(self, key: str, field: str, amount: int = 1) -> int:
        self._charge()
        return self._server.hincrby(key, field, amount)

    # ------------------------------------------------------------------ sets
    def sadd(self, key: str, *members: Any) -> int:
        self._charge()
        return self._server.sadd(key, *members)

    def srem(self, key: str, *members: Any) -> int:
        self._charge()
        return self._server.srem(key, *members)

    def smembers(self, key: str) -> set:
        self._charge()
        return self._server.smembers(key)

    def scard(self, key: str) -> int:
        self._charge()
        return self._server.scard(key)

    def sismember(self, key: str, member: Any) -> bool:
        self._charge()
        return self._server.sismember(key, member)

    # --------------------------------------------------------------- streams
    def xadd(
        self,
        key: str,
        fields: Mapping[str, Any],
        id: str = "*",  # noqa: A002 - redis-py parameter name
        maxlen: Optional[int] = None,
    ) -> str:
        self._charge()
        return self._server.xadd(key, self._enc_fields(fields), entry_id=id, maxlen=maxlen)

    def xlen(self, key: str) -> int:
        self._charge()
        return self._server.xlen(key)

    def xtrim(self, key: str, maxlen: int) -> int:
        self._charge()
        return self._server.xtrim(key, maxlen)

    def xrange(
        self,
        key: str,
        min: str = "-",  # noqa: A002 - redis-py parameter name
        max: str = "+",  # noqa: A002 - redis-py parameter name
        count: Optional[int] = None,
    ) -> List[Tuple[str, Dict[str, Any]]]:
        self._charge()
        return self._dec_entries(self._server.xrange(key, min, max, count))

    def xread(
        self,
        streams: Mapping[str, str],
        count: Optional[int] = None,
        block: Optional[int] = None,
    ) -> List[Tuple[str, List[Tuple[str, Dict[str, Any]]]]]:
        self._charge()
        reply = self._server.xread(streams, count=count, block_ms=block)
        return [(key, self._dec_entries(entries)) for key, entries in reply]

    def xgroup_create(
        self, key: str, group: str, id: str = "$", mkstream: bool = False  # noqa: A002
    ) -> bool:
        self._charge()
        return self._server.xgroup_create(key, group, entry_id=id, mkstream=mkstream)

    def xgroup_destroy(self, key: str, group: str) -> int:
        self._charge()
        return self._server.xgroup_destroy(key, group)

    def xgroup_delconsumer(self, key: str, group: str, consumer: str) -> int:
        self._charge()
        return self._server.xgroup_delconsumer(key, group, consumer)

    def xreadgroup(
        self,
        groupname: str,
        consumername: str,
        streams: Mapping[str, str],
        count: Optional[int] = None,
        block: Optional[int] = None,
        noack: bool = False,
    ) -> List[Tuple[str, List[Tuple[str, Dict[str, Any]]]]]:
        self._charge()
        reply = self._server.xreadgroup(
            groupname, consumername, streams, count=count, block_ms=block, noack=noack
        )
        return [(key, self._dec_entries(entries)) for key, entries in reply]

    def xack(self, key: str, group: str, *entry_ids: str) -> int:
        self._charge()
        return self._server.xack(key, group, *entry_ids)

    def xack_decr(
        self, key: str, group: str, entry_id: str, counter_key: str, amount: int = 1
    ) -> int:
        """XACK + conditional DECRBY in one atomic server-side step.

        ``amount`` is the entry's work-unit count (``len(batch)`` for batch
        envelopes), released all-or-nothing with the ack.
        """
        self._charge()
        return self._server.xackdecr(key, group, entry_id, counter_key, amount)

    def xpending(self, key: str, group: str) -> Dict[str, Any]:
        self._charge()
        return self._server.xpending(key, group)

    def xpending_range(
        self,
        key: str,
        group: str,
        min: str = "-",  # noqa: A002
        max: str = "+",  # noqa: A002
        count: int = 10,
        consumername: Optional[str] = None,
        idle: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        self._charge()
        return self._server.xpending_range(
            key, group, min, max, count, consumer=consumername, min_idle_ms=idle
        )

    def xclaim(
        self,
        key: str,
        group: str,
        consumername: str,
        min_idle_time: float,
        message_ids: Iterable[str],
    ) -> List[Tuple[str, Dict[str, Any]]]:
        self._charge()
        claimed = self._server.xclaim(key, group, consumername, min_idle_time, message_ids)
        return self._dec_entries(claimed)

    def xautoclaim(
        self,
        key: str,
        group: str,
        consumername: str,
        min_idle_time: float,
        start_id: str = "0-0",
        count: int = 100,
    ) -> Tuple[str, List[Tuple[str, Dict[str, Any]]]]:
        self._charge()
        cursor, claimed = self._server.xautoclaim(
            key, group, consumername, min_idle_time, start=start_id, count=count
        )
        return cursor, self._dec_entries(claimed)

    def xinfo_stream(self, key: str) -> Dict[str, Any]:
        self._charge()
        return self._server.xinfo_stream(key)

    def xinfo_groups(self, key: str) -> List[Dict[str, Any]]:
        self._charge()
        return self._server.xinfo_groups(key)

    def xinfo_consumers(self, key: str, group: str) -> List[Dict[str, Any]]:
        self._charge()
        return self._server.xinfo_consumers(key, group)
