"""Thread-safe in-process Redis server.

Holds a single keyspace mapping keys to typed values (string, list, hash,
set, stream) and implements the command subset the workflow mappings use.
All commands run under one re-entrant lock; blocking commands (``BLPOP``,
blocking ``XREAD``/``XREADGROUP``) wait on a condition variable that every
mutation notifies, which mirrors the event-driven wakeup behaviour of a real
Redis client connection.

Commands follow the semantics documented at redis.io closely; deliberate
simplifications (no expiry, no persistence, no cluster) are listed in the
package docstring.
"""

from __future__ import annotations

import fnmatch
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.redisim.errors import (
    BusyGroupError,
    ConnectionError,
    NoGroupError,
    RedisError,
    WrongTypeError,
)
from repro.redisim.streams import (
    MAX_ID,
    MIN_ID,
    ConsumerGroup,
    PendingEntry,
    Stream,
    StreamEntry,
    StreamID,
)

_TYPE_STRING = "string"
_TYPE_LIST = "list"
_TYPE_HASH = "hash"
_TYPE_SET = "set"
_TYPE_STREAM = "stream"


def _parse_range_id(raw: str, *, is_start: bool) -> StreamID:
    """Parse XRANGE-style boundary IDs (``-`` and ``+`` sentinels allowed)."""
    if raw == "-":
        return MIN_ID
    if raw == "+":
        return MAX_ID
    return StreamID.parse(raw, default_seq=0 if is_start else (2**63 - 1))


class RedisServer:
    """The in-process server: one keyspace, one big lock, condition wakeups.

    Parameters
    ----------
    now:
        Monotonic time source (seconds).  Injectable for deterministic tests
        of idle-time behaviour.
    """

    def __init__(self, now: Callable[[], float] = time.monotonic) -> None:
        self._now = now
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._data: Dict[str, Tuple[str, Any]] = {}
        self._seq: Dict[str, int] = {}
        self._closed = False
        self.command_count: Dict[str, int] = {}

    # ------------------------------------------------------------- lifecycle
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the server down, waking every blocked reader.

        Clients parked in blocking commands (``BLPOP``, ``BLMOVE``, blocking
        ``XREAD``/``XREADGROUP``) are released immediately with
        :class:`~repro.redisim.errors.ConnectionError` -- without this, a
        reader blocked with ``timeout=None`` would hang forever once the
        server goes away, because nothing would ever notify its condition
        variable again.  Non-blocking commands issued after close also fail
        with :class:`~repro.redisim.errors.ConnectionError`.  Idempotent.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionError("redisim server is closed")

    # ------------------------------------------------------------------ util
    def _count(self, command: str) -> None:
        self._check_open()
        self.command_count[command] = self.command_count.get(command, 0) + 1

    def _get_typed(self, key: str, expected: str) -> Any:
        slot = self._data.get(key)
        if slot is None:
            return None
        actual, value = slot
        if actual != expected:
            raise WrongTypeError(key, expected, actual)
        return value

    def _now_ms(self) -> int:
        return int(self._now() * 1000)

    def time_ms(self) -> int:
        """Server clock in milliseconds (used by tests)."""
        with self._lock:
            return self._now_ms()

    # ----------------------------------------------------------- transactions
    #: Commands executable inside a transaction (MULTI/EXEC equivalent).
    _TXN_COMMANDS = frozenset(
        {
            "set", "get", "incrby", "decrby", "delete",
            "lpush", "rpush", "rpushseq", "lpop", "rpop", "ltrim",
            "hset", "hdel", "hincrby", "sadd", "srem",
            "xadd", "xack", "xackdecr", "xtrim", "snapshot",
        }
    )

    def transaction(self, commands):
        """Execute a command batch atomically under one lock acquisition.

        The in-process equivalent of Redis MULTI/EXEC (or a pipeline with a
        single round trip): ``commands`` is a list of
        ``(name, args, kwargs)`` triples restricted to
        :data:`_TXN_COMMANDS`.  Returns the list of results.  One wakeup is
        issued at the end instead of one per command -- under contention
        this collapses the per-command lock/GIL handoff storm that
        dominates fine-grained task streams.
        """
        results = []
        with self._cond:
            for name, args, kwargs in commands:
                if name not in self._TXN_COMMANDS:
                    raise RedisError(f"command {name!r} not allowed in a transaction")
                results.append(getattr(self, name)(*args, **kwargs))
            self._cond.notify_all()
        return results

    # --------------------------------------------------------------- generic
    def flushall(self) -> None:
        with self._cond:
            self._count("flushall")
            self._data.clear()
            self._seq.clear()
            self._cond.notify_all()

    def dbsize(self) -> int:
        with self._lock:
            self._count("dbsize")
            return len(self._data)

    def keys(self, pattern: str = "*") -> List[str]:
        with self._lock:
            self._count("keys")
            return [k for k in self._data if fnmatch.fnmatchcase(k, pattern)]

    def type(self, key: str) -> str:
        with self._lock:
            self._count("type")
            slot = self._data.get(key)
            return "none" if slot is None else slot[0]

    def delete(self, *keys: str) -> int:
        with self._cond:
            self._count("delete")
            removed = 0
            for key in keys:
                self._seq.pop(key, None)
                if key in self._data:
                    del self._data[key]
                    removed += 1
            if removed:
                self._cond.notify_all()
            return removed

    def exists(self, *keys: str) -> int:
        with self._lock:
            self._count("exists")
            return sum(1 for key in keys if key in self._data)

    # --------------------------------------------------------------- strings
    def set(self, key: str, value: Any) -> bool:
        # No notify: nothing blocks on string values, and waking every
        # BLPOP/XREADGROUP waiter per counter write is pure contention.
        with self._cond:
            self._count("set")
            self._data[key] = (_TYPE_STRING, value)
            return True

    def get(self, key: str) -> Any:
        with self._lock:
            self._count("get")
            return self._get_typed(key, _TYPE_STRING)

    def incrby(self, key: str, amount: int = 1) -> int:
        with self._cond:
            self._count("incrby")
            current = self._get_typed(key, _TYPE_STRING)
            if current is None:
                current = 0
            try:
                new_value = int(current) + amount
            except (TypeError, ValueError) as exc:
                raise RedisError(f"value at {key!r} is not an integer") from exc
            self._data[key] = (_TYPE_STRING, new_value)
            return new_value

    def decrby(self, key: str, amount: int = 1) -> int:
        return self.incrby(key, -amount)

    # ----------------------------------------------------------------- lists
    def _list_for_write(self, key: str) -> deque:
        value = self._get_typed(key, _TYPE_LIST)
        if value is None:
            value = deque()
            self._data[key] = (_TYPE_LIST, value)
        return value

    def lpush(self, key: str, *values: Any) -> int:
        with self._cond:
            self._count("lpush")
            lst = self._list_for_write(key)
            for value in values:
                lst.appendleft(value)
            self._cond.notify_all()
            return len(lst)

    def rpush(self, key: str, *values: Any) -> int:
        with self._cond:
            self._count("rpush")
            lst = self._list_for_write(key)
            for value in values:
                lst.append(value)
            self._cond.notify_all()
            return len(lst)

    def _pop(self, key: str, left: bool) -> Any:
        lst = self._get_typed(key, _TYPE_LIST)
        if not lst:
            return None
        value = lst.popleft() if left else lst.pop()
        if not lst:
            del self._data[key]
        return value

    def lpop(self, key: str) -> Any:
        with self._cond:
            self._count("lpop")
            return self._pop(key, left=True)

    def rpop(self, key: str) -> Any:
        with self._cond:
            self._count("rpop")
            return self._pop(key, left=False)

    def blpop(
        self, keys: Iterable[str], timeout: Optional[float] = None
    ) -> Optional[Tuple[str, Any]]:
        """Blocking left-pop across ``keys``; ``None`` on timeout.

        ``timeout`` is in seconds; ``None`` or ``0`` blocks forever (as in
        Redis, where 0 means block indefinitely).
        """
        keys = list(keys)
        deadline = None
        if timeout:
            deadline = self._now() + timeout
        with self._cond:
            self._count("blpop")
            while True:
                self._check_open()
                for key in keys:
                    lst = self._get_typed(key, _TYPE_LIST)
                    if lst:
                        return key, self._pop(key, left=True)
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - self._now()
                    if remaining <= 0 or not self._cond.wait(timeout=remaining):
                        self._check_open()
                        return None

    def blmove(
        self, source: str, destination: str, timeout: Optional[float] = None
    ) -> Any:
        """Blocking ``LMOVE source destination LEFT RIGHT``; ``None`` on timeout.

        Atomically pops the head of ``source`` and appends it to the tail of
        ``destination`` -- the reliable-queue idiom (redis.io: pattern behind
        ``BLMOVE``): the element is never in limbo, so a consumer that dies
        mid-processing leaves it recoverable on ``destination``.
        """
        deadline = None
        if timeout:
            deadline = self._now() + timeout
        with self._cond:
            self._count("blmove")
            while True:
                self._check_open()
                lst = self._get_typed(source, _TYPE_LIST)
                if lst:
                    value = self._pop(source, left=True)
                    self._list_for_write(destination).append(value)
                    self._cond.notify_all()
                    return value
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - self._now()
                    if remaining <= 0 or not self._cond.wait(timeout=remaining):
                        self._check_open()
                        return None

    def rpushseq(self, key: str, *values: Any) -> List[int]:
        """Append values tagged with a per-key monotonic sequence number.

        Each stored element is a ``(seq, value)`` pair where ``seq`` counts
        total appends to ``key`` since the key space was created -- the
        sequence survives the list emptying out (unlike the list value
        itself), so consumers can use it as a stable replay cursor across
        crashes.  Returns the assigned sequence numbers.
        """
        with self._cond:
            self._count("rpushseq")
            lst = self._list_for_write(key)
            assigned = []
            seq = self._seq.get(key, 0)
            for value in values:
                seq += 1
                lst.append((seq, value))
                assigned.append(seq)
            self._seq[key] = seq
            self._cond.notify_all()
            return assigned

    def ltrim(self, key: str, start: int, end: int) -> bool:
        """Trim the list to ``[start, end]`` (inclusive, as in Redis LTRIM)."""
        with self._cond:
            self._count("ltrim")
            lst = self._get_typed(key, _TYPE_LIST)
            if lst is None:
                return True
            items = list(lst)
            kept = items[start:] if end == -1 else items[start : end + 1]
            if kept:
                self._data[key] = (_TYPE_LIST, deque(kept))
            else:
                del self._data[key]
            return True

    def llen(self, key: str) -> int:
        with self._lock:
            self._count("llen")
            lst = self._get_typed(key, _TYPE_LIST)
            return 0 if lst is None else len(lst)

    def lrange(self, key: str, start: int, end: int) -> List[Any]:
        with self._lock:
            self._count("lrange")
            lst = self._get_typed(key, _TYPE_LIST)
            if lst is None:
                return []
            items = list(lst)
            # Redis end index is inclusive; -1 means "through the last item".
            if end == -1:
                return items[start:]
            return items[start : end + 1]

    # ---------------------------------------------------------------- hashes
    def hset(self, key: str, field: str, value: Any) -> int:
        with self._cond:
            self._count("hset")
            mapping = self._get_typed(key, _TYPE_HASH)
            if mapping is None:
                mapping = {}
                self._data[key] = (_TYPE_HASH, mapping)
            created = 0 if field in mapping else 1
            mapping[field] = value
            return created

    def hget(self, key: str, field: str) -> Any:
        with self._lock:
            self._count("hget")
            mapping = self._get_typed(key, _TYPE_HASH)
            return None if mapping is None else mapping.get(field)

    def hdel(self, key: str, *fields: str) -> int:
        with self._cond:
            self._count("hdel")
            mapping = self._get_typed(key, _TYPE_HASH)
            if mapping is None:
                return 0
            removed = 0
            for field in fields:
                if field in mapping:
                    del mapping[field]
                    removed += 1
            if not mapping:
                del self._data[key]
            return removed

    def hgetall(self, key: str) -> Dict[str, Any]:
        with self._lock:
            self._count("hgetall")
            mapping = self._get_typed(key, _TYPE_HASH)
            return {} if mapping is None else dict(mapping)

    def hlen(self, key: str) -> int:
        with self._lock:
            self._count("hlen")
            mapping = self._get_typed(key, _TYPE_HASH)
            return 0 if mapping is None else len(mapping)

    def hincrby(self, key: str, field: str, amount: int = 1) -> int:
        with self._cond:
            self._count("hincrby")
            mapping = self._get_typed(key, _TYPE_HASH)
            if mapping is None:
                mapping = {}
                self._data[key] = (_TYPE_HASH, mapping)
            try:
                new_value = int(mapping.get(field, 0)) + amount
            except (TypeError, ValueError) as exc:
                raise RedisError(f"hash field {key!r}/{field!r} is not an integer") from exc
            mapping[field] = new_value
            return new_value

    # ------------------------------------------------------------------ sets
    def sadd(self, key: str, *members: Any) -> int:
        with self._cond:
            self._count("sadd")
            value = self._get_typed(key, _TYPE_SET)
            if value is None:
                value = set()
                self._data[key] = (_TYPE_SET, value)
            before = len(value)
            value.update(members)
            return len(value) - before

    def srem(self, key: str, *members: Any) -> int:
        with self._cond:
            self._count("srem")
            value = self._get_typed(key, _TYPE_SET)
            if value is None:
                return 0
            removed = 0
            for member in members:
                if member in value:
                    value.discard(member)
                    removed += 1
            if not value:
                del self._data[key]
            return removed

    def smembers(self, key: str) -> set:
        with self._lock:
            self._count("smembers")
            value = self._get_typed(key, _TYPE_SET)
            return set() if value is None else set(value)

    def scard(self, key: str) -> int:
        with self._lock:
            self._count("scard")
            value = self._get_typed(key, _TYPE_SET)
            return 0 if value is None else len(value)

    def sismember(self, key: str, member: Any) -> bool:
        with self._lock:
            self._count("sismember")
            value = self._get_typed(key, _TYPE_SET)
            return False if value is None else member in value

    # ------------------------------------------------------------- snapshots
    def snapshot(self, key: str, snapshot_id: str, seq: int, blob: Any) -> bool:
        """Store an opaque state snapshot under ``key``/``snapshot_id``.

        Snapshots live in a hash keyed by ``snapshot_id`` (one per pinned PE
        instance), each holding a ``(seq, blob)`` pair.  ``seq`` is the
        replay cursor the snapshot covers; a write with a *lower* sequence
        than the stored one is rejected (returns ``False``), so a stale
        writer -- e.g. a presumed-dead worker checkpointing after its
        instance was already re-pinned and advanced elsewhere -- can never
        clobber newer state.
        """
        with self._cond:
            self._count("snapshot")
            mapping = self._get_typed(key, _TYPE_HASH)
            if mapping is None:
                mapping = {}
                self._data[key] = (_TYPE_HASH, mapping)
            existing = mapping.get(snapshot_id)
            if existing is not None and existing[0] > seq:
                return False
            mapping[snapshot_id] = (int(seq), blob)
            return True

    def restore(self, key: str, snapshot_id: str) -> Optional[Tuple[int, Any]]:
        """Fetch the latest snapshot as ``(seq, blob)``, or ``None``."""
        with self._lock:
            self._count("restore")
            mapping = self._get_typed(key, _TYPE_HASH)
            if mapping is None:
                return None
            return mapping.get(snapshot_id)

    # --------------------------------------------------------------- streams
    def _stream_for_write(self, key: str) -> Stream:
        stream = self._get_typed(key, _TYPE_STREAM)
        if stream is None:
            stream = Stream()
            self._data[key] = (_TYPE_STREAM, stream)
        return stream

    def _stream_or_none(self, key: str) -> Optional[Stream]:
        return self._get_typed(key, _TYPE_STREAM)

    def _group(self, key: str, group: str) -> ConsumerGroup:
        stream = self._stream_or_none(key)
        if stream is None or group not in stream.groups:
            raise NoGroupError(key, group)
        return stream.groups[group]

    def xadd(
        self,
        key: str,
        fields: Mapping[str, Any],
        entry_id: str = "*",
        maxlen: Optional[int] = None,
    ) -> str:
        with self._cond:
            self._count("xadd")
            stream = self._stream_for_write(key)
            new_id = stream.add(fields, now_ms=self._now_ms(), entry_id=entry_id)
            if maxlen is not None:
                stream.trim_maxlen(maxlen)
            self._cond.notify_all()
            return str(new_id)

    def xlen(self, key: str) -> int:
        with self._lock:
            self._count("xlen")
            stream = self._stream_or_none(key)
            return 0 if stream is None else len(stream)

    def xtrim(self, key: str, maxlen: int) -> int:
        with self._cond:
            self._count("xtrim")
            stream = self._stream_or_none(key)
            return 0 if stream is None else stream.trim_maxlen(maxlen)

    def xrange(
        self,
        key: str,
        min_id: str = "-",
        max_id: str = "+",
        count: Optional[int] = None,
    ) -> List[Tuple[str, Dict[str, Any]]]:
        with self._lock:
            self._count("xrange")
            stream = self._stream_or_none(key)
            if stream is None:
                return []
            start = _parse_range_id(min_id, is_start=True)
            end = _parse_range_id(max_id, is_start=False)
            return [(str(e.id), dict(e.fields)) for e in stream.range(start, end, count)]

    def xread(
        self,
        streams: Mapping[str, str],
        count: Optional[int] = None,
        block_ms: Optional[int] = None,
    ) -> List[Tuple[str, List[Tuple[str, Dict[str, Any]]]]]:
        """Plain (group-less) stream read; ``$`` means "only new entries"."""
        deadline = None
        if block_ms is not None:
            deadline = self._now() + block_ms / 1000.0
        with self._cond:
            self._count("xread")
            cursors: Dict[str, StreamID] = {}
            for key, raw in streams.items():
                if raw == "$":
                    stream = self._stream_or_none(key)
                    cursors[key] = stream.last_id if stream is not None else StreamID(0, 0)
                else:
                    cursors[key] = StreamID.parse(raw)
            while True:
                self._check_open()
                reply = []
                for key, last in cursors.items():
                    stream = self._stream_or_none(key)
                    if stream is None:
                        continue
                    entries = stream.after(last, count)
                    if entries:
                        reply.append(
                            (key, [(str(e.id), dict(e.fields)) for e in entries])
                        )
                if reply:
                    return reply
                if block_ms is None:
                    return []
                remaining = deadline - self._now()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    self._check_open()
                    return []

    def last_stream_id(self, key: str) -> str:
        """Current last generated ID of the stream at ``key`` (``0-0`` if absent).

        The TCP front-end uses this to resolve an ``XREAD``'s ``$`` cursor
        to a concrete ID *once* at command entry: its blocking waits are
        sliced (so connection threads can unwind on shutdown), and
        re-evaluating ``$`` per slice would skip every entry that arrived
        between slices.
        """
        with self._lock:
            self._count("last_stream_id")
            stream = self._stream_or_none(key)
            return "0-0" if stream is None else str(stream.last_id)

    def xgroup_create(
        self, key: str, group: str, entry_id: str = "$", mkstream: bool = False
    ) -> bool:
        with self._cond:
            self._count("xgroup_create")
            stream = self._stream_or_none(key)
            if stream is None:
                if not mkstream:
                    raise RedisError(
                        f"stream {key!r} does not exist (use mkstream=True)"
                    )
                stream = self._stream_for_write(key)
            if group in stream.groups:
                raise BusyGroupError(key, group)
            start = stream.last_id if entry_id == "$" else StreamID.parse(entry_id)
            stream.groups[group] = ConsumerGroup(group, last_delivered=start)
            return True

    def xgroup_destroy(self, key: str, group: str) -> int:
        with self._cond:
            self._count("xgroup_destroy")
            stream = self._stream_or_none(key)
            if stream is None or group not in stream.groups:
                return 0
            del stream.groups[group]
            return 1

    def xgroup_delconsumer(self, key: str, group: str, consumer: str) -> int:
        """Remove a consumer; returns the number of pending entries it held."""
        with self._cond:
            self._count("xgroup_delconsumer")
            grp = self._group(key, group)
            member = grp.consumers.pop(consumer, None)
            if member is None:
                return 0
            pending = len(member.pending)
            for entry_id in member.pending:
                grp.pel.pop(entry_id, None)
            return pending

    def xreadgroup(
        self,
        group: str,
        consumer: str,
        streams: Mapping[str, str],
        count: Optional[int] = None,
        block_ms: Optional[int] = None,
        noack: bool = False,
    ) -> List[Tuple[str, List[Tuple[str, Dict[str, Any]]]]]:
        """Consumer-group read.

        ``">"`` delivers entries never delivered to this group (advancing the
        group cursor and inserting into the PEL); an explicit ID replays the
        calling consumer's own pending entries after that ID.
        """
        deadline = None
        if block_ms is not None:
            deadline = self._now() + block_ms / 1000.0
        with self._cond:
            self._count("xreadgroup")
            while True:
                self._check_open()
                reply = []
                now = self._now()
                for key, cursor in streams.items():
                    grp = self._group(key, group)
                    stream = self._stream_or_none(key)
                    member = grp.get_consumer(consumer, now, refresh=False)
                    if cursor == ">":
                        entries = stream.after(grp.last_delivered, count)
                        if entries:
                            member.last_seen = now  # delivery refreshes idle
                            delivered = []
                            for entry in entries:
                                grp.last_delivered = entry.id
                                grp.entries_read += 1
                                if not noack:
                                    grp.pel[entry.id] = PendingEntry(
                                        consumer=consumer, delivery_time=now
                                    )
                                    member.pending.add(entry.id)
                                delivered.append((str(entry.id), dict(entry.fields)))
                            reply.append((key, delivered))
                    else:
                        # Replay this consumer's PEL after the given ID.
                        start = StreamID.parse(cursor)
                        own = sorted(
                            eid for eid in member.pending if eid > start
                        )
                        if count is not None:
                            own = own[:count]
                        replayed = []
                        for entry_id in own:
                            entry = stream.get(entry_id)
                            fields = {} if entry is None else dict(entry.fields)
                            replayed.append((str(entry_id), fields))
                        # Per Redis: replay returns (possibly empty) history
                        # immediately and never blocks.
                        reply.append((key, replayed))
                if any(entries for _, entries in reply):
                    return reply
                if any(cursor != ">" for cursor in streams.values()):
                    # History reads return immediately even when empty.
                    return reply
                if block_ms is None:
                    return []
                remaining = deadline - self._now()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    self._check_open()
                    return []

    def xackdecr(
        self, key: str, group: str, entry_id: str, counter_key: str, amount: int = 1
    ) -> int:
        """XACK one entry and, only if it was still pending, DECRBY a counter.

        The in-process equivalent of the Lua script real deployments pair
        with XAUTOCLAIM: completion counting must be exactly-once per
        entry, and an unconditional ``XACK + DECR`` pipeline double-
        decrements when a reclaimed entry is finished by both its original
        (slow but alive) consumer and its adopter.

        ``amount`` is the number of work units the entry carried -- one for
        a bare task, ``len(batch)`` for a batch envelope -- so counted
        termination stays exact at batch granularity: either the whole
        envelope's credits are released (first successful ack) or none are.
        """
        if amount < 1:
            raise RedisError(f"xackdecr amount must be >= 1, got {amount}")
        with self._cond:
            self._count("xackdecr")
            acked = self.xack(key, group, entry_id)
            if acked:
                self.decrby(counter_key, amount)
            return acked

    def xack(self, key: str, group: str, *entry_ids: str) -> int:
        with self._cond:
            self._count("xack")
            grp = self._group(key, group)
            now = self._now()
            acked = 0
            for raw in entry_ids:
                entry_id = StreamID.parse(raw)
                pending = grp.pel.pop(entry_id, None)
                if pending is not None:
                    member = grp.consumers.get(pending.consumer)
                    if member is not None:
                        member.pending.discard(entry_id)
                        member.last_seen = now
                    acked += 1
            return acked

    def xpending(self, key: str, group: str) -> Dict[str, Any]:
        """Summary form: count, min/max pending IDs, per-consumer counts."""
        with self._lock:
            self._count("xpending")
            grp = self._group(key, group)
            if not grp.pel:
                return {"pending": 0, "min": None, "max": None, "consumers": {}}
            ids = sorted(grp.pel)
            per_consumer: Dict[str, int] = {}
            for entry in grp.pel.values():
                per_consumer[entry.consumer] = per_consumer.get(entry.consumer, 0) + 1
            return {
                "pending": len(ids),
                "min": str(ids[0]),
                "max": str(ids[-1]),
                "consumers": per_consumer,
            }

    def xpending_range(
        self,
        key: str,
        group: str,
        min_id: str = "-",
        max_id: str = "+",
        count: int = 10,
        consumer: Optional[str] = None,
        min_idle_ms: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Extended form: per-entry pending details, optionally filtered."""
        with self._lock:
            self._count("xpending_range")
            grp = self._group(key, group)
            now = self._now()
            start = _parse_range_id(min_id, is_start=True)
            end = _parse_range_id(max_id, is_start=False)
            rows = []
            for entry_id in sorted(grp.pel):
                if not (start <= entry_id <= end):
                    continue
                pending = grp.pel[entry_id]
                if consumer is not None and pending.consumer != consumer:
                    continue
                idle = (now - pending.delivery_time) * 1000.0
                if min_idle_ms is not None and idle < min_idle_ms:
                    continue
                rows.append(
                    {
                        "message_id": str(entry_id),
                        "consumer": pending.consumer,
                        "time_since_delivered": idle,
                        "times_delivered": pending.delivery_count,
                    }
                )
                if len(rows) >= count:
                    break
            return rows

    def xclaim(
        self,
        key: str,
        group: str,
        consumer: str,
        min_idle_ms: float,
        entry_ids: Iterable[str],
    ) -> List[Tuple[str, Dict[str, Any]]]:
        """Transfer ownership of sufficiently idle pending entries."""
        with self._cond:
            self._count("xclaim")
            grp = self._group(key, group)
            stream = self._stream_or_none(key)
            now = self._now()
            claimer = grp.get_consumer(consumer, now)
            claimed = []
            for raw in entry_ids:
                entry_id = StreamID.parse(raw)
                pending = grp.pel.get(entry_id)
                if pending is None:
                    continue
                idle = (now - pending.delivery_time) * 1000.0
                if idle < min_idle_ms:
                    continue
                previous = grp.consumers.get(pending.consumer)
                if previous is not None:
                    previous.pending.discard(entry_id)
                entry = stream.get(entry_id)
                if entry is None:
                    # Entry was trimmed: Redis deletes such PEL records.
                    del grp.pel[entry_id]
                    continue
                pending.consumer = consumer
                pending.delivery_time = now
                pending.delivery_count += 1
                claimer.pending.add(entry_id)
                claimed.append((str(entry_id), dict(entry.fields)))
            return claimed

    def xautoclaim(
        self,
        key: str,
        group: str,
        consumer: str,
        min_idle_ms: float,
        start: str = "0-0",
        count: int = 100,
    ) -> Tuple[str, List[Tuple[str, Dict[str, Any]]]]:
        """Scan the PEL from ``start`` claiming idle entries; returns cursor."""
        with self._cond:
            self._count("xautoclaim")
            grp = self._group(key, group)
            start_id = StreamID.parse(start)
            candidates = sorted(eid for eid in grp.pel if eid >= start_id)
            claimed = self.xclaim(
                key, group, consumer, min_idle_ms, [str(e) for e in candidates[:count]]
            )
            if len(candidates) > count:
                cursor = str(candidates[count])
            else:
                cursor = "0-0"
            return cursor, claimed

    def xinfo_stream(self, key: str) -> Dict[str, Any]:
        with self._lock:
            self._count("xinfo_stream")
            stream = self._stream_or_none(key)
            if stream is None:
                raise RedisError(f"no such key {key!r}")
            return {
                "length": len(stream),
                "last-generated-id": str(stream.last_id),
                "groups": len(stream.groups),
                "entries-added": stream.length_added,
            }

    def xinfo_groups(self, key: str) -> List[Dict[str, Any]]:
        with self._lock:
            self._count("xinfo_groups")
            stream = self._stream_or_none(key)
            if stream is None:
                raise RedisError(f"no such key {key!r}")
            rows = []
            for grp in stream.groups.values():
                lag = len(stream.after(grp.last_delivered))
                rows.append(
                    {
                        "name": grp.name,
                        "consumers": len(grp.consumers),
                        "pending": len(grp.pel),
                        "last-delivered-id": str(grp.last_delivered),
                        "entries-read": grp.entries_read,
                        "lag": lag,
                    }
                )
            return rows

    def xinfo_consumers(self, key: str, group: str) -> List[Dict[str, Any]]:
        """Per-consumer state; ``idle`` (ms) feeds the auto-scaling strategy."""
        with self._lock:
            self._count("xinfo_consumers")
            grp = self._group(key, group)
            now = self._now()
            return [
                {
                    "name": member.name,
                    "pending": len(member.pending),
                    "idle": member.idle_ms(now),
                }
                for member in grp.consumers.values()
            ]
