"""Error hierarchy mirroring the errors redis-py raises for the same misuse."""

from __future__ import annotations


class RedisError(Exception):
    """Base class for all errors raised by the in-process Redis substrate."""


class ConnectionError(RedisError):  # noqa: A001 - redis-py shadows the builtin too
    """Server is shut down (or shutting down) under a blocked/issuing client.

    Mirrors ``redis.exceptions.ConnectionError``: clients parked in blocking
    reads (``BLPOP``, ``BLMOVE``, blocking ``XREAD``/``XREADGROUP``) are
    woken with this error when the server closes, instead of waiting out
    their timeouts (or hanging forever with ``timeout=None``).
    """


class WrongTypeError(RedisError):
    """Operation against a key holding the wrong kind of value (WRONGTYPE)."""

    def __init__(self, key: str, expected: str, actual: str) -> None:
        super().__init__(
            f"WRONGTYPE key {key!r} holds {actual}, operation requires {expected}"
        )
        self.key = key
        self.expected = expected
        self.actual = actual


class NoGroupError(RedisError):
    """XREADGROUP/XACK against a consumer group that does not exist (NOGROUP)."""

    def __init__(self, stream: str, group: str) -> None:
        super().__init__(f"NOGROUP no such consumer group {group!r} for stream {stream!r}")
        self.stream = stream
        self.group = group


class BusyGroupError(RedisError):
    """XGROUP CREATE for a group name that already exists (BUSYGROUP)."""

    def __init__(self, stream: str, group: str) -> None:
        super().__init__(f"BUSYGROUP consumer group {group!r} already exists on {stream!r}")
        self.stream = stream
        self.group = group


class StreamIDError(RedisError):
    """Malformed stream entry ID, or an ID not greater than the last one."""
