"""In-process Redis substrate.

The paper's Redis mappings (Section 3.1) are built on a Redis 5.0 server:
the global task queue becomes a **Redis Stream** consumed through a
**consumer group**, private queues of stateful workers are Redis lists, and
the ``dyn_auto_redis`` auto-scaling strategy monitors the consumer group's
average idle time (Section 3.2.2).

No Redis server is available in this environment, so this package implements
the command subset those mappings exercise, from scratch, as a thread-safe
in-process data-structure server:

- strings (GET/SET/INCRBY/DECRBY) -- used for shared counters,
- lists (LPUSH/RPUSH/LPOP/RPOP/BLPOP/BLMOVE/LLEN/LRANGE/LTRIM) -- private
  queues and per-instance pending (replay) logs, plus RPUSHSEQ, a
  sequence-tagging append used for crash-recoverable delivery,
- SNAPSHOT/RESTORE -- sequence-guarded state snapshots backing the
  checkpoint/restore subsystem (:mod:`repro.state`),
- hashes and sets -- bookkeeping,
- streams (XADD/XLEN/XRANGE/XREAD/XTRIM) with **consumer groups**
  (XGROUP CREATE, XREADGROUP, XACK, XPENDING, XCLAIM, XAUTOCLAIM,
  XINFO STREAM/GROUPS/CONSUMERS) including pending-entry lists, delivery
  counters and per-consumer idle times.

Semantics follow the Redis documentation closely enough that the mappings
could be pointed at a real server by swapping :class:`RedisClient` for
``redis.Redis`` (method names and signatures mirror redis-py).  See
DESIGN.md's substitution table for the fidelity argument.
"""

from repro.redisim.client import RedisClient
from repro.redisim.errors import (
    BusyGroupError,
    ConnectionError,
    NoGroupError,
    RedisError,
    StreamIDError,
    WrongTypeError,
)
from repro.redisim.server import RedisServer
from repro.redisim.streams import StreamID

__all__ = [
    "BusyGroupError",
    "ConnectionError",
    "NoGroupError",
    "RedisClient",
    "RedisError",
    "RedisServer",
    "StreamID",
    "StreamIDError",
    "WrongTypeError",
]
