"""Redis Stream data structures: entries, IDs, consumer groups, PELs.

This module models the parts of Redis Streams that give the paper's Redis
mappings their semantics:

- append-only log of entries with monotonically increasing ``ms-seq`` IDs,
- consumer groups with a *last-delivered* cursor, so multiple workers
  cooperatively consume a single stream (the "Global Queue" of Figure 2),
- per-group pending entry lists (PEL) recording which consumer holds each
  undelivered-but-unacknowledged entry, with delivery timestamps and
  counters -- the substrate for at-least-once delivery and for XAUTOCLAIM
  recovery,
- per-consumer idle times, the metric the ``dyn_auto_redis`` auto-scaling
  strategy monitors (Section 3.2.2: "we utilize Redis's consumer group's
  average idle time").

Locking is owned by :class:`repro.redisim.server.RedisServer`; the classes
here are plain data structures and must only be touched under the server
lock.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from functools import total_ordering
from typing import Dict, List, Mapping, Optional, Tuple

from repro.redisim.errors import StreamIDError


@total_ordering
class StreamID:
    """A Redis stream entry ID: ``<milliseconds>-<sequence>``."""

    __slots__ = ("ms", "seq")

    def __init__(self, ms: int, seq: int) -> None:
        if ms < 0 or seq < 0:
            raise StreamIDError(f"stream ID components must be non-negative: {ms}-{seq}")
        self.ms = ms
        self.seq = seq

    @classmethod
    def parse(cls, raw: "str | StreamID", default_seq: int = 0) -> "StreamID":
        """Parse ``"ms-seq"`` or ``"ms"`` (sequence defaults to ``default_seq``)."""
        if isinstance(raw, StreamID):
            return raw
        text = str(raw)
        try:
            if "-" in text:
                ms_part, seq_part = text.split("-", 1)
                return cls(int(ms_part), int(seq_part))
            return cls(int(text), default_seq)
        except (TypeError, ValueError) as exc:
            raise StreamIDError(f"invalid stream ID {raw!r}") from exc

    def next(self) -> "StreamID":
        """Smallest ID strictly greater than this one."""
        return StreamID(self.ms, self.seq + 1)

    def _key(self) -> Tuple[int, int]:
        return (self.ms, self.seq)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StreamID) and self._key() == other._key()

    def __lt__(self, other: "StreamID") -> bool:
        if not isinstance(other, StreamID):
            return NotImplemented
        return self._key() < other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __str__(self) -> str:
        return f"{self.ms}-{self.seq}"

    def __repr__(self) -> str:
        return f"StreamID({self.ms}, {self.seq})"


#: Identity of "the very beginning" / "the very end" in range queries.
MIN_ID = StreamID(0, 0)
MAX_ID = StreamID(2**63 - 1, 2**63 - 1)


@dataclass
class StreamEntry:
    """One appended entry: an ID plus a flat field mapping."""

    id: StreamID
    fields: Dict[str, object]


@dataclass
class PendingEntry:
    """PEL record: who holds an entry, since when, delivered how many times."""

    consumer: str
    delivery_time: float
    delivery_count: int = 1


@dataclass
class Consumer:
    """Per-group consumer bookkeeping (idle time source for the auto-scaler)."""

    name: str
    last_seen: float
    pending: set = field(default_factory=set)

    def idle_ms(self, now: float) -> float:
        """Milliseconds since this consumer last interacted with the group."""
        return max(0.0, (now - self.last_seen) * 1000.0)


class ConsumerGroup:
    """A consumer group over one stream."""

    def __init__(self, name: str, last_delivered: StreamID) -> None:
        self.name = name
        self.last_delivered = last_delivered
        self.consumers: Dict[str, Consumer] = {}
        self.pel: Dict[StreamID, PendingEntry] = {}
        self.entries_read = 0

    def get_consumer(self, name: str, now: float, refresh: bool = True) -> Consumer:
        """Fetch-or-create a consumer, optionally refreshing last-seen.

        ``refresh=False`` is used by polling reads that deliver nothing:
        the ``dyn_auto_redis`` strategy needs idle time to mean "time since
        this consumer last received or acknowledged work", so that starved
        consumers accumulate idle time even while they keep polling.
        """
        consumer = self.consumers.get(name)
        if consumer is None:
            consumer = Consumer(name=name, last_seen=now)
            self.consumers[name] = consumer
        elif refresh:
            consumer.last_seen = now
        return consumer


class Stream:
    """Append-only log with consumer groups.

    Entries are kept sorted by ID; a parallel key list supports ``bisect``
    range queries, keeping XRANGE/XREADGROUP scans :math:`O(\\log n + k)`.
    """

    def __init__(self) -> None:
        self.entries: List[StreamEntry] = []
        self._keys: List[Tuple[int, int]] = []
        self.last_id = StreamID(0, 0)
        self.groups: Dict[str, ConsumerGroup] = {}
        self.length_added = 0  # total XADDs ever (survives XTRIM)

    # -- append / trim -------------------------------------------------------
    def add(self, fields: Mapping[str, object], now_ms: int, entry_id: Optional[str] = None) -> StreamID:
        """Append an entry; ``entry_id`` of ``None``/``"*"`` auto-generates."""
        if not fields:
            raise StreamIDError("XADD requires at least one field")
        if entry_id is None or entry_id == "*":
            if now_ms > self.last_id.ms:
                new_id = StreamID(now_ms, 0)
            else:
                new_id = StreamID(self.last_id.ms, self.last_id.seq + 1)
        else:
            new_id = StreamID.parse(entry_id)
            # Redis rule: explicit IDs must be strictly increasing, and 0-0
            # is never a valid entry ID.
            if new_id <= self.last_id or new_id == StreamID(0, 0):
                raise StreamIDError(
                    f"XADD id {new_id} is not greater than last id {self.last_id}"
                )
        entry = StreamEntry(id=new_id, fields=dict(fields))
        self.entries.append(entry)
        self._keys.append(new_id._key())
        self.last_id = new_id
        self.length_added += 1
        return new_id

    def trim_maxlen(self, maxlen: int) -> int:
        """Drop oldest entries beyond ``maxlen``; returns number removed."""
        excess = len(self.entries) - maxlen
        if excess <= 0:
            return 0
        del self.entries[:excess]
        del self._keys[:excess]
        return excess

    # -- range queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def range(
        self,
        start: StreamID = MIN_ID,
        end: StreamID = MAX_ID,
        count: Optional[int] = None,
    ) -> List[StreamEntry]:
        """Entries with ``start <= id <= end`` in ID order."""
        lo = bisect.bisect_left(self._keys, start._key())
        hi = bisect.bisect_right(self._keys, end._key())
        selected = self.entries[lo:hi]
        if count is not None:
            selected = selected[:count]
        return selected

    def after(self, last: StreamID, count: Optional[int] = None) -> List[StreamEntry]:
        """Entries with ``id > last`` (the ``>`` cursor of XREADGROUP)."""
        lo = bisect.bisect_right(self._keys, last._key())
        selected = self.entries[lo:]
        if count is not None:
            selected = selected[:count]
        return selected

    def get(self, entry_id: StreamID) -> Optional[StreamEntry]:
        """Entry with exactly this ID, or None (e.g. trimmed away)."""
        index = bisect.bisect_left(self._keys, entry_id._key())
        if index < len(self._keys) and self._keys[index] == entry_id._key():
            return self.entries[index]
        return None
