"""Multi-job scheduling: fair-share admission over shared warm pools.

The service layer over :class:`repro.engine.Engine`:
:class:`JobScheduler` multiplexes N concurrent jobs over per-mapping
:class:`~repro.mappings.base.DeploymentPool` warm capacity with admission
control (concurrency cap, weighted-deficit tenant fair share, priorities
with starvation-free aging), send backpressure and
:class:`SchedulerStats` lifecycle metrics.  :class:`SchedulerService`
fronts a scheduler over TCP for ``repro serve``; the
:mod:`~repro.scheduler.catalog` names the workflows both it and the CLI
can build.  See ``docs/architecture.md`` and ``docs/cookbook.md``.
"""

from repro.scheduler.catalog import (
    build_named_workflow,
    workflow_names,
    workflow_params,
)
from repro.scheduler.scheduler import (
    BackpressureError,
    JobScheduler,
    QuotaExceededError,
    TenantQuota,
)
from repro.scheduler.service import SchedulerService
from repro.scheduler.stats import SchedulerStats, percentile

__all__ = [
    "BackpressureError",
    "JobScheduler",
    "QuotaExceededError",
    "SchedulerService",
    "SchedulerStats",
    "TenantQuota",
    "build_named_workflow",
    "percentile",
    "workflow_names",
    "workflow_params",
]
