"""Multi-job admission over shared warm deployment pools.

:class:`JobScheduler` is the service layer the paper's long-lived enactment
scenario needs: where ``Engine.submit`` serves one job per mapping at a
time (busy submissions fall back to cold ephemeral deployments), the
scheduler multiplexes N concurrent :class:`~repro.jobs.Job` handles over a
:class:`~repro.mappings.base.DeploymentPool` of warm deployments per
mapping and *queues* the overflow instead of paying cold spin-ups.

Admission control, in decision order:

1. **Concurrency cap** -- at most ``max_concurrent`` jobs enact at once.
2. **Fair share** -- among tenants with admissible work, the next slot
   goes to the tenant with the largest *weighted deficit*
   (``total_admitted * weight_share - admitted``): over time every tenant
   receives slots proportional to its :class:`TenantQuota` weight,
   regardless of submission bursts.  Ties break toward the higher weight,
   then submission order.
3. **Priority with aging** -- within the chosen tenant, the job with the
   highest *effective* priority (``priority + waited/aging_interval``)
   wins, so a low-priority job's rank rises the longer it waits and
   starvation is impossible.  Ties break FIFO.

Hard per-tenant ``max_outstanding`` quotas reject at submit time
(:class:`QuotaExceededError`); queue-depth backpressure surfaces through
``Job.send`` on not-yet-admitted jobs (block or
:class:`BackpressureError`, per ``backpressure=``).  Lifecycle metrics
live on :attr:`JobScheduler.stats` (:class:`SchedulerStats`).

The scheduler returns the same :class:`~repro.jobs.Job` handle as direct
submission: callers ``send``/``results``/``wait`` identically, and
``Engine.submit(scheduler=...)`` routes through here so the in-process and
daemon (``repro serve``) paths share one code path.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.jobs import Job, JobCancelledError, JobState
from repro.mappings.base import DeploymentPool, InputSpec, expand_send
from repro.mappings.registry import get_capabilities


class QuotaExceededError(RuntimeError):
    """A tenant's ``max_outstanding`` quota refused a submission."""


class BackpressureError(RuntimeError):
    """``Job.send`` on a queued job overflowed the staging high-water mark."""


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission policy.

    ``weight`` scales the tenant's fair share of admission slots (a
    weight-3 tenant receives three slots for every one a weight-1 tenant
    gets, when both have work queued).  ``max_outstanding`` caps the
    tenant's queued+running jobs; further submissions raise
    :class:`QuotaExceededError` until jobs finish.  ``None`` leaves the
    tenant uncapped.
    """

    weight: float = 1.0
    max_outstanding: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"quota weight must be > 0, got {self.weight}")
        if self.max_outstanding is not None and self.max_outstanding < 1:
            raise ValueError(
                f"max_outstanding must be >= 1, got {self.max_outstanding}"
            )


class _QueuedJob:
    """One submission's admission-side record (scheduler-internal)."""

    __slots__ = (
        "job", "tenant", "priority", "seq", "submitted_at",
        "name", "graph", "inputs", "processes", "merged",
        "time_scale", "seed",
        "cond", "staged", "staged_tuples", "closed", "cancelled",
        "admitted", "inner", "failure", "roots",
    )

    def __init__(self, job, tenant, priority, seq, spec):
        self.job = job
        self.tenant = tenant
        self.priority = priority
        self.seq = seq
        self.submitted_at = time.monotonic()
        (self.name, self.graph, self.inputs, self.processes, self.merged,
         self.time_scale, self.seed) = spec
        self.roots = {pe.name for pe in self.graph.roots()}
        # Pre-admission state, guarded by ``cond`` (never the scheduler
        # lock): staged sends flush to the inner job *before* ``inner`` is
        # published, so user tuples can never overtake staged ones.
        self.cond = threading.Condition()
        self.staged: List[Tuple[str, List[Any]]] = []
        self.staged_tuples = 0
        self.closed = False
        self.cancelled = False
        self.admitted = False
        self.inner: Optional[Job] = None
        self.failure: Optional[BaseException] = None


class JobScheduler:
    """Fair-share admission of concurrent jobs over warm deployment pools.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.Engine` whose mappings, platform and
        defaults enact the jobs.  One scheduler per engine.
    max_concurrent:
        Global cap on concurrently enacting jobs (queued jobs wait).
    pool_size:
        Warm deployments kept per mapping (default: ``max_concurrent``).
    quotas:
        ``{tenant: TenantQuota}``; unlisted tenants get weight 1.0 and no
        outstanding cap.
    high_water:
        Max tuples a not-yet-admitted job may stage via ``Job.send``.
    backpressure:
        What an over-high-water ``send`` does: ``"block"`` until admission
        drains the staging buffer, or ``"error"``
        (:class:`BackpressureError`).
    aging_interval:
        Seconds of queue wait worth one priority level -- smaller values
        age starved jobs upward faster.
    """

    def __init__(
        self,
        engine: Any,
        *,
        max_concurrent: int = 4,
        pool_size: Optional[int] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        high_water: int = 1024,
        backpressure: str = "block",
        aging_interval: float = 5.0,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if pool_size is not None and pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if high_water < 1:
            raise ValueError(f"high_water must be >= 1, got {high_water}")
        if backpressure not in ("block", "error"):
            raise ValueError(
                f"backpressure must be 'block' or 'error', got {backpressure!r}"
            )
        if aging_interval <= 0:
            raise ValueError(f"aging_interval must be > 0, got {aging_interval}")
        self.engine = engine
        self.max_concurrent = max_concurrent
        self.pool_size = pool_size if pool_size is not None else max_concurrent
        self.quotas = dict(quotas or {})
        self.high_water = high_water
        self.backpressure = backpressure
        self.aging_interval = aging_interval
        from repro.scheduler.stats import SchedulerStats

        self.stats = SchedulerStats()
        self._cond = threading.Condition()
        self._queue: List[_QueuedJob] = []
        self._live: List[_QueuedJob] = []
        self._running_count = 0
        self._admitted_count: Dict[str, int] = {}
        self._seq = itertools.count()
        self._pools: Dict[str, DeploymentPool] = {}
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="job-scheduler", daemon=True
        )
        self._dispatcher.start()

    # ----------------------------------------------------------- submission
    def submit(
        self,
        workflow: Any,
        inputs: InputSpec = None,
        *,
        tenant: str = "default",
        priority: int = 0,
        deadline: Optional[float] = None,
        processes: Optional[int] = None,
        seed: Optional[int] = None,
        mapping: Optional[str] = None,
        time_scale: Optional[float] = None,
        **options: Any,
    ) -> Job:
        """Queue a workflow for admission and return its :class:`Job` now.

        The job is ``PENDING`` until admission grants it a deployment from
        the mapping's warm pool; ``send``/``close_input``/``results`` work
        immediately (sends stage until admission, bounded by the
        scheduler's high-water mark).  ``priority`` ranks the job within
        its ``tenant`` (higher first, aged upward while waiting);
        ``deadline`` counts from *submission*, so it covers queue wait too.
        Remaining parameters mirror :meth:`repro.engine.Engine.submit`.

        An admitted job holds its concurrency slot until its input closes
        and the run drains -- ``inputs`` seeds the stream but does *not*
        close it.  Batch-style callers should ``close_input()`` right
        after submitting (or ``wait()``, which closes first), otherwise an
        idle open-input job can hold a slot other queued jobs need.

        Raises :class:`QuotaExceededError` when the tenant is at its
        ``max_outstanding`` cap, ``RuntimeError`` on a closed scheduler or
        engine, and whatever the engine's option gating raises -- all
        synchronously, before the job is queued.
        """
        graph, name, procs, merged = self.engine._resolve_submission(
            workflow, processes, mapping, options
        )
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {deadline}")
        with self._cond:
            if self._closed:
                raise RuntimeError("JobScheduler is closed; create a new one")
            quota = self.quotas.get(tenant)
            if quota is not None and quota.max_outstanding is not None:
                outstanding = sum(
                    1 for r in self._queue + self._live if r.tenant == tenant
                )
                if outstanding >= quota.max_outstanding:
                    self.stats.note_rejected()
                    raise QuotaExceededError(
                        f"tenant {tenant!r} has {outstanding} outstanding "
                        f"job(s), at its max_outstanding quota of "
                        f"{quota.max_outstanding}; wait for completions or "
                        f"raise the quota"
                    )
            job = Job(
                mapping=name,
                workflow=graph.name,
                streaming=get_capabilities(name).streaming,
            )
            record = _QueuedJob(
                job, tenant, float(priority), next(self._seq),
                (name, graph, inputs, procs, merged, time_scale, seed),
            )
            job._wire(
                lambda target, tuples: self._job_send(record, target, tuples),
                lambda: self._job_close(record),
                lambda: self._job_cancel(record),
            )
            submitted_at = record.submitted_at
            job._set_first_result_hook(
                lambda: self.stats.note_first_result(
                    time.monotonic() - submitted_at
                )
            )
            job._on_terminal(lambda j: self._outer_terminal(record, j))
            self._queue.append(record)
            self.stats.note_submitted()
            self._cond.notify_all()
        # The engine tracks the outer handle so Engine.close() cancels
        # queued scheduler jobs along with its own.
        self.engine._adopt_job(job)
        job._arm_deadline(deadline)
        return job

    def prewarm(
        self,
        mapping: str,
        processes: Optional[int] = None,
        count: Optional[int] = None,
    ) -> int:
        """Deploy warm capacity for ``mapping`` ahead of submissions.

        Fills up to ``count`` of the mapping's pool slots (default: all
        ``pool_size`` of them) at ``processes`` workers each (default: the
        engine's configured process count).  Returns the number of
        deployments added.  Jobs admitted onto prewarmed deployments count
        ``deploy_warm`` -- the spin-up happened here, outside any job.
        """
        procs = processes if processes is not None else self.engine.config.processes
        return self._pool_for(mapping).prewarm(procs, self.engine.platform, count)

    # ------------------------------------------------------------ job wiring
    def _job_send(self, record: _QueuedJob, target: Any, tuples: Any) -> None:
        """Outer-job ``send``: stage pre-admission, forward post-admission."""
        # Expand once, up front: target/shape errors surface at the send
        # call even while queued, and the expanded mappings re-feed the
        # inner job verbatim (dict items pass through expansion unchanged).
        root, items = expand_send(record.graph, target, tuples, record.roots)
        while True:
            with record.cond:
                inner = record.inner
                if inner is None:
                    if record.failure is not None:
                        raise record.failure
                    if record.cancelled or record.job.done():
                        raise JobCancelledError(record.job._cancel_message())
                    if record.staged_tuples + len(items) > self.high_water:
                        if self.backpressure == "error":
                            raise BackpressureError(
                                f"job {record.job.workflow!r} is not yet "
                                f"admitted and its staging buffer is full "
                                f"({record.staged_tuples} tuple(s) staged, "
                                f"high_water={self.high_water}); wait for "
                                f"admission or raise high_water"
                            )
                        record.cond.wait(timeout=0.1)
                        continue
                    record.staged.append((root, items))
                    record.staged_tuples += len(items)
                    return
            # Admitted: the inner job's own wiring takes over (its feed
            # serializes concurrent pushes).
            inner.send(root, items)
            return

    def _job_close(self, record: _QueuedJob) -> None:
        with record.cond:
            record.closed = True
            inner = record.inner
        if inner is not None:
            inner.close_input()

    def _job_cancel(self, record: _QueuedJob) -> None:
        # The outer Job already flipped itself CANCELLED; our work is the
        # queue/inner side.  Remove from the queue first so the dispatcher
        # cannot admit a cancelled record.
        with self._cond:
            in_queue = record in self._queue
            if in_queue:
                self._queue.remove(record)
                self.stats.note_dequeued()
            admitted = record.admitted
            self._cond.notify_all()
        with record.cond:
            record.cancelled = True
            inner = record.inner
            record.cond.notify_all()
        if inner is not None:
            inner.cancel()
        elif not admitted:
            # Never admitted: no enactment to unwind, resolve immediately.
            record.job._finish_cancelled()
        # Admitted but inner not yet published: _admit's post-flush check
        # observes ``cancelled`` and cancels the inner job itself.

    def _outer_terminal(self, record: _QueuedJob, job: Job) -> None:
        with self._cond:
            if record in self._queue:  # deadline/cancel raced submission
                self._queue.remove(record)
                self.stats.note_dequeued()
            if record in self._live:
                self._live.remove(record)
            self._cond.notify_all()
        outcome = {
            JobState.DONE: "done",
            JobState.FAILED: "failed",
        }.get(job.state, "cancelled")
        self.stats.note_terminal(outcome)
        with record.cond:
            record.cond.notify_all()  # release any blocked senders

    # ------------------------------------------------------------ dispatcher
    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                record = None
                while not self._closed:
                    record = self._pick_locked(time.monotonic())
                    if record is not None:
                        break
                    # Aging shifts effective priorities over time, so wake
                    # periodically even without queue/slot events.
                    self._cond.wait(timeout=0.2)
                if self._closed:
                    return
                self._queue.remove(record)
                record.admitted = True
                self._live.append(record)
                self._running_count += 1
                self._admitted_count[record.tenant] = (
                    self._admitted_count.get(record.tenant, 0) + 1
                )
            self.stats.note_admitted(
                record.tenant, time.monotonic() - record.submitted_at
            )
            self._admit(record)

    def _pick_locked(self, now: float) -> Optional[_QueuedJob]:
        """The next record to admit, or ``None`` (holding the scheduler lock).

        Weighted-deficit fair share across tenants, priority-with-aging
        within the winner; a mapping whose pool has no free slot makes its
        jobs temporarily inadmissible without blocking other mappings.
        """
        if self._running_count >= self.max_concurrent:
            return None
        eligible: Dict[str, List[_QueuedJob]] = {}
        for record in self._queue:
            pool = self._pools.get(record.name)
            if pool is not None and pool.free_slots() == 0:
                continue
            eligible.setdefault(record.tenant, []).append(record)
        if not eligible:
            return None
        considered = set(eligible) | {r.tenant for r in self._live}
        weight = {t: self._weight(t) for t in considered}
        total_weight = sum(weight.values())
        total_admitted = sum(self._admitted_count.get(t, 0) for t in considered)

        def deficit(tenant: str) -> float:
            share = weight[tenant] / total_weight
            return total_admitted * share - self._admitted_count.get(tenant, 0)

        tenant = max(
            eligible,
            key=lambda t: (
                deficit(t),
                weight[t],
                -min(r.seq for r in eligible[t]),
            ),
        )

        def effective(record: _QueuedJob) -> float:
            waited = max(0.0, now - record.submitted_at)
            return record.priority + waited / self.aging_interval

        return max(eligible[tenant], key=lambda r: (effective(r), -r.seq))

    def _weight(self, tenant: str) -> float:
        quota = self.quotas.get(tenant)
        return quota.weight if quota is not None else 1.0

    def _admit(self, record: _QueuedJob) -> None:
        """Enact one admitted record (off the scheduler lock: deploys, sends)."""
        with record.cond:
            if record.cancelled:
                record.job._finish_cancelled()
                self._slot_freed()
                return
        pool = self._pool_for(record.name)
        try:
            deployment, _busy = pool.try_acquire(
                record.processes, self.engine.platform
            )
        except BaseException as exc:  # noqa: BLE001 - admission boundary
            self._fail_admission(record, exc)
            return
        try:
            inner = self.engine._start_job(
                record.name, record.graph, record.inputs, record.processes,
                record.merged,
                time_scale=record.time_scale, seed=record.seed, deadline=None,
                deployment=deployment, stream=None, results_channel=True,
            )
        except BaseException as exc:  # noqa: BLE001 - admission boundary
            if deployment is not None:
                # Validation failures raise before the deployment is ever
                # touched; its warmth survives for the next job.
                pool.release(deployment, reusable=True)
            self._fail_admission(record, exc)
            return
        if deployment is not None:
            leased = deployment
            inner._on_terminal(
                lambda j: pool.release(leased, reusable=j.state is JobState.DONE)
            )
        inner._on_terminal(lambda j: self._slot_freed())
        record.job._mark_running()
        flush_error: Optional[BaseException] = None
        with record.cond:
            staged, record.staged = record.staged, []
            record.staged_tuples = 0
            try:
                for root, items in staged:
                    inner.send(root, items)
            except BaseException as exc:  # noqa: BLE001 - admission boundary
                flush_error = exc
            else:
                record.inner = inner
            record.cond.notify_all()
        if flush_error is not None:
            inner.cancel()
            record.job._fail(flush_error)
            return
        with record.cond:
            cancelled, closed = record.cancelled, record.closed
        if cancelled:
            inner.cancel()
        elif closed:
            inner.close_input()
        threading.Thread(
            target=self._bridge,
            args=(record, inner),
            name=f"sched-bridge-{record.job.workflow}",
            daemon=True,
        ).start()

    def _pool_for(self, name: str) -> DeploymentPool:
        with self._cond:
            pool = self._pools.get(name)
            if pool is None:
                pool = DeploymentPool(
                    self.engine._engine_for(name),
                    size=self.pool_size,
                    on_release=self._wake,
                )
                self._pools[name] = pool
        return pool

    def _wake(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def _slot_freed(self) -> None:
        self.stats.note_slot_released()
        with self._cond:
            self._running_count = max(0, self._running_count - 1)
            self._cond.notify_all()

    def _fail_admission(self, record: _QueuedJob, exc: BaseException) -> None:
        with record.cond:
            record.failure = exc
            record.cond.notify_all()
        record.job._fail(exc)
        self._slot_freed()

    def _bridge(self, record: _QueuedJob, inner: Job) -> None:
        """Pump the inner job's results into the outer handle, then resolve it."""
        outer = record.job
        try:
            for key, value in inner.results():
                outer._emit(key, value)
        except BaseException:  # noqa: BLE001 - outcome forwarded below
            pass
        inner._terminal.wait()
        state = inner.state
        if state is JobState.DONE:
            result = inner.result
            assert result is not None
            outer._finish(result)
        elif state is JobState.FAILED:
            outer._fail(inner._error or RuntimeError("enactment failed"))
        else:
            outer._finish_cancelled()

    # -------------------------------------------------------------- context
    def close(self, grace: float = 5.0) -> None:
        """Cancel queued and live jobs, tear down the pools.  Idempotent.

        Queued jobs resolve ``CANCELLED`` without ever enacting; live jobs
        are cancelled and given ``grace`` seconds to unwind before their
        deployments are torn down.
        """
        with self._cond:
            already = self._closed
            self._closed = True
            queued, self._queue = list(self._queue), []
            live = list(self._live)
            pools, self._pools = list(self._pools.values()), {}
            self._cond.notify_all()
        if already and not (queued or live or pools):
            return
        for record in queued:
            self.stats.note_dequeued()
            record.job.cancel(reason="scheduler closed")
        for record in live:
            record.job.cancel(reason="scheduler closed")
        for record in queued + live:
            record.job._terminal.wait(timeout=grace)
        for pool in pools:
            pool.close()
        self._dispatcher.join(timeout=grace)

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._cond:
            state = "closed" if self._closed else "open"
            return (
                f"JobScheduler(max_concurrent={self.max_concurrent}, "
                f"pool_size={self.pool_size}, queued={len(self._queue)}, "
                f"running={self._running_count}, {state})"
            )
