"""Named workflow catalog shared by ``repro run``/``plan`` and the daemon.

The CLI and the ``repro serve`` wire protocol both address workflows by
name (clients of the daemon cannot ship Python graphs over a socket), so
the name -> builder table lives here once.  Each entry validates its
accepted parameters, turning a typo'd ``{"artcles": 10}`` into a
synchronous error instead of a silently default-sized run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.graph import WorkflowGraph
from repro.workflows import (
    build_internal_extinction_workflow,
    build_recoverable_sentiment_workflow,
    build_seismic_phase1_workflow,
    build_seismic_phase2_workflow,
    build_sentiment_scoring_workflow,
    build_sentiment_workflow,
)


def _seismic2(stations: int = 50) -> Tuple[WorkflowGraph, List[int]]:
    # Station pairs grow quadratically in phase 2; the CLI has always
    # clamped the shared --stations default down to a sane phase-2 size.
    return build_seismic_phase2_workflow(stations=min(stations, 16))


#: name -> (builder, parameter names the builder accepts from callers).
_CATALOG: Dict[str, Tuple[Any, Tuple[str, ...]]] = {
    "galaxy": (build_internal_extinction_workflow, ("scale", "heavy")),
    "seismic": (build_seismic_phase1_workflow, ("stations",)),
    "seismic2": (_seismic2, ("stations",)),
    "sentiment": (build_sentiment_workflow, ("articles",)),
    "sentiment-recoverable": (build_recoverable_sentiment_workflow, ("articles",)),
    "sentiment-scoring": (build_sentiment_scoring_workflow, ("articles",)),
}


def workflow_names() -> List[str]:
    """The catalog's workflow names, sorted."""
    return sorted(_CATALOG)


def workflow_params(name: str) -> Tuple[str, ...]:
    """The parameter names ``build_named_workflow(name, ...)`` accepts.

    Raises ``KeyError``-flavoured ``ValueError`` on an unknown name.
    """
    return _entry(name)[1]


def build_named_workflow(
    name: str, **params: Any
) -> Tuple[WorkflowGraph, Any]:
    """Build a catalog workflow by name; returns ``(graph, default_inputs)``.

    ``params`` must be a subset of :func:`workflow_params` for that name
    (e.g. ``scale``/``heavy`` for ``galaxy``, ``articles`` for the
    sentiment family); unknown keys raise ``ValueError`` naming the
    accepted ones.
    """
    builder, accepted = _entry(name)
    unknown = sorted(set(params) - set(accepted))
    if unknown:
        raise ValueError(
            f"workflow {name!r} does not accept parameter(s) "
            f"{', '.join(repr(k) for k in unknown)}; accepted: "
            f"{', '.join(accepted) or '(none)'}"
        )
    return builder(**params)


def _entry(name: str) -> Tuple[Any, Tuple[str, ...]]:
    try:
        return _CATALOG[name]
    except KeyError:
        raise ValueError(
            f"unknown workflow {name!r}; available: {', '.join(workflow_names())}"
        ) from None
