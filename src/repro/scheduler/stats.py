"""Lifecycle metrics of a :class:`~repro.scheduler.JobScheduler`.

:class:`SchedulerStats` is the scheduler's observability surface: lifecycle
counters (submitted / admitted / completed / failed / cancelled / rejected),
queue and concurrency gauges, the admission order (for fairness audits),
and two latency distributions -- queue wait (submit -> admission) and
submit -> first result, the metric the paper's service scenario cares
about.  All methods are thread-safe; :meth:`snapshot` returns a plain dict
suitable for the ``repro serve`` wire protocol.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, List, Optional


def percentile(samples: List[float], p: float) -> Optional[float]:
    """The ``p``-th percentile (0-100) of ``samples`` by nearest-rank.

    Returns ``None`` on an empty sample set.  Nearest-rank keeps the value
    an actual observation (p99 of 8 samples is the worst one), which reads
    better on small benchmark populations than interpolation.
    """
    if not samples:
        return None
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


class SchedulerStats:
    """Thread-safe lifecycle metrics, owned by one scheduler instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        #: Submissions refused at the door (tenant quota exhausted).
        self.rejected = 0
        self.queued = 0
        self.running = 0
        self.peak_running = 0
        #: Tenant of each admission, in admission order (fairness audits).
        self.admissions: List[str] = []
        self._queue_waits: List[float] = []
        self._first_result_latencies: List[float] = []
        self._first_admission_at: Optional[float] = None
        self._last_completion_at: Optional[float] = None

    # ------------------------------------------------------------ recording
    def note_submitted(self) -> None:
        """One job entered the admission queue."""
        with self._lock:
            self.submitted += 1
            self.queued += 1

    def note_rejected(self) -> None:
        """One submission was refused at the door (never queued)."""
        with self._lock:
            self.rejected += 1

    def note_dequeued(self) -> None:
        """One queued job left the queue without admission (cancel/close)."""
        with self._lock:
            self.queued = max(0, self.queued - 1)

    def note_admitted(self, tenant: str, queue_wait: float) -> None:
        """One job was admitted after ``queue_wait`` seconds in the queue."""
        with self._lock:
            self.admitted += 1
            self.queued = max(0, self.queued - 1)
            self.running += 1
            self.peak_running = max(self.peak_running, self.running)
            self.admissions.append(tenant)
            self._queue_waits.append(queue_wait)
            if self._first_admission_at is None:
                self._first_admission_at = time.monotonic()

    def note_first_result(self, latency: float) -> None:
        """One job produced its first result ``latency`` s after submit."""
        with self._lock:
            self._first_result_latencies.append(latency)

    def note_slot_released(self) -> None:
        """One admitted job released its concurrency slot (enactment over).

        Kept separate from :meth:`note_terminal`: the slot frees when the
        *inner* enactment ends, which can precede the outer handle's
        resolution -- tying ``running`` to the slot keeps
        ``peak_running <= max_concurrent`` exact.
        """
        with self._lock:
            self.running = max(0, self.running - 1)

    def note_terminal(self, outcome: str) -> None:
        """One job reached a terminal state (``done``/``failed``/``cancelled``)."""
        with self._lock:
            if outcome == "done":
                self.completed += 1
                self._last_completion_at = time.monotonic()
            elif outcome == "failed":
                self.failed += 1
            else:
                self.cancelled += 1

    # ----------------------------------------------------------- derivation
    def jobs_per_second(self) -> Optional[float]:
        """Sustained completion throughput: completions over the busy window.

        Measured from the first admission to the latest completion, so idle
        time before the burst does not dilute the rate.  ``None`` until a
        job has completed (or when the window is immeasurably short).
        """
        with self._lock:
            if (
                self.completed == 0
                or self._first_admission_at is None
                or self._last_completion_at is None
            ):
                return None
            window = self._last_completion_at - self._first_admission_at
            if window <= 0:
                return None
            return self.completed / window

    def queue_wait_percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile of submit -> admission waits (seconds)."""
        with self._lock:
            return percentile(self._queue_waits, p)

    def first_result_percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile of submit -> first-result latency (seconds)."""
        with self._lock:
            return percentile(self._first_result_latencies, p)

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict view of every counter, gauge and percentile."""
        with self._lock:
            waits = list(self._queue_waits)
            latencies = list(self._first_result_latencies)
            out: Dict[str, Any] = {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "queued": self.queued,
                "running": self.running,
                "peak_running": self.peak_running,
            }
        out["jobs_per_second"] = self.jobs_per_second()
        out["queue_wait_p50"] = percentile(waits, 50)
        out["queue_wait_p99"] = percentile(waits, 99)
        out["first_result_p50"] = percentile(latencies, 50)
        out["first_result_p99"] = percentile(latencies, 99)
        return out

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"SchedulerStats(submitted={snap['submitted']}, "
            f"running={snap['running']}, queued={snap['queued']}, "
            f"completed={snap['completed']})"
        )
