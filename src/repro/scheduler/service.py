"""``repro serve``: the scheduler daemon and its line-JSON wire protocol.

:class:`SchedulerService` fronts a :class:`~repro.scheduler.JobScheduler`
with a TCP listener speaking newline-delimited JSON -- one request object
per line in, one (or, for ``results``, a stream of) response object(s) per
line out -- so external clients submit *named* workflows (the
:mod:`repro.scheduler.catalog`), feed tuples and stream results with
nothing but a socket, no library import.  The server shape mirrors
:class:`repro.net.server.RespTCPServer`: bounded-timeout accept loop,
thread per connection, idempotent :meth:`close`.

Requests: ``{"op": ..., ...}``.  Responses: ``{"ok": true, ...}`` or
``{"ok": false, "error": "..."}``; protocol errors never kill the
connection, malformed lines get an error reply.

==========  ===========================================================
op          request -> reply
==========  ===========================================================
ping        ``{}`` -> ``{"pong": true}``
workflows   ``{}`` -> ``{"workflows": {name: [param, ...]}}``
submit      ``{"workflow", "params"?, "inputs"?, "tenant"?,
            "priority"?, "deadline"?, "mapping"?, "processes"?,
            "seed"?, "time_scale"?}`` -> ``{"job", "mapping",
            "streaming", "roots"}`` (omit ``inputs`` for the catalog
            default stream; pass ``null`` for none; ``roots`` are the
            valid ``send`` targets)
send        ``{"job", "target", "tuples"}`` -> ``{"sent": n}``
close       ``{"job"}`` -> ``{"closed": true}``
results     ``{"job", "timeout"?}`` -> one ``{"key", "value"}`` line
            per result, then ``{"done": true, "state": ...}``
wait        ``{"job", "timeout"?}`` -> ``{"state", "summary"}``
cancel      ``{"job", "reason"?}`` -> ``{"cancelled": bool}``
stats       ``{}`` -> ``{"stats": {...}}`` (:class:`SchedulerStats`)
quit        closes the connection after ``{"bye": true}``
==========  ===========================================================
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, Optional, Tuple

from repro.jobs import Job
from repro.scheduler.catalog import (
    build_named_workflow,
    workflow_names,
    workflow_params,
)
from repro.scheduler.scheduler import JobScheduler


def _encode(payload: Dict[str, Any]) -> bytes:
    """One reply line; non-JSON values degrade to ``repr`` over the wire."""
    return (json.dumps(payload, default=repr) + "\n").encode("utf-8")


class SchedulerService:
    """Line-JSON TCP front-end over one :class:`JobScheduler`."""

    def __init__(
        self,
        scheduler: JobScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self._host = host
        self._port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._conns: Dict[int, socket.socket] = {}
        self._conns_lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._job_seq = 0

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "SchedulerService":
        """Bind the listener and start accepting; returns ``self``."""
        if self._listener is not None:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        # Bounded accept timeout so the accept loop notices shutdown.
        listener.settimeout(0.2)
        self._listener = listener
        self._port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"sched-accept-{self._port}", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    @property
    def address(self) -> str:
        """``host:port`` as clients expect it."""
        return f"{self._host}:{self._port}"

    def close(self) -> None:
        """Stop accepting, drop every connection, release the port.

        The scheduler (and its engine) belong to the caller and stay open
        -- ``repro serve`` closes them after the service.  Idempotent.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conns_lock:
            conns = list(self._conns.values())
        for sock in conns:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def serve_forever(self, poll: float = 0.5) -> None:
        """Block until :meth:`close` (daemon mode for ``repro serve``)."""
        self.start()
        while not self._stopping.is_set():
            self._stopping.wait(poll)

    # ------------------------------------------------------------ accept loop
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conns_lock:
                self._conns[id(sock)] = sock
            threading.Thread(
                target=self._serve_conn,
                args=(sock,),
                name=f"sched-conn-{self._port}",
                daemon=True,
            ).start()

    def _serve_conn(self, sock: socket.socket) -> None:
        try:
            reader = sock.makefile("rb")
            for raw in reader:
                line = raw.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("expected a JSON object")
                except ValueError as exc:
                    sock.sendall(_encode({"ok": False, "error": f"bad request: {exc}"}))
                    continue
                stop = self._dispatch(sock, request)
                if stop:
                    break
        except OSError:
            pass  # client went away mid-line / mid-reply
        finally:
            with self._conns_lock:
                self._conns.pop(id(sock), None)
            try:
                sock.close()
            except OSError:
                pass

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, sock: socket.socket, request: Dict[str, Any]) -> bool:
        """Handle one request; returns True when the connection should close."""
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            sock.sendall(_encode({"ok": False, "error": f"unknown op {op!r}"}))
            return False
        try:
            reply, stop = handler(sock, request)
        except (KeyError, TypeError, ValueError, RuntimeError) as exc:
            reply, stop = {"ok": False, "error": str(exc) or type(exc).__name__}, False
        if reply is not None:
            sock.sendall(_encode(reply))
        return stop

    def _job(self, request: Dict[str, Any]) -> Job:
        job_id = request.get("job")
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ValueError(f"unknown job {job_id!r}")
        return job

    # ------------------------------------------------------------ operations
    def _op_ping(self, sock, request) -> Tuple[Dict[str, Any], bool]:
        return {"ok": True, "pong": True}, False

    def _op_quit(self, sock, request) -> Tuple[Dict[str, Any], bool]:
        return {"ok": True, "bye": True}, True

    def _op_workflows(self, sock, request) -> Tuple[Dict[str, Any], bool]:
        return {
            "ok": True,
            "workflows": {
                name: list(workflow_params(name)) for name in workflow_names()
            },
        }, False

    def _op_submit(self, sock, request) -> Tuple[Dict[str, Any], bool]:
        name = request.get("workflow")
        if not isinstance(name, str):
            raise ValueError("submit needs a 'workflow' name")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            raise ValueError("'params' must be an object")
        graph, default_inputs = build_named_workflow(name, **params)
        # Absent "inputs" means the catalog's default stream; an explicit
        # null means "none, I will send tuples myself".
        inputs = request["inputs"] if "inputs" in request else default_inputs
        job = self.scheduler.submit(
            graph,
            inputs,
            tenant=request.get("tenant", "default"),
            priority=int(request.get("priority", 0)),
            deadline=request.get("deadline"),
            processes=request.get("processes"),
            seed=request.get("seed"),
            mapping=request.get("mapping"),
            time_scale=request.get("time_scale"),
        )
        with self._jobs_lock:
            self._job_seq += 1
            job_id = f"j{self._job_seq}"
            self._jobs[job_id] = job
        return {
            "ok": True,
            "job": job_id,
            "workflow": job.workflow,
            "mapping": job.mapping,
            "streaming": job.streaming,
            # Valid send targets, so clients need not know the graph shape.
            "roots": sorted(pe.name for pe in graph.roots()),
        }, False

    def _op_send(self, sock, request) -> Tuple[Dict[str, Any], bool]:
        job = self._job(request)
        tuples = request.get("tuples")
        if not isinstance(tuples, list):
            raise ValueError("'tuples' must be an array")
        job.send(request.get("target"), tuples)
        return {"ok": True, "sent": len(tuples)}, False

    def _op_close(self, sock, request) -> Tuple[Dict[str, Any], bool]:
        self._job(request).close_input()
        return {"ok": True, "closed": True}, False

    def _op_results(self, sock, request) -> Tuple[Optional[Dict[str, Any]], bool]:
        job = self._job(request)
        timeout = request.get("timeout")
        try:
            for key, value in job.results(timeout=timeout):
                sock.sendall(_encode({"ok": True, "key": key, "value": value}))
        except TimeoutError as exc:
            return {"ok": False, "error": str(exc)}, False
        except Exception as exc:  # job failed/cancelled after its last result
            return {
                "ok": False,
                "error": str(exc) or type(exc).__name__,
                "state": job.state.value,
            }, False
        return {"ok": True, "done": True, "state": job.state.value}, False

    def _op_wait(self, sock, request) -> Tuple[Dict[str, Any], bool]:
        job = self._job(request)
        try:
            result = job.wait(timeout=request.get("timeout"))
        except TimeoutError as exc:
            return {"ok": False, "error": str(exc)}, False
        except Exception as exc:
            return {
                "ok": False,
                "error": str(exc) or type(exc).__name__,
                "state": job.state.value,
            }, False
        return {"ok": True, "state": job.state.value, "summary": result.summary()}, False

    def _op_cancel(self, sock, request) -> Tuple[Dict[str, Any], bool]:
        job = self._job(request)
        flipped = job.cancel(reason=request.get("reason"))
        return {"ok": True, "cancelled": flipped, "state": job.state.value}, False

    def _op_stats(self, sock, request) -> Tuple[Dict[str, Any], bool]:
        return {"ok": True, "stats": self.scheduler.stats.snapshot()}, False

    def __repr__(self) -> str:
        state = "stopped" if self._stopping.is_set() else "serving"
        return f"SchedulerService({self.address}, {state})"
