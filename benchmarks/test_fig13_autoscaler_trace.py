"""Figure 13: auto-scaler traces (active size vs the monitored metric).

Runs the auto-scaling mappings on the galaxy and seismic workloads and
prints the (iteration, active processes, metric) series the paper plots.
Asserts the two relationships Section 5.5 describes:

- ``dyn_auto_multi``: positive correlation between active size and queue
  size (more backlog -> more active processes),
- ``dyn_auto_redis``: inverse relationship between active size and the
  consumer group's average idle time.
"""

import numpy as np


def _correlation(xs, ys):
    if len(xs) < 3 or np.std(xs) == 0 or np.std(ys) == 0:
        return 0.0
    return float(np.corrcoef(xs, ys)[0, 1])


def test_fig13(run_experiment):
    grids = run_experiment("fig13")

    for label, grid in grids.items():
        for (mapping, _p), result in grid.items():
            trace = result.trace
            assert trace is not None, (label, mapping)
            assert len(trace) >= 5, (label, mapping)
            _iters, actives, metrics = trace.series(changes_only=False)
            if mapping == "dyn_auto_multi":
                # active size follows queue size (the paper's "noticeable
                # positive correlation"); loose bound, short traces are
                # noisy and confounded by the ramp-down phase.
                corr = _correlation(actives, metrics)
                assert corr > -0.3, (label, mapping, corr)
            else:
                # Idle-time strategy semantics: shrink decisions happen at
                # higher observed idle times than grow decisions -- the
                # inverse relationship of Figures 13b/13e, asserted at the
                # decision level (whole-trace correlation is confounded by
                # the startup/termination phases).
                shrinks = [p.metric for p in trace.points if p.decision < 0]
                grows = [p.metric for p in trace.points if p.decision > 0]
                if shrinks and grows:
                    mean_shrink = sum(shrinks) / len(shrinks)
                    mean_grow = sum(grows) / len(grows)
                    assert mean_shrink > mean_grow, (label, mapping)
            # active size stays within [1, max_pool]
            assert 1 <= min(actives) and max(actives) <= 15
