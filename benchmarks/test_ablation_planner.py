"""Ablation: the cost-based graph planner (``optimize``).

Fusion (PR 4, ``fuse=``) is one hard-coded rewrite; the planner
generalizes it into a rule pipeline (dead-output elimination, fan-out
replication, grouping-corridor partial fusion, chain fusion) driven by a
profiled cost model.  On a fine-grained chain the planner's win is the
same hop elimination as classic fusion -- the ablation here checks that
generalizing the pass gave none of it back:

- the **astro chain** (readRaDec >> getVOTable >> filterColumns >>
  internalExtinction) in a fine-grained configuration on
  ``dyn_auto_multi`` -- the acceptance bar is **>= 1.3x median paired
  speedup with optimize on vs off**, with byte-identical outputs;
- the planner's own overhead (the profiling dry-run + rule pass) is
  bounded: planning the sentiment workflow stays under a second of real
  time at smoke scale.

``BENCH_SMOKE=1`` shrinks the grid for the CI bench-smoke lane.
"""

import os

import pytest

from repro.bench.harness import BenchConfig, run_cell
from repro.core.graph import WorkflowGraph
from repro.mappings.base import normalize_inputs
from repro.planner import Planner
from repro.platforms.profiles import SERVER
from repro.workflows import build_sentiment_workflow
from repro.workflows.astro.pes import (
    FilterColumns,
    GetVOTable,
    InternalExtinction,
    ReadRaDec,
)

pytestmark = pytest.mark.planner

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: Same regime as the fusion ablation: per-stage compute well below the
#: platform's per-hop transfer latency, replayed slowly enough that the
#: hop cost is visible.
CHAIN_CONFIG = BenchConfig(time_scale=0.1, repeats=1)
PROCESSES = 8
GALAXIES = 200 if SMOKE else 400
PAIR_ROUNDS = 3 if SMOKE else 5


def _fine_chain_factory():
    """The astro chain with fine-grained stages (hop cost dominates)."""
    chain = (
        ReadRaDec(read_cost=0.0005)
        >> GetVOTable(query_latency=0.0, parse_cost=0.0005)
        >> FilterColumns(filter_cost=0.0005)
        >> InternalExtinction(compute_cost=0.0005)
    )
    graph = WorkflowGraph.from_chain(chain, name="galaxy_fine_chain")
    return graph, list(range(GALAXIES))


def _outputs(result):
    return {key: sorted(map(repr, values)) for key, values in result.outputs.items()}


def test_planner_chain_speedup_at_least_1_3x(benchmark, capsys):
    """The acceptance criterion, measured as paired rounds.

    Plain and optimized cells alternate within each round and the *median
    per-round runtime ratio* is asserted, so machine-load drift hits both
    members of a pair alike and cancels.
    """

    def once():
        pairs = []
        for _ in range(PAIR_ROUNDS):
            plain = run_cell(
                _fine_chain_factory, "dyn_auto_multi", PROCESSES, SERVER, CHAIN_CONFIG
            )
            optimized = run_cell(
                _fine_chain_factory, "dyn_auto_multi", PROCESSES, SERVER, CHAIN_CONFIG,
                optimize=True,
            )
            pairs.append((plain, optimized))
        return pairs

    pairs = benchmark.pedantic(once, rounds=1, iterations=1)
    ratios = sorted(p.runtime / o.runtime for p, o in pairs)
    median = ratios[len(ratios) // 2]
    with capsys.disabled():
        print(
            f"\nmedian planner speedup={median:.2f}x over {PAIR_ROUNDS} pairs "
            f"(per-pair: {', '.join(f'{r:.2f}x' for r in ratios)})"
        )
    plain, optimized = pairs[0]
    # The planner collapsed the whole 4-PE chain (via its chain-fusion
    # rule) and stamped its bookkeeping counter...
    assert optimized.counters["fused_chains"] == 1
    assert optimized.counters["fused_members"] == 4
    assert optimized.counters["planner_rules"] >= 1
    # ...with byte-identical outputs under the original result keys...
    assert _outputs(optimized) == _outputs(plain)
    # ...per-member attribution intact...
    for member in ("readRaDec", "getVOTable", "filterColumns", "internalExtinction"):
        assert optimized.counters[f"member_tasks.{member}"] == GALAXIES
        assert member in optimized.pe_times
    # ...and the optimized run clears the acceptance bar.
    assert median >= 1.3


@pytest.mark.parametrize("optimize", (False, True))
def test_planner_chain_grid(benchmark, capsys, optimize):
    """Per-configuration cells of the fine-grained chain (the grid view)."""
    options = {"optimize": True} if optimize else {}

    def once():
        return run_cell(
            _fine_chain_factory, "dyn_auto_multi", PROCESSES, SERVER, CHAIN_CONFIG,
            **options,
        )

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\n[optimize={optimize}] runtime={result.runtime:.3f}s "
            f"tasks={result.counters['tasks']} outputs={result.total_outputs()}"
        )
    assert result.total_outputs() == GALAXIES


def test_planning_overhead_is_bounded(benchmark, capsys):
    """Profiling dry-run + rule pass on the 8-PE sentiment workflow."""
    graph, inputs = build_sentiment_workflow(articles=50)
    provided = normalize_inputs(graph, inputs)

    def once():
        return Planner.default().plan(graph, provided=provided)

    plan = benchmark.pedantic(once, rounds=3, iterations=1)
    with capsys.disabled():
        print(
            f"\n[plan-overhead] rules={len(plan.steps)} "
            f"sampled={plan.cost.sampled} tuple(s)"
        )
    assert plan.transformed
    # 5 sample tuples through 8 PEs at 1% time scale: planning is cheap.
    assert benchmark.stats.stats.max < 1.0
