"""Ablation: operator fusion (``fuse``).

The hop-elimination lever of the efficiency track: batching (PR 3) made
every queue hop cheaper; fusion removes the hop.  Collapsing a linear 1:1
PE chain into one in-process ``FusedPE`` deletes, per removed hop and
tuple, the enqueue/dequeue pair, the platform's modelled transfer latency
(``queue_latency``), and one full scheduling round trip through the global
task queue -- the costs that dominate fine-grained streams.

Measured here:

- the **astro chain** (readRaDec >> getVOTable >> filterColumns >>
  internalExtinction) in a fine-grained configuration (synthetic per-stage
  cost dwarfed by per-hop cost) on ``dyn_auto_multi`` -- the acceptance
  bar is **>= 1.3x median paired speedup with fusion on vs off**, with
  byte-identical outputs.  Runs use a time scale large enough that the
  platform's modelled transfer cost is visible (debt-batched micro-scales
  hide exactly the cost fusion removes);
- the **sentiment scoring plane** on ``dyn_auto_multi``, where both
  scorer branches fuse -- results must stay byte-identical (speedup
  reported informationally; scoring bodies are compute-heavy, so the
  fine-grained multiplier does not apply);
- the **full stateful sentiment workflow** on ``hybrid_redis``: fused
  stateless branches feed the pinned stateful plane unchanged.

``BENCH_SMOKE=1`` shrinks the grid for the CI bench-smoke lane.
"""

import os

import pytest

from repro.bench.harness import BenchConfig, run_cell
from repro.core.graph import WorkflowGraph
from repro.platforms.profiles import SERVER
from repro.workflows import (
    build_sentiment_scoring_workflow,
    build_sentiment_workflow,
)
from repro.workflows.astro.pes import (
    FilterColumns,
    GetVOTable,
    InternalExtinction,
    ReadRaDec,
)

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: Fine-grained runs replay at 10% speed so the platform's per-hop
#: transfer latency (0.2 ms nominal on SERVER) stays visible; the chain's
#: per-stage compute is set well below it.
CHAIN_CONFIG = BenchConfig(time_scale=0.1, repeats=1)
SENTIMENT_CONFIG = BenchConfig(time_scale=0.01, repeats=1)
PROCESSES = 8
GALAXIES = 200 if SMOKE else 400
ARTICLES = 120 if SMOKE else 200
PAIR_ROUNDS = 3 if SMOKE else 5


def _fine_chain_factory():
    """The astro chain with fine-grained stages (hop cost dominates)."""
    chain = (
        ReadRaDec(read_cost=0.0005)
        >> GetVOTable(query_latency=0.0, parse_cost=0.0005)
        >> FilterColumns(filter_cost=0.0005)
        >> InternalExtinction(compute_cost=0.0005)
    )
    graph = WorkflowGraph.from_chain(chain, name="galaxy_fine_chain")
    return graph, list(range(GALAXIES))


def _scoring_factory():
    return build_sentiment_scoring_workflow(articles=ARTICLES)


def _full_factory():
    return build_sentiment_workflow(articles=ARTICLES)


def _outputs(result):
    return {key: sorted(map(repr, values)) for key, values in result.outputs.items()}


def test_fused_chain_speedup_at_least_1_3x(benchmark, capsys):
    """The acceptance criterion, measured as paired rounds.

    Fused and unfused cells alternate within each round and the *median
    per-round runtime ratio* is asserted, so machine-load drift hits both
    members of a pair alike and cancels.
    """

    def once():
        pairs = []
        for _ in range(PAIR_ROUNDS):
            unfused = run_cell(
                _fine_chain_factory, "dyn_auto_multi", PROCESSES, SERVER, CHAIN_CONFIG
            )
            fused = run_cell(
                _fine_chain_factory, "dyn_auto_multi", PROCESSES, SERVER, CHAIN_CONFIG,
                fuse=True,
            )
            pairs.append((unfused, fused))
        return pairs

    pairs = benchmark.pedantic(once, rounds=1, iterations=1)
    ratios = sorted(u.runtime / f.runtime for u, f in pairs)
    median = ratios[len(ratios) // 2]
    with capsys.disabled():
        print(
            f"\nmedian fusion speedup={median:.2f}x over {PAIR_ROUNDS} pairs "
            f"(per-pair: {', '.join(f'{r:.2f}x' for r in ratios)})"
        )
    unfused, fused = pairs[0]
    # The whole 4-PE chain collapsed into one operator...
    assert fused.counters["fused_chains"] == 1
    assert fused.counters["fused_members"] == 4
    # ...with byte-identical outputs under the original result keys...
    assert _outputs(fused) == _outputs(unfused)
    # ...per-member metrics preserved through the fusion...
    for member in ("readRaDec", "getVOTable", "filterColumns", "internalExtinction"):
        assert fused.counters[f"member_tasks.{member}"] == GALAXIES
        assert member in fused.pe_times
    # ...and the fused run clears the acceptance bar.
    assert median >= 1.3


@pytest.mark.parametrize("fuse", (False, True))
def test_fusion_chain_grid(benchmark, capsys, fuse):
    """Per-configuration cells of the fine-grained chain (the grid view)."""
    options = {"fuse": True} if fuse else {}

    def once():
        return run_cell(
            _fine_chain_factory, "dyn_auto_multi", PROCESSES, SERVER, CHAIN_CONFIG,
            **options,
        )

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\n[fuse={fuse}] runtime={result.runtime:.3f}s "
            f"tasks={result.counters['tasks']} outputs={result.total_outputs()}"
        )
    assert result.total_outputs() == GALAXIES


def test_sentiment_scoring_fused_identical(benchmark, capsys):
    """Both scorer branches fuse; the scored stream must not change."""

    def once():
        unfused = run_cell(
            _scoring_factory, "dyn_auto_multi", PROCESSES, SERVER, SENTIMENT_CONFIG
        )
        fused = run_cell(
            _scoring_factory, "dyn_auto_multi", PROCESSES, SERVER, SENTIMENT_CONFIG,
            fuse=True,
        )
        return unfused, fused

    unfused, fused = benchmark.pedantic(once, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\n[scoring] unfused={unfused.runtime:.3f}s fused={fused.runtime:.3f}s "
            f"(x{unfused.runtime / fused.runtime:.2f}) "
            f"chains={fused.counters['fused_chains']}"
        )
    assert fused.counters["fused_chains"] == 2
    assert _outputs(fused) == _outputs(unfused)


def test_hybrid_stateful_fusion_identical_results(benchmark, capsys):
    """Fused stateless branches feeding the pinned stateful plane."""

    def once():
        unfused = run_cell(_full_factory, "hybrid_redis", 14, SERVER, SENTIMENT_CONFIG)
        fused = run_cell(
            _full_factory, "hybrid_redis", 14, SERVER, SENTIMENT_CONFIG, fuse=True
        )
        return unfused, fused

    unfused, fused = benchmark.pedantic(once, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\n[hybrid] unfused={unfused.runtime:.3f}s fused={fused.runtime:.3f}s "
            f"(x{unfused.runtime / fused.runtime:.2f})"
        )
    assert fused.counters["fused_chains"] == 2
    assert fused.output("top3Happiest", "top3") == unfused.output(
        "top3Happiest", "top3"
    )
