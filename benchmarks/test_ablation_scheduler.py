"""Ablation: concurrent scheduler admission vs serialized warm submits.

The multi-job service exists so N small jobs stop queueing behind one
another on a single warm session.  This cell quantifies the tentpole's
claim: a burst of small sentiment-scoring jobs pushed through a
:class:`~repro.scheduler.JobScheduler` (``max_concurrent=4`` over a
prewarmed 4-deployment pool) against the pre-scheduler best case -- one
engine, one warm session, strictly serialized ``submit().wait()`` calls.

Both modes run the same catalog workflow with the same seed; per-job
outputs must be identical down to the byte (after canonical ordering --
parallel collection order is not part of the contract).  The jobs are
sleep-dominated (emulated compute under ``time_scale``), so concurrency
translates into real wall-clock speedup rather than GIL contention.

Acceptance bar: **sustained jobs/sec >= 2x serialized**.  A second,
informational cell reports the scheduler's p99 submit -> first-result
latency (the service-level metric the stats surface exists for).

``BENCH_SMOKE=1`` shrinks the workload for the CI bench-smoke lane.
"""

import os
import time

import pytest

from repro.engine import Engine
from repro.scheduler import JobScheduler
from repro.scheduler.catalog import build_named_workflow

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: Large enough that per-job runtime (~70-120 ms) dwarfs the ~10 ms of
#: fixed submit/admission overhead; at 0.002 the burst is overhead-bound
#: and the concurrency win disappears into noise.
TIME_SCALE = 0.1
PROCESSES = 4
MAPPING = "dyn_auto_multi"
N_JOBS = 8
ARTICLES = 12 if SMOKE else 20
MAX_CONCURRENT = 4
#: 4-wide admission over sleep-dominated jobs leaves ample margin over 2x.
SPEEDUP_BAR = 2.0


def _workflow():
    graph, default_inputs = build_named_workflow(
        "sentiment-scoring", articles=ARTICLES
    )
    return graph, default_inputs


def _canonical(result):
    """Per-job outputs with collection order normalized, as bytes."""
    ordered = {
        key: sorted(values, key=repr)
        for key, values in sorted(result.outputs.items())
    }
    return repr(ordered).encode("utf-8")


def _serialized_burst():
    """Pre-scheduler best case: warm session, strictly one job at a time."""
    engine = Engine(
        mapping=MAPPING, processes=PROCESSES, time_scale=TIME_SCALE, seed=0
    )
    graph, inputs = _workflow()
    prime = engine.submit(graph, inputs=inputs).wait(timeout=120.0)
    assert prime.counters["deploy_cold"] == 1
    started = time.perf_counter()
    results = []
    for _ in range(N_JOBS):
        graph, inputs = _workflow()
        results.append(engine.submit(graph, inputs=inputs).wait(timeout=120.0))
    elapsed = time.perf_counter() - started
    assert results[-1].counters["deploy_warm"] == 1  # session reuse held
    engine.close()
    return elapsed, results


def _scheduled_burst():
    """The tentpole: N jobs admitted concurrently over a prewarmed pool."""
    engine = Engine(
        mapping=MAPPING, processes=PROCESSES, time_scale=TIME_SCALE, seed=0
    )
    scheduler = JobScheduler(
        engine, max_concurrent=MAX_CONCURRENT, pool_size=MAX_CONCURRENT
    )
    assert scheduler.prewarm(MAPPING) == MAX_CONCURRENT
    started = time.perf_counter()
    jobs = []
    for _ in range(N_JOBS):
        graph, inputs = _workflow()
        job = scheduler.submit(graph, inputs)
        job.close_input()
        jobs.append(job)
    results = [job.wait(timeout=120.0) for job in jobs]
    elapsed = time.perf_counter() - started
    stats = scheduler.stats
    assert stats.completed == N_JOBS
    assert stats.peak_running <= MAX_CONCURRENT
    for result in results:
        # Every admission came from the warm pool; no busy cold fallbacks.
        assert result.counters.get("deploy_busy_fallback", 0) == 0
    p99 = stats.first_result_percentile(99)
    jps = stats.jobs_per_second()
    scheduler.close()
    engine.close()
    return elapsed, results, p99, jps


def test_scheduler_throughput_vs_serialized(benchmark, capsys):
    """The acceptance criterion: >= 2x sustained jobs/sec, identical outputs."""

    def once():
        serial_elapsed, serial_results = _serialized_burst()
        sched_elapsed, sched_results, p99, jps = _scheduled_burst()
        return serial_elapsed, serial_results, sched_elapsed, sched_results, jps

    serial_elapsed, serial_results, sched_elapsed, sched_results, jps = (
        benchmark.pedantic(once, rounds=1, iterations=1)
    )
    serial_jps = N_JOBS / serial_elapsed
    sched_jps = N_JOBS / sched_elapsed
    ratio = sched_jps / serial_jps
    with capsys.disabled():
        print(
            f"\n[scheduler] {N_JOBS} x sentiment-scoring({ARTICLES}): "
            f"serialized {serial_jps:.2f} jobs/s, scheduled {sched_jps:.2f} "
            f"jobs/s ({ratio:.2f}x, stats-window {jps:.2f} jobs/s) at "
            f"max_concurrent={MAX_CONCURRENT}"
        )
    # Byte-identical per-job outputs: same workflow, same seed, both modes.
    reference = _canonical(serial_results[0])
    for result in serial_results + sched_results:
        assert _canonical(result) == reference
    assert ratio >= SPEEDUP_BAR


def test_scheduler_first_result_latency(benchmark, capsys):
    """Informational: p99 submit -> first-result under concurrent admission."""

    def once():
        _elapsed, _results, p99, _jps = _scheduled_burst()
        return p99

    p99 = benchmark.pedantic(once, rounds=1, iterations=1)
    assert p99 is not None and p99 > 0
    with capsys.disabled():
        print(
            f"\n[scheduler] p99 submit->first-result = {p99 * 1000:.0f} ms "
            f"over {N_JOBS} jobs (informational, not gated)"
        )
