"""Ablation: termination strategy (Section 3.2.3).

Compares the paper's retry + poison-pill protocol under different retry
budgets and poll intervals, plus the unsafe plain-emptiness check, on the
same dynamic workload.  Shows the trade-off the paper describes: fewer
retries terminate faster but (in the unsafe variant) risk premature exits;
the drained-proof default is safe at every setting.
"""

import pytest

from repro.bench.harness import BenchConfig, run_cell
from repro.mappings.termination import TerminationPolicy
from repro.platforms.profiles import SERVER
from repro.workflows.astro.workflow import build_internal_extinction_workflow


def _factory():
    return build_internal_extinction_workflow(scale=1)


CONFIG = BenchConfig(time_scale=0.01)


@pytest.mark.parametrize(
    "label,policy",
    [
        ("retry=1 fast-poll", TerminationPolicy(poll_interval=0.005, empty_retries=1)),
        ("retry=3 (paper-ish)", TerminationPolicy(poll_interval=0.02, empty_retries=3)),
        ("retry=8 slow-poll", TerminationPolicy(poll_interval=0.05, empty_retries=8)),
        (
            "unsafe emptiness check",
            TerminationPolicy(poll_interval=0.02, empty_retries=3, unsafe_empty_check=True),
        ),
    ],
)
def test_termination_ablation(benchmark, capsys, label, policy):
    def once():
        return run_cell(_factory, "dyn_multi", 8, SERVER, CONFIG, termination=policy)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\n[{label}] runtime={result.runtime:.3f}s "
            f"empty_polls={result.counters.get('empty_polls', 0)} "
            f"outputs={result.total_outputs()}"
        )
    if not policy.unsafe_empty_check:
        assert result.total_outputs() == 100  # drained-proof: never loses work
