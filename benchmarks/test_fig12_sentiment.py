"""Figure 12 (a/b): Sentiment Analyses for News Articles, multi vs hybrid.

The stateful showdown (Section 5.4): ``hybrid_redis`` (4 pinned
``happyState`` instances, 2 ``top3Happiest`` instances, remaining workers
dynamically sharing the stateless load) against the static ``multi``
baseline.  Asserts:

- hybrid runs from 8 processes while multi needs 14 (the paper's minima),
- hybrid's runtime improves as processes grow (more stateless sharing),
- hybrid beats multi on runtime at the shared process counts (the paper
  reaches 0.32x at full scale; shape, not the absolute factor, is asserted).
"""


def _check(grid):
    assert ("multi", 8) not in grid
    assert ("hybrid_redis", 8) in grid

    # hybrid exhibits speed-up as the number of processes increases
    assert grid[("hybrid_redis", 16)].runtime < grid[("hybrid_redis", 8)].runtime

    # hybrid_redis outperforms multi (mean over shared process counts)
    ratios = [
        grid[("hybrid_redis", p)].runtime / grid[("multi", p)].runtime
        for p in (14, 16)
    ]
    assert sum(ratios) / len(ratios) < 1.0, ratios


def test_fig12a_server(run_experiment):
    _check(run_experiment("fig12a")["400 articles"])


def test_fig12b_cloud(run_experiment):
    _check(run_experiment("fig12b")["400 articles"])
