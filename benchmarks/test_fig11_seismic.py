"""Figure 11 (a/b/c): Seismic Cross-Correlation phase 1 on all platforms.

The 9-PE, 50-station pipeline with heterogeneous stage costs.  Checks the
patterns Section 5.3 reports: runtimes trend down / process times up with
more processes, auto-scaling keeps its process-time advantage, and the
static ``multi`` series only exists from its 12-process minimum.
"""

from repro.bench.reporting import (
    autoscaling_saves_process_time,
    process_time_increases_with_processes,
)


def test_fig11a_server(run_experiment):
    grids = run_experiment("fig11a")
    grid = grids["50 stations"]

    # multi cannot run below 12 processes (9 PEs, static one-per-instance).
    assert ("multi", 5) not in grid
    assert ("multi", 12) in grid

    assert process_time_increases_with_processes(grid, "dyn_multi")
    assert autoscaling_saves_process_time(grid, "dyn_auto_multi", "dyn_multi")
    assert autoscaling_saves_process_time(grid, "dyn_auto_redis", "dyn_redis")


def test_fig11b_cloud(run_experiment):
    grids = run_experiment("fig11b")
    grid = grids["50 stations"]
    assert autoscaling_saves_process_time(grid, "dyn_auto_multi", "dyn_multi")


def test_fig11c_hpc(run_experiment):
    grids = run_experiment("fig11c")
    grid = grids["50 stations"]
    assert all("redis" not in m for (m, _p) in grid)
    assert autoscaling_saves_process_time(grid, "dyn_auto_multi", "dyn_multi")
