"""Ablation: in-process keyspace calls vs the same calls over RESP/TCP.

The networked substrate puts a real socket between the engine and the
keyspace.  These cells measure what the wire costs and prove the
distributed mapping stays correct at benchmark scale:

1. the same rpush/lpop traffic against the in-process
   :class:`~repro.redisim.client.RedisClient` and against
   :class:`~repro.net.client.SocketRedisClient` over a TCP loopback --
   the printed ratio is the per-operation price of serialization, framing
   and kernel round-trips;
2. one ``cluster_redis`` sentiment run (worker OS processes joining by
   ``host:port``) as an end-to-end latency cell.

All cells are **informational**: single round, sub-second, so the CI
perf-regression gate (scripts/check_bench.py) records but does not gate
them -- socket latency on shared runners is far too noisy to gate at 20%.
"""

import os
import time

import pytest

from repro import run
from repro.net.client import SocketRedisClient
from repro.net.server import RespTCPServer
from repro.redisim.client import RedisClient
from repro.redisim.server import RedisServer
from repro.workflows import build_sentiment_scoring_workflow

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: rpush/lpop pairs per transport cell (each pair is two commands).
OPS = 400 if SMOKE else 1200


def _traffic(client):
    """The measured workload: OPS queue round-trips, then a drain check."""
    for i in range(OPS):
        client.rpush("bench:q", ("payload", i))
        client.lpop("bench:q")
    return client.llen("bench:q")


@pytest.fixture(scope="module")
def tcp_server():
    server = RespTCPServer().start()
    yield server
    server.close()


def test_transport_in_process(benchmark):
    client = RedisClient(RedisServer())
    remaining = benchmark.pedantic(lambda: _traffic(client), rounds=1, iterations=1)
    assert remaining == 0


def test_transport_tcp_loopback(benchmark, capsys, tcp_server):
    client = SocketRedisClient(address=tcp_server.address)

    # Untimed reference for the printed ratio (the in-process cell above is
    # the recorded baseline; this keeps the comparison within one process).
    local = RedisClient(RedisServer())
    started = time.perf_counter()
    _traffic(local)
    local_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    remaining = benchmark.pedantic(lambda: _traffic(client), rounds=1, iterations=1)
    tcp_elapsed = time.perf_counter() - started
    client.close()
    assert remaining == 0
    with capsys.disabled():
        per_op_us = tcp_elapsed / (2 * OPS) * 1e6
        print(
            f"\n[network] {2 * OPS} commands: in-process {local_elapsed * 1e3:.1f} ms, "
            f"TCP loopback {tcp_elapsed * 1e3:.1f} ms "
            f"({tcp_elapsed / max(local_elapsed, 1e-9):.1f}x, "
            f"{per_op_us:.0f} us/command on the wire)"
        )


def test_cluster_sentiment_over_tcp(benchmark):
    """End-to-end distributed run: worker processes over a real socket."""
    graph, inputs = build_sentiment_scoring_workflow(articles=20)

    def once():
        return run(
            graph,
            inputs=inputs,
            mapping="cluster_redis",
            processes=2,
            seed=3,
            time_scale=0.002,
            # fork keeps the cell sub-second (spawn pays interpreter boot).
            start_method="fork",
        )

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    assert result.total_outputs() == 40
    assert result.counters.get("graph_copies") == 2
