"""Figure 10: Internal Extinction of Galaxies on HPC (64 cores).

The multiprocessing family only (no Redis on the HPC cluster), 4..64
processes, with the heavier 5X/10X workloads.  Asserts Section 5.2's HPC
findings: a quick runtime drop up to ~16 processes that then flattens, a
near-linear process-time growth for ``dyn_multi``, and a visibly flatter
slope for ``dyn_auto_multi`` ("strongly supports the effectiveness of
auto-scaling, especially when a large number of processes are involved").
"""


def test_fig10(run_experiment):
    grids = run_experiment("fig10")
    ten_x = grids["10X standard"]

    # Runtime drops to 16 processes, then flattens.  (The paper's drop
    # factor is larger; our thread substrate has a GIL floor per task --
    # see EXPERIMENTS.md deviations.)
    r4 = ten_x[("dyn_multi", 4)].runtime
    r16 = ten_x[("dyn_multi", 16)].runtime
    r64 = ten_x[("dyn_multi", 64)].runtime
    assert r16 < r4 * 0.9
    assert r64 < r4 * 1.4  # flattening: no strong regression at full width

    # Process time: dyn_multi grows steeply with processes (near-linear in
    # the paper); the auto-scaled variant stays clearly below it at scale.
    pt_growth_dyn = (
        ten_x[("dyn_multi", 64)].process_time / ten_x[("dyn_multi", 8)].process_time
    )
    assert pt_growth_dyn > 2.0

    # At 64 processes the auto-scaler must be the more efficient option.
    assert (
        ten_x[("dyn_auto_multi", 64)].process_time
        < ten_x[("dyn_multi", 64)].process_time
    )
