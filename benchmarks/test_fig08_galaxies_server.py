"""Figure 8: Internal Extinction of Galaxies on the server (16 cores).

Regenerates the six-technique runtime / total-process-time series for the
1X standard, 5X standard and 1X heavy workloads over 5..15 processes, and
asserts the shapes reported in Section 5.2:

- every technique's runtime trends down with more processes,
- process time grows with more processes for the dynamic mappings,
- the auto-scaling variants beat their dynamic baselines on process time.
"""

from repro.bench.reporting import (
    autoscaling_saves_process_time,
    runtimes_decrease_with_processes,
)


def test_fig08(run_experiment):
    grids = run_experiment("fig08")
    standard = grids["1X standard"]

    # (dyn_auto_* runtimes fluctuate with scaler decisions; the paper's
    # downtrend claim is asserted on the deterministic-allocation mappings.
    # dyn_redis is checked on the 5X workload over 5..10 processes: beyond
    # ~10 consumer threads the in-process Redis substrate's lock convoy
    # flattens the curve -- a substrate artifact documented in
    # EXPERIMENTS.md, not a property of the mapping.)
    for mapping in ("dyn_multi", "multi"):
        assert runtimes_decrease_with_processes(standard, mapping, tolerance=2.0), mapping
    five_x = grids["5X standard"]
    assert five_x[("dyn_redis", 10)].runtime < five_x[("dyn_redis", 5)].runtime * 1.05

    assert autoscaling_saves_process_time(standard, "dyn_auto_multi", "dyn_multi")
    assert autoscaling_saves_process_time(standard, "dyn_auto_redis", "dyn_redis")

    # 5X carries 5x the stream: runtimes must grow with the workload.
    heavy5 = grids["5X standard"]
    assert heavy5[("dyn_multi", 10)].runtime > standard[("dyn_multi", 10)].runtime
