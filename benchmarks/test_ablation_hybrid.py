"""Ablation: hybrid private queues vs a global-state strawman.

Section 3.1.2 argues the hybrid's dedicated private queues "eliminate the
need for continuous state synchronization, enhancing performance compared
to traditional global state management approaches".  The strawman here
routes *all* stateful traffic through a single pinned instance (as a
global-state coordinator would serialize it); the hybrid's 4-way
partitioned ``happyState`` must beat it.
"""

import pytest

from repro.bench.harness import BenchConfig, run_cell
from repro.platforms.profiles import SERVER
from repro.workflows.sentiment.workflow import build_sentiment_workflow

CONFIG = BenchConfig(time_scale=0.03, repeats=3)


def _partitioned():
    return build_sentiment_workflow(articles=250, happy_instances=4)


def _serialized():
    # Global-state strawman: one coordinator instance owns all state.
    return build_sentiment_workflow(articles=250, happy_instances=1)


def test_hybrid_partitioning_ablation(benchmark, capsys):
    # Equal stateless pools (6 workers each) so the comparison isolates the
    # stateful plane: partitioned = 6 stateful + 6 stateless of 12;
    # serialized = 3 stateful + 6 stateless of 9.
    def once():
        partitioned = run_cell(_partitioned, "hybrid_redis", 12, SERVER, CONFIG)
        serialized = run_cell(_serialized, "hybrid_redis", 9, SERVER, CONFIG)
        return partitioned, serialized

    partitioned, serialized = benchmark.pedantic(once, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\npartitioned(4 instances): {partitioned.runtime:.3f}s | "
            f"serialized(1 instance): {serialized.runtime:.3f}s"
        )
    # Both compute identical results...
    top_a = partitioned.output("top3Happiest", "top3")
    top_b = serialized.output("top3Happiest", "top3")
    assert [r[:2] for r in top_a[0]] == [r[:2] for r in top_b[0]]
    # ...and partitioning must not be slower than full serialization
    # (generous bound: at this scale the stateful plane is a small share
    # of the runtime, so the win is bounded by noise).
    assert partitioned.runtime <= serialized.runtime * 1.4
