"""Table 2: runtime / process-time ratios for the seismic workflow.

Section 5.3.1's finding: on this more complex workflow the optimal runtime
ratios exceed 1 (the naive auto-scaler struggles to gauge demand for
intricate workflows), but the process-time ratios stay consistently below
1 -- "affirming the efficiency of auto-scaling even in complex scenarios".
"""

from repro.metrics.ratios import summarize_ratios


def test_table2(run_experiment):
    grids = run_experiment("table2")
    grid = grids["50 stations"]

    for auto, base in (("dyn_auto_multi", "dyn_multi"), ("dyn_auto_redis", "dyn_redis")):
        summary = summarize_ratios(grid, auto, base)
        pt_mean, _ = summary.process_time_mean_std
        assert pt_mean < 1.0, (auto, pt_mean)
        assert summary.by_process_time.process_time_ratio < 0.9, auto
