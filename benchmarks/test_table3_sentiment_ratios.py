"""Table 3: hybrid_redis vs multi ratios on the sentiment workflow.

The paper reports all ratios below 1 on both platforms (0.32 runtime in
the best server case) -- "especially noteworthy, based on the observation
that the Redis mapping is overall slower than Multiprocessing with the
same settings".  We assert the sub-1 mean ratios; the absolute factor
depends on testbed scale (see EXPERIMENTS.md).
"""

from repro.metrics.ratios import summarize_ratios


def test_table3(run_experiment):
    grids = run_experiment("table3")
    grid = grids["400 articles"]

    summary = summarize_ratios(grid, "hybrid_redis", "multi")
    rt_mean, _ = summary.runtime_mean_std
    assert rt_mean < 1.0, rt_mean
    assert summary.by_runtime.runtime_ratio < 0.95
