"""Table 1: runtime / process-time ratios for the galaxy workflow.

Prints the prioritized ratio rows exactly as the paper's Table 1 lays them
out and asserts the headline result: auto-scaling achieves process-time
ratios below 1 against plain dynamic scheduling (the paper's best case is
0.87 runtime at 0.76 process time; prioritizing process time it reaches
0.46 at a 1.01 runtime).
"""

from repro.metrics.ratios import summarize_ratios


def test_table1(run_experiment):
    grids = run_experiment("table1")
    grid = grids["1X standard"]

    for auto, base in (("dyn_auto_multi", "dyn_multi"), ("dyn_auto_redis", "dyn_redis")):
        summary = summarize_ratios(grid, auto, base)
        pt_mean, _pt_std = summary.process_time_mean_std
        assert pt_mean < 1.0, (auto, pt_mean)
        # prioritized-by-process-time row: strong efficiency win
        assert summary.by_process_time.process_time_ratio < 0.85, auto
        # runtime must not blow up in exchange
        rt_mean, _ = summary.runtime_mean_std
        assert rt_mean < 2.5, (auto, rt_mean)
