"""Figure 9: Internal Extinction of Galaxies on the cloud (8 cores).

Same grid as Figure 8 on the 8-core platform.  Checks the paper's cloud
observations: overall trends match the server, but with only 8 cores the
gain from oversubscribed process counts (12, 15) flattens out.
"""

from repro.bench.reporting import autoscaling_saves_process_time


def test_fig09(run_experiment):
    grids = run_experiment("fig09")
    standard = grids["1X standard"]

    assert autoscaling_saves_process_time(standard, "dyn_auto_multi", "dyn_multi")

    # Oversubscription: moving 10 -> 15 processes on 8 cores must NOT give
    # anything close to the ideal 1.5x speedup; the curve flattens.
    r10 = standard[("dyn_multi", 10)].runtime
    r15 = standard[("dyn_multi", 15)].runtime
    assert r15 > r10 * 0.75

    # "overall performance on server is slightly better than cloud" cannot
    # be asserted across separate benchmark sessions here, but within the
    # cloud grid the slower cores must show on the heavy workload:
    heavy = grids["1X heavy"]
    assert heavy[("dyn_multi", 10)].runtime > standard[("dyn_multi", 10)].runtime
