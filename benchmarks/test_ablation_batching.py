"""Ablation: micro-batched tuple transport (``batch_size``).

The transport lever of this reproduction's efficiency track: shipping one
tuple per queue/stream operation makes the per-tuple enactment overhead
(round trips, server-lock handoffs, wakeups) the dominant cost of
fine-grained streams.  Batch envelopes amortize it by the batch factor.

Measured here on the sentiment workflow:

- the stateless scoring plane on ``dyn_auto_redis`` (the paper's heaviest
  transport: every tuple is a Redis round trip) -- the acceptance bar is
  **>= 1.3x throughput at batch_size=32 vs batch_size=1**, asserted as the
  median of paired rounds so machine-load drift cancels;
- the full stateful workflow on ``hybrid_redis``, where both planes batch
  (global stream envelopes + private-queue RPUSHSEQ envelopes) and results
  must stay identical to the unbatched run.

``BENCH_SMOKE=1`` shrinks the grid for the CI bench-smoke lane.
"""

import os

import pytest

from repro.bench.harness import BenchConfig, run_cell
from repro.platforms.profiles import SERVER
from repro.workflows import (
    build_sentiment_scoring_workflow,
    build_sentiment_workflow,
)

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

CONFIG = BenchConfig(time_scale=0.005, repeats=1 if SMOKE else 3)
PROCESSES = 8
ARTICLES = 120 if SMOKE else 200
PAIR_ROUNDS = 3 if SMOKE else 5
BATCH_SIZES = (1, 8, 32)


def _scoring_factory():
    return build_sentiment_scoring_workflow(articles=ARTICLES)


def _full_factory():
    return build_sentiment_workflow(articles=ARTICLES)


def _outputs(result):
    return {key: sorted(map(repr, values)) for key, values in result.outputs.items()}


def _throughput(result) -> float:
    return result.counters["tasks"] / result.runtime


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batching_throughput_grid(benchmark, capsys, batch_size):
    """Throughput of the scoring plane per batch size (the Figure-style grid)."""
    options = {"batch_size": batch_size} if batch_size > 1 else {}

    def once():
        return run_cell(
            _scoring_factory, "dyn_auto_redis", PROCESSES, SERVER, CONFIG, **options
        )

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\n[batch_size={batch_size}] runtime={result.runtime:.3f}s "
            f"throughput={_throughput(result):.0f} tasks/s "
            f"tasks={result.counters['tasks']} outputs={result.total_outputs()}"
        )
    assert result.total_outputs() == 2 * ARTICLES


def test_batch32_speedup_at_least_1_3x(benchmark, capsys):
    """The acceptance criterion, measured as paired rounds.

    Unbatched and batch-32 cells alternate within each round and the
    *median per-round throughput ratio* is asserted: machine-load drift
    hits both members of a pair alike and cancels, where two separately
    timed blocks would let it masquerade as a batching effect.
    """

    def once():
        pairs = []
        for _ in range(PAIR_ROUNDS):
            unbatched = run_cell(
                _scoring_factory, "dyn_auto_redis", PROCESSES, SERVER, CONFIG
            )
            batched = run_cell(
                _scoring_factory, "dyn_auto_redis", PROCESSES, SERVER, CONFIG,
                batch_size=32,
            )
            pairs.append((unbatched, batched))
        return pairs

    pairs = benchmark.pedantic(once, rounds=1, iterations=1)
    ratios = sorted(_throughput(b) / _throughput(u) for u, b in pairs)
    median = ratios[len(ratios) // 2]
    with capsys.disabled():
        print(
            f"\nmedian speedup={median:.2f}x over {PAIR_ROUNDS} pairs "
            f"(per-pair: {', '.join(f'{r:.2f}x' for r in ratios)})"
        )
    # Identical results with and without batching...
    unbatched, batched = pairs[0]
    assert _outputs(batched) == _outputs(unbatched)
    # ...and the batched transport clears the acceptance bar.
    assert median >= 1.3


def test_hybrid_stateful_batching_identical_results(benchmark, capsys):
    """Both hybrid planes batch; the stateful aggregates must not change."""

    def once():
        unbatched = run_cell(
            _full_factory, "hybrid_redis", 14, SERVER, CONFIG
        )
        batched = run_cell(
            _full_factory, "hybrid_redis", 14, SERVER, CONFIG, batch_size=32
        )
        return unbatched, batched

    unbatched, batched = benchmark.pedantic(once, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\n[hybrid] unbatched={unbatched.runtime:.3f}s "
            f"batched={batched.runtime:.3f}s "
            f"(x{unbatched.runtime / batched.runtime:.2f})"
        )
    assert batched.output("top3Happiest", "top3") == unbatched.output(
        "top3Happiest", "top3"
    )
    assert batched.counters["stateful_tasks"] == unbatched.counters["stateful_tasks"]
