"""Ablation: checkpoint/restore overhead on the hybrid stateful plane.

Recoverable mode changes the private-queue hot path (BLPOP becomes BLMOVE
into a pending log; outstanding credits are released in checkpoint-sized
batches; every ``checkpoint_interval`` deliveries the instance snapshots
its state).  The acceptance bar: at the default interval the end-to-end
runtime overhead on the sentiment workflow stays within 10%.
"""

import pytest

from repro.bench.harness import BenchConfig, run_cell
from repro.platforms.profiles import SERVER
from repro.state import DEFAULT_CHECKPOINT_INTERVAL
from repro.workflows.sentiment.workflow import build_recoverable_sentiment_workflow

CONFIG = BenchConfig(time_scale=0.03, repeats=3)
PROCESSES = 12
ARTICLES = 250


def _factory():
    return build_recoverable_sentiment_workflow(articles=ARTICLES)


@pytest.mark.parametrize(
    "label,options",
    [
        ("no checkpointing (baseline)", {}),
        (
            f"default interval ({DEFAULT_CHECKPOINT_INTERVAL})",
            {"checkpoint_interval": DEFAULT_CHECKPOINT_INTERVAL},
        ),
        ("aggressive interval (1)", {"checkpoint_interval": 1}),
    ],
)
def test_checkpoint_overhead_grid(benchmark, capsys, label, options):
    def once():
        return run_cell(_factory, "hybrid_redis", PROCESSES, SERVER, CONFIG, **options)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\n[{label}] runtime={result.runtime:.3f}s "
            f"checkpoints={result.counters.get('checkpoints', 0)} "
            f"outputs={result.total_outputs()}"
        )
    assert result.output("top3Happiest", "top3")


def test_default_interval_overhead_within_10_percent(benchmark, capsys):
    """The acceptance criterion, measured as paired rounds.

    Baseline and checkpointed cells alternate within each round and the
    *median per-round ratio* is asserted: machine-load drift hits both
    members of a pair alike and cancels, where two separately timed blocks
    would let it masquerade as checkpoint overhead.
    """
    pair_config = BenchConfig(time_scale=CONFIG.time_scale, repeats=1)
    rounds = 5

    def once():
        pairs = []
        for _ in range(rounds):
            baseline = run_cell(_factory, "hybrid_redis", PROCESSES, SERVER, pair_config)
            checkpointed = run_cell(
                _factory, "hybrid_redis", PROCESSES, SERVER, pair_config,
                checkpoint_interval=DEFAULT_CHECKPOINT_INTERVAL,
            )
            pairs.append((baseline, checkpointed))
        return pairs

    pairs = benchmark.pedantic(once, rounds=1, iterations=1)
    ratios = sorted(c.runtime / b.runtime for b, c in pairs)
    median_ratio = ratios[len(ratios) // 2]
    baseline, checkpointed = pairs[0]
    with capsys.disabled():
        print(
            f"\nmedian overhead={100 * (median_ratio - 1):+.1f}% over {rounds} pairs "
            f"(per-pair: {', '.join(f'{100 * (r - 1):+.1f}%' for r in ratios)}; "
            f"{checkpointed.counters.get('checkpoints', 0)} checkpoints/run)"
        )
    # Identical results with and without checkpointing...
    assert checkpointed.output("top3Happiest", "top3") == baseline.output(
        "top3Happiest", "top3"
    )
    # ...and the default interval costs at most 10% runtime.
    assert median_ratio - 1.0 <= 0.10
