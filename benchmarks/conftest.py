"""Shared machinery for the figure/table regeneration benchmarks.

Every paper artifact (Figures 8-13, Tables 1-3) has one benchmark that runs
the corresponding experiment grid once (``benchmark.pedantic`` with a single
round -- the grid itself is the measurement), prints the same rows/series
the paper reports, and asserts the qualitative shape.

Workloads replay the paper's second-scale runs at a small time scale
(see ``BenchConfig``); absolute numbers are therefore not comparable to the
paper, shapes and ratios are (DESIGN.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiments import get_experiment
from repro.core.pe import reset_auto_names


def pytest_collection_modifyitems(items):
    """Tag every figure/table regeneration benchmark with the ``figure``
    marker so CI's fast lane can deselect them (``-m "not figure"``)."""
    this_dir = Path(__file__).resolve().parent
    for item in items:
        if Path(str(item.fspath)).resolve().parent == this_dir:
            item.add_marker(pytest.mark.figure)


@pytest.fixture(autouse=True)
def _deterministic_auto_names():
    """Benchmarks build many graphs per process; keep auto-names stable."""
    reset_auto_names()
    yield


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run one experiment grid under pytest-benchmark and print its report."""

    def runner(experiment_id: str, mutate=None):
        experiment = get_experiment(experiment_id)
        if mutate is not None:
            mutate(experiment)
        holder = {}

        def once():
            report, grids = experiment.run_and_report()
            holder["report"] = report
            holder["grids"] = grids
            return grids

        benchmark.pedantic(once, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(holder["report"])
        return holder["grids"]

    return runner
