"""Ablation: auto-scaling strategy choice (Section 3.2.2 / future work).

Compares the paper's naive queue-delta strategy against the EWMA rate
strategy on the same workload.  The paper observes the naive strategy's
"inertia ... can result in mismatches between actual needs and active
process count" and defers refinement to future work -- this ablation is
that experiment.
"""

import pytest

from repro.autoscale.strategies import QueueSizeStrategy, RateStrategy
from repro.bench.harness import BenchConfig, run_cell
from repro.platforms.profiles import SERVER
from repro.workflows.astro.workflow import build_internal_extinction_workflow


def _factory():
    return build_internal_extinction_workflow(scale=2)


CONFIG = BenchConfig(time_scale=0.01)


@pytest.mark.parametrize(
    "label,strategy_factory",
    [
        ("queue-delta (paper)", lambda: QueueSizeStrategy()),
        ("queue-delta min_queue=2", lambda: QueueSizeStrategy(min_queue=2)),
        ("rate-EWMA alpha=0.3", lambda: RateStrategy(alpha=0.3)),
    ],
)
def test_strategy_ablation(benchmark, capsys, label, strategy_factory):
    def once():
        return run_cell(
            _factory,
            "dyn_auto_multi",
            12,
            SERVER,
            CONFIG,
            strategy=strategy_factory(),
        )

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    with capsys.disabled():
        trace = result.trace
        print(
            f"\n[{label}] runtime={result.runtime:.3f}s "
            f"process_time={result.process_time:.3f}s "
            f"iterations={len(trace)} active=[{trace.min_active()},{trace.max_active()}]"
        )
    assert result.total_outputs() == 200
    assert result.trace is not None
