"""Ablation: warm-session submits vs cold per-run deployments.

The streaming-session redesign splits enactment into ``deploy -> feed ->
drain -> teardown`` so an :class:`~repro.engine.Engine` can keep one warm
deployment per mapping (pre-spawned worker pool, redisim server) and reuse
it across consecutive ``submit()`` calls.  This cell quantifies what the
reuse buys: the end-to-end latency of a burst of small submissions, cold
(a fresh engine -- and therefore a fresh deployment -- per submission,
which is exactly what ``Engine.run()`` does) against warm (one engine,
sequential submissions on the primed session).

The workload is deliberately tiny -- a 3-PE pipeline over a handful of
tuples -- so the spin-up cost the session amortizes (thread-pool spawn,
deployment wiring) is a visible fraction of each submission.  Cold and
warm bursts alternate within each round and the *median per-round ratio*
is asserted, so machine-load drift hits both members of a pair alike.

Acceptance bar: **warm measurably cheaper** -- median cold/warm >= 1.05
on ``multi`` and ``dyn_auto_multi``, with the ``deploy_warm`` counter
proving the spin-up was actually skipped.

``BENCH_SMOKE=1`` shrinks the pairing for the CI bench-smoke lane.
"""

import os
import time

import pytest

from repro.core.pe import reset_auto_names
from repro.engine import Engine
from tests.conftest import AddOne, Double, Emit, linear_graph

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

TIME_SCALE = 0.002
PROCESSES = 12
SUBMITS_PER_BURST = 6 if SMOKE else 8
INPUTS = list(range(4))
PAIR_ROUNDS = 3 if SMOKE else 5
#: Modest bar: prototype medians sit at ~1.2-1.7x, CI runners are noisy.
SPEEDUP_BAR = 1.05


def _pipeline(name):
    reset_auto_names()
    return linear_graph(
        Emit(name="src"), Double(name="dbl"), AddOne(name="add"), name=name
    )


def _cold_burst(mapping):
    """One deployment per submission: what every pre-session caller paid."""
    started = time.perf_counter()
    for index in range(SUBMITS_PER_BURST):
        engine = Engine(mapping=mapping, processes=PROCESSES, time_scale=TIME_SCALE)
        engine.submit(_pipeline(f"cold-{index}"), inputs=INPUTS).wait(timeout=60.0)
        engine.close()
    return time.perf_counter() - started


def _warm_burst(mapping):
    """One engine, one primed session, consecutive submissions reuse it."""
    engine = Engine(mapping=mapping, processes=PROCESSES, time_scale=TIME_SCALE)
    prime = engine.submit(_pipeline("prime"), inputs=INPUTS).wait(timeout=60.0)
    assert prime.counters["deploy_cold"] == 1
    started = time.perf_counter()
    last = None
    for index in range(SUBMITS_PER_BURST):
        last = engine.submit(_pipeline(f"warm-{index}"), inputs=INPUTS).wait(
            timeout=60.0
        )
    elapsed = time.perf_counter() - started
    # The spin-up was provably skipped on the measured submissions.
    assert last.counters["deploy_warm"] == 1
    assert "deploy_cold" not in last.counters
    engine.close()
    return elapsed


@pytest.mark.parametrize("mapping", ("multi", "dyn_auto_multi"))
def test_warm_submit_cheaper_than_cold(benchmark, capsys, mapping):
    """The acceptance criterion: warm submits skip the deployment spin-up."""

    def once():
        pairs = []
        for _ in range(PAIR_ROUNDS):
            pairs.append((_cold_burst(mapping), _warm_burst(mapping)))
        return pairs

    pairs = benchmark.pedantic(once, rounds=1, iterations=1)
    ratios = sorted(cold / warm for cold, warm in pairs)
    median = ratios[len(ratios) // 2]
    with capsys.disabled():
        print(
            f"\n[{mapping}] median cold/warm submit-burst latency = {median:.2f}x "
            f"over {PAIR_ROUNDS} rounds of {SUBMITS_PER_BURST} submits "
            f"(per-round: {', '.join(f'{r:.2f}x' for r in ratios)})"
        )
    assert median >= SPEEDUP_BAR


def test_warm_submit_results_identical(benchmark):
    """Session reuse is transparent: warm submits produce one-shot results."""

    def once():
        engine = Engine(
            mapping="dyn_auto_multi", processes=PROCESSES, time_scale=TIME_SCALE
        )
        reference = engine.run(_pipeline("ref"), inputs=INPUTS)
        first = engine.submit(_pipeline("s1"), inputs=INPUTS).wait(timeout=60.0)
        second = engine.submit(_pipeline("s2"), inputs=INPUTS).wait(timeout=60.0)
        engine.close()
        return reference, first, second

    reference, first, second = benchmark.pedantic(once, rounds=1, iterations=1)
    assert sorted(first.output("add")) == sorted(reference.output("add"))
    assert sorted(second.output("add")) == sorted(reference.output("add"))
    assert first.counters["tasks"] == reference.counters["tasks"]
    assert second.counters["tasks"] == reference.counters["tasks"]
    assert first.counters["deploy_cold"] == 1
    assert second.counters["deploy_warm"] == 1
    assert "deploy_cold" not in reference.counters
    assert "deploy_warm" not in reference.counters
