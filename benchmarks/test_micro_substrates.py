"""Micro-benchmarks of the substrates (pytest-benchmark proper).

Throughput of the primitives every mapping is built on: Redis stream
operations, consumer-group cycles, pipelines, tracked queues, grouping
routers and graph translation.
"""

import pytest

from repro.core.concrete import ConcreteWorkflow
from repro.core.graph import WorkflowGraph
from repro.core.groupings import GroupBy
from repro.core.pe import IterativePE
from repro.redisim.client import RedisClient
from repro.redisim.server import RedisServer
from repro.runtime.queues import TrackedQueue


class _Stage(IterativePE):
    def _process(self, data):
        return data


def _chain(n=6):
    graph = WorkflowGraph("bench")
    stages = [_Stage(name=f"s{i}") for i in range(n)]
    for pe in stages:
        graph.add(pe)
    for a, b in zip(stages, stages[1:]):
        graph.connect(a, "output", b, "input")
    return graph


class TestRedisMicro:
    def test_xadd_throughput(self, benchmark):
        server = RedisServer()
        client = RedisClient(server)

        def add_100():
            for i in range(100):
                client.xadd("s", {"task": ("pe", "input", i)})

        benchmark(add_100)

    def test_group_read_ack_cycle(self, benchmark):
        server = RedisServer()
        client = RedisClient(server)
        client.xgroup_create("s", "g", id="0", mkstream=True)

        def cycle():
            for i in range(50):
                client.xadd("s", {"task": i})
            while True:
                reply = client.xreadgroup("g", "c", {"s": ">"}, count=10)
                if not reply:
                    break
                for _key, entries in reply:
                    for eid, _fields in entries:
                        client.xack("s", "g", eid)

        benchmark(cycle)

    def test_pipeline_vs_single_ops(self, benchmark):
        """The transaction path the hot loops rely on."""
        server = RedisServer()
        client = RedisClient(server)

        def pipelined():
            pipe = client.pipeline()
            for i in range(20):
                pipe.incr("n")
                pipe.xadd("s", {"task": i})
            pipe.execute()

        benchmark(pipelined)

    def test_blpop_hot(self, benchmark):
        server = RedisServer()
        client = RedisClient(server)

        def roundtrip():
            client.rpush("q", ("data", "input", 1))
            client.blpop("q", timeout=0.1)

        benchmark(roundtrip)


class TestQueueMicro:
    def test_tracked_queue_cycle(self, benchmark):
        queue = TrackedQueue()

        def cycle():
            for i in range(100):
                queue.put(("pe", "input", i))
            for _ in range(100):
                queue.get()
                queue.mark_done()

        benchmark(cycle)


class TestRoutingMicro:
    def test_groupby_routing(self, benchmark):
        grouping = GroupBy([0])
        data = [(f"key{i % 17}", i) for i in range(200)]

        def route_all():
            for item in data:
                grouping.route(item, 8, None)

        benchmark(route_all)

    def test_concrete_translation(self, benchmark):
        benchmark(lambda: ConcreteWorkflow.from_static(_chain(), 16))

    def test_route_output(self, benchmark):
        concrete = ConcreteWorkflow.from_static(_chain(), 16)

        def route_200():
            for i in range(200):
                concrete.route_output("s0", 0, "output", i)

        benchmark(route_200)
