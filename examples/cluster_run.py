#!/usr/bin/env python
"""Networked substrate: a distributed run over a real TCP socket.

The ``cluster_redis`` mapping runs its workers as separate OS processes
that join the deployment by ``host:port`` and speak RESP (the Redis wire
protocol) to an in-memory redisim server -- no shared memory anywhere.
This example:

1. serves the keyspace over TCP on an ephemeral loopback port (the same
   server ``repro serve-redis`` runs as a daemon);
2. enacts the sentiment-scoring workflow on ``cluster_redis`` against that
   address, with two worker processes dialing in;
3. re-runs the same workflow on the in-process ``dyn_redis`` mapping and
   checks the outputs are identical -- the network changes the transport,
   never the results.

Run:  python examples/cluster_run.py
"""

from repro import run
from repro.net.server import RespTCPServer
from repro.workflows import build_sentiment_scoring_workflow


def collect(mapping: str, **options):
    graph, inputs = build_sentiment_scoring_workflow(articles=60)
    result = run(
        graph,
        inputs=inputs,
        mapping=mapping,
        processes=2,
        seed=11,
        time_scale=0.02,
        **options,
    )
    # Parallel arrival order is nondeterministic; compare as sorted multisets.
    return {k: sorted(map(repr, v)) for k, v in result.outputs.items()}, result


def main() -> None:
    server = RespTCPServer().start()
    print(f"redisim serving RESP on {server.address}")
    try:
        clustered, result = collect("cluster_redis", address=server.address)
        print(
            f"cluster_redis: {result.total_outputs()} outputs from "
            f"{result.processes} worker processes over TCP "
            f"({result.runtime:.2f} s)"
        )
        in_process, _ = collect("dyn_redis")
        print(f"cluster outputs match dyn_redis: {clustered == in_process}")
    finally:
        server.close()


if __name__ == "__main__":
    main()
