#!/usr/bin/env python
"""Seismic cross-correlation, both phases (paper Section 4.2).

Phase 1 (stateless, 9 PEs) is run with dynamic Redis scheduling; phase 2
(stateful pair aggregation + cross-correlation) with the hybrid mapping.
Prints the pre-processing throughput and the strongest-correlated station
pairs.

Run:  python examples/seismic_xcorr.py
"""

from repro import Engine, SERVER
from repro.workflows import (
    build_seismic_phase1_workflow,
    build_seismic_phase2_workflow,
)


def main() -> None:
    # mapping="auto" picks a stateless dynamic mapping for phase 1 and a
    # stateful-capable one for phase 2; prefer=... pins the Redis variants
    # this example is about.
    engine = Engine(
        mapping="auto",
        platform=SERVER,
        time_scale=0.02,
        prefer=("dyn_redis", "hybrid_redis"),
    )

    # ---- phase 1: stateless pre-processing over 30 stations -------------
    graph, inputs = build_seismic_phase1_workflow(stations=30, samples=1500)
    phase1 = engine.run(graph, inputs=inputs, processes=10)
    written = phase1.output("writeOutput")
    total_bytes = sum(w["bytes"] for w in written)
    print(
        f"phase 1 ({phase1.mapping}, 10 processes): {len(written)} spectra "
        f"written, {total_bytes / 1024:.0f} KiB, runtime {phase1.runtime:.3f}s, "
        f"process time {phase1.process_time:.3f}s"
    )

    # ---- phase 2: stateful pair correlation (hybrid mapping) ------------
    graph, inputs = build_seismic_phase2_workflow(stations=10, samples=1024)
    phase2 = engine.run(graph, inputs=inputs, processes=8)
    [summary] = phase2.output("writeXCorr", "summary")
    pairs = 10 * 9 // 2
    print(
        f"phase 2 ({phase2.mapping}, 8 processes): {len(summary)}/{pairs} pairs "
        f"correlated, runtime {phase2.runtime:.3f}s"
    )
    print("\nstrongest station pairs (peak cross-correlation):")
    for row in summary[:5]:
        a, b = row["pair"]
        print(f"  {a} x {b}: peak={row['peak']:.1f} lag={row['lag_samples']} samples")


if __name__ == "__main__":
    main()
