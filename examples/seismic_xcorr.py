#!/usr/bin/env python
"""Seismic cross-correlation, both phases (paper Section 4.2).

Phase 1 (stateless, 9 PEs) is run with dynamic Redis scheduling; phase 2
(stateful pair aggregation + cross-correlation) with the hybrid mapping.
Prints the pre-processing throughput and the strongest-correlated station
pairs.

Run:  python examples/seismic_xcorr.py
"""

from repro import SERVER, run
from repro.workflows import (
    build_seismic_phase1_workflow,
    build_seismic_phase2_workflow,
)


def main() -> None:
    time_scale = 0.02

    # ---- phase 1: stateless pre-processing over 30 stations -------------
    graph, inputs = build_seismic_phase1_workflow(stations=30, samples=1500)
    phase1 = run(
        graph,
        inputs=inputs,
        processes=10,
        mapping="dyn_redis",
        platform=SERVER,
        time_scale=time_scale,
    )
    written = phase1.output("writeOutput")
    total_bytes = sum(w["bytes"] for w in written)
    print(
        f"phase 1 (dyn_redis, 10 processes): {len(written)} spectra written, "
        f"{total_bytes / 1024:.0f} KiB, runtime {phase1.runtime:.3f}s, "
        f"process time {phase1.process_time:.3f}s"
    )

    # ---- phase 2: stateful pair correlation (hybrid mapping) ------------
    graph, inputs = build_seismic_phase2_workflow(stations=10, samples=1024)
    phase2 = run(
        graph,
        inputs=inputs,
        processes=8,
        mapping="hybrid_redis",
        platform=SERVER,
        time_scale=time_scale,
    )
    [summary] = phase2.output("writeXCorr", "summary")
    pairs = 10 * 9 // 2
    print(
        f"phase 2 (hybrid_redis, 8 processes): {len(summary)}/{pairs} pairs "
        f"correlated, runtime {phase2.runtime:.3f}s"
    )
    print("\nstrongest station pairs (peak cross-correlation):")
    for row in summary[:5]:
        a, b = row["pair"]
        print(f"  {a} x {b}: peak={row['peak']:.1f} lag={row['lag_samples']} samples")


if __name__ == "__main__":
    main()
