#!/usr/bin/env python
"""Stateful sentiment analysis: hybrid_redis vs multi (paper Section 5.4).

Runs the Figure 7 workflow (dual sentiment paths, group-by state, global
top-3) with both stateful-capable parallel mappings and verifies they
agree on the three happiest states -- while the hybrid mapping's dynamic
stateless pool finishes faster than multi's static allocation.

Run:  python examples/sentiment_news.py
"""

from repro import Engine, SERVER
from repro.workflows import build_sentiment_workflow


def main() -> None:
    articles = 250
    engine = Engine(platform=SERVER, processes=14, time_scale=0.04)
    results = {}
    for mapping in ("multi", "hybrid_redis"):
        graph, inputs = build_sentiment_workflow(articles=articles)
        results[mapping] = engine.run(graph, inputs=inputs, mapping=mapping)

    print(f"workload: {articles} articles, 14 processes on server(16 cores)\n")
    print(f"{'mapping':<14} {'runtime (s)':>12} {'process time (s)':>18}")
    for name, result in results.items():
        print(f"{name:<14} {result.runtime:>12.3f} {result.process_time:>18.3f}")
    ratio = results["hybrid_redis"].runtime / results["multi"].runtime
    print(f"\nhybrid_redis / multi runtime ratio: {ratio:.2f} (paper best case: 0.32)")

    for name, result in results.items():
        [top3] = result.output("top3Happiest", "top3")
        rendered = ", ".join(f"{s} ({mean:.1f} avg over {c})" for s, mean, c in top3)
        print(f"{name:<14} top-3 happiest states: {rendered}")


if __name__ == "__main__":
    main()
