#!/usr/bin/env python
"""Quickstart: build a workflow, run it with every mapping.

A minimal three-PE pipeline (generate -> transform -> aggregate) enacted
with each of the seven mappings, showing that they all compute the same
result while exposing very different runtime/efficiency profiles.

Run:  python examples/quickstart.py
"""

from repro import IterativePE, WorkflowGraph, mapping_names, run


class Square(IterativePE):
    """Transform: square each incoming number (with a little CPU cost)."""

    def _process(self, data):
        self.compute(0.01)  # 10 nominal milliseconds of work
        return data * data


class Tag(IterativePE):
    """Transform: label each value with parity (fan-out friendly)."""

    def _process(self, data):
        return ("even" if data % 2 == 0 else "odd", data)


def build_graph() -> WorkflowGraph:
    graph = WorkflowGraph("quickstart")
    square = graph.add(Square(name="square"))
    tag = graph.add(Tag(name="tag"))
    graph.connect(square, "output", tag, "input")
    return graph


def main() -> None:
    inputs = list(range(32))
    print(f"{'mapping':<16} {'runtime (s)':>12} {'process time (s)':>18} outputs")
    for mapping in mapping_names():
        result = run(
            build_graph(),
            inputs=inputs,
            processes=4,
            mapping=mapping,
            time_scale=0.05,  # replay 'nominal seconds' at 5% speed
        )
        outputs = sorted(v for _parity, v in result.output("tag"))
        ok = outputs == sorted(i * i for i in inputs)
        print(
            f"{mapping:<16} {result.runtime:>12.3f} {result.process_time:>18.3f} "
            f"{'OK' if ok else 'MISMATCH'} ({len(outputs)} items)"
        )


if __name__ == "__main__":
    main()
