#!/usr/bin/env python
"""Quickstart: build a workflow, run it with every mapping.

A minimal three-PE pipeline (generate -> transform -> aggregate) enacted
with each of the seven mappings, showing that they all compute the same
result while exposing very different runtime/efficiency profiles.

Run:  python examples/quickstart.py
"""

from repro import Engine, IterativePE, WorkflowGraph, mapping_names


class Square(IterativePE):
    """Transform: square each incoming number (with a little CPU cost)."""

    def _process(self, data):
        self.compute(0.01)  # 10 nominal milliseconds of work
        return data * data


class Tag(IterativePE):
    """Transform: label each value with parity (fan-out friendly)."""

    def _process(self, data):
        return ("even" if data % 2 == 0 else "odd", data)


def build_graph() -> WorkflowGraph:
    # Fluent construction: >> wires square.output to tag.input.
    chain = Square(name="square") >> Tag(name="tag")
    return WorkflowGraph.from_chain(chain, name="quickstart")


def main() -> None:
    inputs = list(range(32))
    # One engine, reused for every mapping (time_scale replays 'nominal
    # seconds' at 5% speed).
    engine = Engine(processes=4, time_scale=0.05)
    print(f"{'mapping':<16} {'runtime (s)':>12} {'process time (s)':>18} outputs")
    for mapping in mapping_names():
        result = engine.run(build_graph(), inputs=inputs, mapping=mapping)
        outputs = sorted(v for _parity, v in result.output("tag"))
        ok = outputs == sorted(i * i for i in inputs)
        print(
            f"{mapping:<16} {result.runtime:>12.3f} {result.process_time:>18.3f} "
            f"{'OK' if ok else 'MISMATCH'} ({len(outputs)} items)"
        )


if __name__ == "__main__":
    main()
