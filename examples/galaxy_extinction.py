#!/usr/bin/env python
"""Internal Extinction of Galaxies with auto-scaling (paper Section 4.1).

Runs the four-PE astronomy workflow on the emulated 16-core *server*
platform, comparing plain dynamic scheduling against the auto-scaled
variant, and prints the efficiency trade-off the paper's Table 1 reports
together with the auto-scaler's activity trace (Figure 13 style).

Run:  python examples/galaxy_extinction.py
"""

from repro import Engine, SERVER
from repro.metrics.tables import render_trace
from repro.workflows import build_internal_extinction_workflow


def main() -> None:
    processes = 12
    time_scale = 0.02

    # One engine, two runs: the platform resolves once, the mapping is a
    # per-run override.
    engine = Engine(platform=SERVER, processes=processes, time_scale=time_scale)
    results = {}
    for mapping in ("dyn_multi", "dyn_auto_multi"):
        graph, inputs = build_internal_extinction_workflow(scale=2)
        results[mapping] = engine.run(graph, inputs=inputs, mapping=mapping)

    base = results["dyn_multi"]
    auto = results["dyn_auto_multi"]
    print(f"workload: 200 galaxies on server(16 cores), {processes} processes\n")
    print(f"{'mapping':<16} {'runtime (s)':>12} {'process time (s)':>18}")
    for name, result in results.items():
        print(f"{name:<16} {result.runtime:>12.3f} {result.process_time:>18.3f}")
    print(
        f"\nauto-scaling ratios vs dyn_multi: "
        f"runtime {auto.runtime / base.runtime:.2f}, "
        f"process time {auto.process_time / base.process_time:.2f} "
        f"(paper's best case: 0.87 / 0.76)"
    )

    print()
    print(render_trace("auto-scaler activity (Figure 13 style)", auto.trace))

    extinctions = auto.output("internalExtinction")
    sample = sorted(extinctions, key=lambda r: r["id"])[:5]
    print("\nfirst galaxies (id, mean internal extinction):")
    for record in sample:
        print(f"  {record['id']:>4}  {record['mean_extinction']:.4f}")


if __name__ == "__main__":
    main()
