#!/usr/bin/env python
"""Streaming sessions: feed a live workflow, consume results as they come.

A long-lived Engine hosts two consecutive jobs on one warm deployment:

1. the first job is fed in bursts through ``job.send`` while a consumer
   iterates ``job.results()`` concurrently -- outputs arrive *before* the
   input is even closed;
2. the second job reuses the session's worker pool (``deploy_warm``),
   skipping the spin-up the first one paid (``deploy_cold``).

Run:  python examples/streaming_session.py
"""

import threading

from repro import Engine, IterativePE, WorkflowGraph


class Normalize(IterativePE):
    """Transform: scale readings into [0, 1] (with a little CPU cost)."""

    def _process(self, data):
        self.compute(0.005)
        return min(abs(data) / 100.0, 1.0)


class Threshold(IterativePE):
    """Filter: only readings above the alert threshold pass through."""

    def _process(self, data):
        if data >= 0.5:
            return round(data, 3)
        return None


def build_graph(name: str) -> WorkflowGraph:
    chain = Normalize(name="normalize") >> Threshold(name="alerts")
    return WorkflowGraph.from_chain(chain, name=name)


def main() -> None:
    engine = Engine(mapping="dyn_auto_multi", processes=4, time_scale=0.05)

    # ---- job 1: live ingestion, streaming consumption -------------------
    job = engine.submit(build_graph("telemetry"))
    print(f"submitted: {job} (live streaming = {job.streaming})")

    def feed() -> None:
        for burst in ([12, 87, 64], [3, 55, 91], [49, 72]):
            job.send("normalize", burst)
        job.close_input()

    feeder = threading.Thread(target=feed)
    feeder.start()
    alerts = []
    for key, value in job.results():  # yields while the job is running
        alerts.append(value)
        print(f"  alert while {job.state.value}: {key} = {value}")
    feeder.join()
    first = job.wait()
    print(
        f"job 1 done: {len(alerts)} alerts from "
        f"{first.counters['stream_inputs']} readings "
        f"(deployment was cold: {first.counters.get('deploy_cold', 0) == 1})"
    )

    # ---- job 2: same session, warm deployment ---------------------------
    second = engine.submit(build_graph("telemetry-2"), inputs=[66, 20, 95]).wait()
    print(
        f"job 2 done: {second.total_outputs()} alerts "
        f"(reused warm deployment: {second.counters.get('deploy_warm', 0) == 1})"
    )
    engine.close()


if __name__ == "__main__":
    main()
