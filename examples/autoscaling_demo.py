#!/usr/bin/env python
"""Auto-scaler internals: watch Algorithm 1 react to a bursty workload.

Builds a two-stage workflow whose source emits work in bursts, runs it
under ``dyn_auto_multi`` and ``dyn_auto_redis``, and prints both scaling
traces side by side -- queue-size driven growth vs idle-time driven decay
(the two strategies of Section 3.2.2, Figure 13).

Run:  python examples/autoscaling_demo.py
"""

from repro import Engine, IterativePE, SERVER, WorkflowGraph
from repro.metrics.tables import render_trace


class BurstySource(IterativePE):
    """Emits one item per drive; pauses between bursts (via io_wait)."""

    def _process(self, data):
        if data % 20 == 0 and data > 0:
            self.io_wait(0.3)  # lull between bursts
        return data


class Work(IterativePE):
    def _process(self, data):
        self.compute(0.05)
        return data


def build():
    # Fluent construction: >> chains the default output/input ports.
    chain = BurstySource(name="source") >> Work(name="work")
    return WorkflowGraph.from_chain(chain, name="bursty")


def main() -> None:
    engine = Engine(platform=SERVER, processes=12, time_scale=0.02)
    for mapping in ("dyn_auto_multi", "dyn_auto_redis"):
        result = engine.run(build(), inputs=list(range(80)), mapping=mapping)
        trace = result.trace
        print(
            f"\n=== {mapping}: runtime {result.runtime:.2f}s, "
            f"process time {result.process_time:.2f}s, "
            f"{len(trace)} scaler iterations, "
            f"active range [{trace.min_active()}, {trace.max_active()}] ==="
        )
        print(render_trace(f"{mapping} ({trace.metric_name})", trace, max_points=14))


if __name__ == "__main__":
    main()
