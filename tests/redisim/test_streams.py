"""Tests for stream IDs, XADD/XRANGE/XLEN/XTRIM and plain XREAD."""

import threading

import pytest

from repro.redisim.errors import StreamIDError
from repro.redisim.server import RedisServer
from repro.redisim.streams import StreamID


class TestStreamID:
    def test_parse_full(self):
        sid = StreamID.parse("5-3")
        assert (sid.ms, sid.seq) == (5, 3)

    def test_parse_ms_only(self):
        assert StreamID.parse("7").seq == 0

    def test_parse_invalid(self):
        with pytest.raises(StreamIDError):
            StreamID.parse("abc")

    def test_negative_rejected(self):
        with pytest.raises(StreamIDError):
            StreamID(-1, 0)

    def test_ordering(self):
        assert StreamID(1, 5) < StreamID(2, 0)
        assert StreamID(2, 1) < StreamID(2, 2)
        assert StreamID(3, 3) == StreamID.parse("3-3")

    def test_next(self):
        assert StreamID(4, 7).next() == StreamID(4, 8)

    def test_str_roundtrip(self):
        sid = StreamID(12, 34)
        assert StreamID.parse(str(sid)) == sid

    def test_hashable(self):
        assert len({StreamID(1, 1), StreamID.parse("1-1")}) == 1


@pytest.fixture
def server():
    # Deterministic clock so auto-IDs are predictable in tests.
    times = iter(x / 1000.0 for x in range(1, 100000))
    return RedisServer(now=lambda: next(times))


class TestXAdd:
    def test_auto_ids_increase(self, server):
        first = server.xadd("s", {"v": 1})
        second = server.xadd("s", {"v": 2})
        assert StreamID.parse(first) < StreamID.parse(second)

    def test_explicit_id(self, server):
        assert server.xadd("s", {"v": 1}, entry_id="100-1") == "100-1"

    def test_explicit_id_must_increase(self, server):
        server.xadd("s", {"v": 1}, entry_id="100-1")
        with pytest.raises(StreamIDError):
            server.xadd("s", {"v": 2}, entry_id="100-1")

    def test_zero_id_rejected(self, server):
        with pytest.raises(StreamIDError):
            server.xadd("s", {"v": 1}, entry_id="0-0")

    def test_empty_fields_rejected(self, server):
        with pytest.raises(StreamIDError):
            server.xadd("s", {})

    def test_same_ms_bumps_seq(self):
        server = RedisServer(now=lambda: 0.005)  # frozen clock
        a = server.xadd("s", {"v": 1})
        b = server.xadd("s", {"v": 2})
        assert a == "5-0" and b == "5-1"

    def test_xlen(self, server):
        assert server.xlen("s") == 0
        server.xadd("s", {"v": 1})
        assert server.xlen("s") == 1

    def test_maxlen_trims(self, server):
        for i in range(10):
            server.xadd("s", {"v": i}, maxlen=5)
        assert server.xlen("s") == 5
        values = [fields["v"] for _id, fields in server.xrange("s")]
        assert values == [5, 6, 7, 8, 9]


class TestXRange:
    def test_full_range(self, server):
        ids = [server.xadd("s", {"v": i}) for i in range(3)]
        got = server.xrange("s")
        assert [eid for eid, _f in got] == ids

    def test_bounded_range(self, server):
        ids = [server.xadd("s", {"v": i}) for i in range(5)]
        got = server.xrange("s", ids[1], ids[3])
        assert [eid for eid, _f in got] == ids[1:4]

    def test_count_limits(self, server):
        for i in range(5):
            server.xadd("s", {"v": i})
        assert len(server.xrange("s", count=2)) == 2

    def test_missing_stream_empty(self, server):
        assert server.xrange("nope") == []

    def test_xtrim(self, server):
        for i in range(6):
            server.xadd("s", {"v": i})
        assert server.xtrim("s", 2) == 4
        assert server.xlen("s") == 2


class TestXRead:
    def test_read_from_start(self, server):
        server.xadd("s", {"v": 1})
        server.xadd("s", {"v": 2})
        reply = server.xread({"s": "0-0"})
        assert len(reply) == 1
        key, entries = reply[0]
        assert key == "s" and len(entries) == 2

    def test_read_after_cursor(self, server):
        first = server.xadd("s", {"v": 1})
        server.xadd("s", {"v": 2})
        reply = server.xread({"s": first})
        _key, entries = reply[0]
        assert [f["v"] for _e, f in entries] == [2]

    def test_read_nothing_returns_empty(self, server):
        server.xadd("s", {"v": 1})
        last = server.xrange("s")[-1][0]
        assert server.xread({"s": last}) == []

    def test_dollar_means_new_only(self, server):
        server.xadd("s", {"v": "old"})
        assert server.xread({"s": "$"}) == []

    def test_blocking_read_wakes_on_add(self):
        server = RedisServer()
        got = []

        def reader():
            got.append(server.xread({"s": "0-0"}, block_ms=2000))

        server.xadd("s", {"seed": 1})
        server.delete("s")
        t = threading.Thread(target=reader)
        t.start()
        server.xadd("s", {"v": "fresh"})
        t.join(timeout=3)
        assert got and got[0][0][1][0][1] == {"v": "fresh"}

    def test_blocking_read_times_out(self):
        server = RedisServer()
        assert server.xread({"missing": "0-0"}, block_ms=20) == []
