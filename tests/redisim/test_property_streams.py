"""Property-based tests for the stream substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.redisim.server import RedisServer
from repro.redisim.streams import Stream, StreamID


def fresh_server():
    times = iter(x / 1000.0 for x in range(1, 10_000_000))
    return RedisServer(now=lambda: next(times))


ids_strategy = st.tuples(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=0, max_value=10**6),
)


class TestStreamIDProperties:
    @given(ids_strategy, ids_strategy)
    def test_ordering_matches_tuple_ordering(self, a, b):
        assert (StreamID(*a) < StreamID(*b)) == (a < b)

    @given(ids_strategy)
    def test_parse_str_roundtrip(self, pair):
        sid = StreamID(*pair)
        assert StreamID.parse(str(sid)) == sid

    @given(ids_strategy)
    def test_next_is_strictly_greater(self, pair):
        sid = StreamID(*pair)
        assert sid < sid.next()


class TestStreamProperties:
    @given(st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_xadd_ids_strictly_increase(self, values):
        server = fresh_server()
        ids = [StreamID.parse(server.xadd("s", {"v": v})) for v in values]
        assert all(a < b for a, b in zip(ids, ids[1:]))

    @given(st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_xrange_returns_everything_in_order(self, values):
        server = fresh_server()
        for v in values:
            server.xadd("s", {"v": v})
        got = [fields["v"] for _id, fields in server.xrange("s")]
        assert got == values

    @given(
        st.lists(st.integers(), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_consumption_is_a_partition(self, values, consumers):
        """Entries delivered through a consumer group are a partition of
        the stream: no duplicates, nothing lost (at-least-once with no
        failures becomes exactly-once)."""
        server = fresh_server()
        server.xgroup_create("s", "g", entry_id="0", mkstream=True)
        for v in values:
            server.xadd("s", {"v": v})
        seen = []
        exhausted = False
        while not exhausted:
            exhausted = True
            for c in range(consumers):
                reply = server.xreadgroup("g", f"c{c}", {"s": ">"}, count=1)
                for _key, entries in reply:
                    for eid, fields in entries:
                        seen.append(fields["v"])
                        server.xack("s", "g", eid)
                        exhausted = False
        assert sorted(seen) == sorted(values)
        assert server.xpending("s", "g")["pending"] == 0

    @given(st.lists(st.integers(), min_size=1, max_size=60), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_trim_keeps_newest(self, values, maxlen):
        stream = Stream()
        for i, v in enumerate(values):
            stream.add({"v": v}, now_ms=i + 1)
        stream.trim_maxlen(maxlen)
        kept = [e.fields["v"] for e in stream.entries]
        assert kept == values[-maxlen:]
