"""Tests for consumer groups: XGROUP/XREADGROUP/XACK/XPENDING/XINFO."""

import pytest

from repro.redisim.errors import BusyGroupError, NoGroupError, RedisError
from repro.redisim.server import RedisServer


@pytest.fixture
def server():
    times = iter(x / 1000.0 for x in range(1, 1000000))
    return RedisServer(now=lambda: next(times))


def make_group(server, n_entries=3, group="g"):
    server.xgroup_create("s", group, entry_id="0", mkstream=True)
    ids = [server.xadd("s", {"v": i}) for i in range(n_entries)]
    return ids


class TestXGroupCreate:
    def test_requires_stream_unless_mkstream(self, server):
        with pytest.raises(RedisError):
            server.xgroup_create("missing", "g")
        server.xgroup_create("missing", "g", mkstream=True)
        assert server.xlen("missing") == 0

    def test_duplicate_group_raises_busygroup(self, server):
        server.xgroup_create("s", "g", mkstream=True)
        with pytest.raises(BusyGroupError):
            server.xgroup_create("s", "g")

    def test_destroy(self, server):
        server.xgroup_create("s", "g", mkstream=True)
        assert server.xgroup_destroy("s", "g") == 1
        assert server.xgroup_destroy("s", "g") == 0

    def test_dollar_start_skips_existing(self, server):
        server.xadd("s", {"v": "old"})
        server.xgroup_create("s", "g", entry_id="$")
        assert server.xreadgroup("g", "c", {"s": ">"}) == []


class TestXReadGroup:
    def test_new_messages_cursor(self, server):
        ids = make_group(server)
        reply = server.xreadgroup("g", "c1", {"s": ">"}, count=2)
        _key, entries = reply[0]
        assert [eid for eid, _f in entries] == ids[:2]

    def test_cooperative_consumption(self, server):
        """Two consumers share the stream without overlap."""
        make_group(server, n_entries=4)
        first = server.xreadgroup("g", "c1", {"s": ">"}, count=2)[0][1]
        second = server.xreadgroup("g", "c2", {"s": ">"}, count=2)[0][1]
        ids1 = {eid for eid, _f in first}
        ids2 = {eid for eid, _f in second}
        assert not (ids1 & ids2)
        assert len(ids1 | ids2) == 4

    def test_unknown_group_raises(self, server):
        server.xadd("s", {"v": 1})
        with pytest.raises(NoGroupError):
            server.xreadgroup("ghost", "c", {"s": ">"})

    def test_empty_read_returns_nothing(self, server):
        make_group(server, n_entries=1)
        server.xreadgroup("g", "c", {"s": ">"})
        assert server.xreadgroup("g", "c", {"s": ">"}) == []

    def test_history_replay_own_pel(self, server):
        make_group(server, n_entries=3)
        server.xreadgroup("g", "c1", {"s": ">"}, count=2)
        server.xreadgroup("g", "c2", {"s": ">"}, count=1)
        # c1 replays only its own pending entries.
        replay = server.xreadgroup("g", "c1", {"s": "0-0"})
        _key, entries = replay[0]
        assert len(entries) == 2

    def test_history_after_ack_is_empty(self, server):
        make_group(server, n_entries=1)
        [(eid, _f)] = server.xreadgroup("g", "c", {"s": ">"})[0][1]
        server.xack("s", "g", eid)
        replay = server.xreadgroup("g", "c", {"s": "0-0"})
        assert replay[0][1] == []

    def test_noack_skips_pel(self, server):
        make_group(server, n_entries=1)
        server.xreadgroup("g", "c", {"s": ">"}, noack=True)
        assert server.xpending("s", "g")["pending"] == 0


class TestXAck:
    def test_ack_removes_pending(self, server):
        make_group(server, n_entries=2)
        entries = server.xreadgroup("g", "c", {"s": ">"}, count=2)[0][1]
        acked = server.xack("s", "g", entries[0][0])
        assert acked == 1
        assert server.xpending("s", "g")["pending"] == 1

    def test_double_ack_counts_once(self, server):
        make_group(server, n_entries=1)
        [(eid, _f)] = server.xreadgroup("g", "c", {"s": ">"})[0][1]
        assert server.xack("s", "g", eid) == 1
        assert server.xack("s", "g", eid) == 0


class TestXPending:
    def test_summary(self, server):
        make_group(server, n_entries=3)
        server.xreadgroup("g", "c1", {"s": ">"}, count=2)
        server.xreadgroup("g", "c2", {"s": ">"}, count=1)
        summary = server.xpending("s", "g")
        assert summary["pending"] == 3
        assert summary["consumers"] == {"c1": 2, "c2": 1}

    def test_empty_summary(self, server):
        make_group(server, n_entries=0)
        summary = server.xpending("s", "g")
        assert summary == {"pending": 0, "min": None, "max": None, "consumers": {}}

    def test_range_filter_by_consumer(self, server):
        make_group(server, n_entries=3)
        server.xreadgroup("g", "c1", {"s": ">"}, count=2)
        server.xreadgroup("g", "c2", {"s": ">"}, count=1)
        rows = server.xpending_range("s", "g", consumer="c2")
        assert len(rows) == 1 and rows[0]["consumer"] == "c2"

    def test_range_reports_delivery_count(self, server):
        make_group(server, n_entries=1)
        server.xreadgroup("g", "c", {"s": ">"})
        rows = server.xpending_range("s", "g")
        assert rows[0]["times_delivered"] == 1


class TestXInfo:
    def test_groups_lag(self, server):
        make_group(server, n_entries=3)
        server.xreadgroup("g", "c", {"s": ">"}, count=1)
        [info] = server.xinfo_groups("s")
        assert info["name"] == "g"
        assert info["lag"] == 2
        assert info["entries-read"] == 1

    def test_consumers_pending(self, server):
        make_group(server, n_entries=2)
        server.xreadgroup("g", "c1", {"s": ">"}, count=2)
        [row] = server.xinfo_consumers("s", "g")
        assert row["name"] == "c1" and row["pending"] == 2

    def test_stream_info(self, server):
        make_group(server, n_entries=2)
        info = server.xinfo_stream("s")
        assert info["length"] == 2
        assert info["groups"] == 1

    def test_stream_info_missing_raises(self, server):
        with pytest.raises(RedisError):
            server.xinfo_stream("nope")

    def test_delconsumer_drops_pel(self, server):
        make_group(server, n_entries=2)
        server.xreadgroup("g", "c1", {"s": ">"}, count=2)
        assert server.xgroup_delconsumer("s", "g", "c1") == 2
        assert server.xpending("s", "g")["pending"] == 0


class TestIdleTime:
    def test_idle_grows_without_deliveries(self):
        current = {"t": 1.0}
        server = RedisServer(now=lambda: current["t"])
        server.xgroup_create("s", "g", mkstream=True)
        server.xadd("s", {"v": 1})
        server.xreadgroup("g", "c", {"s": ">"})
        current["t"] = 2.5  # 1.5 s later
        [row] = server.xinfo_consumers("s", "g")
        assert row["idle"] == pytest.approx(1500.0)

    def test_empty_poll_does_not_refresh_idle(self):
        """The dyn_auto_redis strategy needs idle = time since last
        delivery, not time since last poll."""
        current = {"t": 1.0}
        server = RedisServer(now=lambda: current["t"])
        server.xgroup_create("s", "g", mkstream=True)
        server.xadd("s", {"v": 1})
        server.xreadgroup("g", "c", {"s": ">"})
        current["t"] = 2.0
        server.xreadgroup("g", "c", {"s": ">"})  # empty poll
        [row] = server.xinfo_consumers("s", "g")
        assert row["idle"] == pytest.approx(1000.0)

    def test_ack_refreshes_idle(self):
        current = {"t": 1.0}
        server = RedisServer(now=lambda: current["t"])
        server.xgroup_create("s", "g", mkstream=True)
        server.xadd("s", {"v": 1})
        [(eid, _f)] = server.xreadgroup("g", "c", {"s": ">"})[0][1]
        current["t"] = 3.0
        server.xack("s", "g", eid)
        [row] = server.xinfo_consumers("s", "g")
        assert row["idle"] == pytest.approx(0.0)
