"""Tests for RedisServer strings, lists, hashes and sets."""

import threading

import pytest

from repro.redisim.errors import RedisError, WrongTypeError
from repro.redisim.server import RedisServer


@pytest.fixture
def server():
    return RedisServer()


class TestStrings:
    def test_set_get(self, server):
        server.set("k", "v")
        assert server.get("k") == "v"

    def test_get_missing_is_none(self, server):
        assert server.get("nope") is None

    def test_incrby_from_missing(self, server):
        assert server.incrby("counter") == 1
        assert server.incrby("counter", 5) == 6

    def test_decrby(self, server):
        server.set("c", 10)
        assert server.decrby("c", 3) == 7

    def test_incr_non_integer_raises(self, server):
        server.set("k", "abc")
        with pytest.raises(RedisError):
            server.incrby("k")

    def test_wrongtype_on_list_key(self, server):
        server.rpush("l", 1)
        with pytest.raises(WrongTypeError):
            server.get("l")


class TestGenericOps:
    def test_delete_returns_count(self, server):
        server.set("a", 1)
        server.set("b", 2)
        assert server.delete("a", "b", "missing") == 2

    def test_exists(self, server):
        server.set("a", 1)
        assert server.exists("a", "b") == 1

    def test_keys_pattern(self, server):
        server.set("task:1", 1)
        server.set("task:2", 2)
        server.set("other", 3)
        assert sorted(server.keys("task:*")) == ["task:1", "task:2"]

    def test_type(self, server):
        server.set("s", 1)
        server.rpush("l", 1)
        server.hset("h", "f", 1)
        server.sadd("st", 1)
        assert server.type("s") == "string"
        assert server.type("l") == "list"
        assert server.type("h") == "hash"
        assert server.type("st") == "set"
        assert server.type("missing") == "none"

    def test_flushall(self, server):
        server.set("a", 1)
        server.flushall()
        assert server.dbsize() == 0


class TestLists:
    def test_rpush_lpop_fifo(self, server):
        server.rpush("q", "a", "b", "c")
        assert server.lpop("q") == "a"
        assert server.lpop("q") == "b"

    def test_lpush_lpop_lifo(self, server):
        server.lpush("q", "a", "b")
        assert server.lpop("q") == "b"

    def test_rpop(self, server):
        server.rpush("q", 1, 2, 3)
        assert server.rpop("q") == 3

    def test_pop_empty_is_none(self, server):
        assert server.lpop("missing") is None

    def test_empty_list_key_removed(self, server):
        server.rpush("q", "only")
        server.lpop("q")
        assert server.exists("q") == 0

    def test_llen(self, server):
        assert server.llen("q") == 0
        server.rpush("q", 1, 2)
        assert server.llen("q") == 2

    def test_lrange_inclusive(self, server):
        server.rpush("q", *range(5))
        assert server.lrange("q", 1, 3) == [1, 2, 3]

    def test_lrange_minus_one_means_end(self, server):
        server.rpush("q", *range(4))
        assert server.lrange("q", 0, -1) == [0, 1, 2, 3]


class TestBlpop:
    def test_immediate(self, server):
        server.rpush("q", "x")
        assert server.blpop(["q"], timeout=0.1) == ("q", "x")

    def test_timeout_none_result(self, server):
        assert server.blpop(["q"], timeout=0.02) is None

    def test_multiple_keys_priority(self, server):
        server.rpush("b", "bee")
        assert server.blpop(["a", "b"], timeout=0.1) == ("b", "bee")

    def test_wakeup_on_push(self, server):
        got = []

        def consumer():
            got.append(server.blpop(["q"], timeout=2.0))

        t = threading.Thread(target=consumer)
        t.start()
        server.rpush("q", "late")
        t.join(timeout=3)
        assert got == [("q", "late")]


class TestHashes:
    def test_hset_hget(self, server):
        assert server.hset("h", "f", "v") == 1  # created
        assert server.hset("h", "f", "v2") == 0  # updated
        assert server.hget("h", "f") == "v2"

    def test_hgetall(self, server):
        server.hset("h", "a", 1)
        server.hset("h", "b", 2)
        assert server.hgetall("h") == {"a": 1, "b": 2}

    def test_hdel(self, server):
        server.hset("h", "a", 1)
        assert server.hdel("h", "a", "ghost") == 1
        assert server.exists("h") == 0  # empty hash removed

    def test_hlen(self, server):
        server.hset("h", "a", 1)
        assert server.hlen("h") == 1

    def test_hincrby(self, server):
        assert server.hincrby("h", "n", 3) == 3
        assert server.hincrby("h", "n", -1) == 2


class TestSets:
    def test_sadd_returns_new_count(self, server):
        assert server.sadd("s", "a", "b") == 2
        assert server.sadd("s", "a", "c") == 1

    def test_smembers(self, server):
        server.sadd("s", 1, 2)
        assert server.smembers("s") == {1, 2}

    def test_srem(self, server):
        server.sadd("s", "a", "b")
        assert server.srem("s", "a", "ghost") == 1
        assert server.scard("s") == 1

    def test_sismember(self, server):
        server.sadd("s", "x")
        assert server.sismember("s", "x")
        assert not server.sismember("s", "y")

    def test_empty_set_removed(self, server):
        server.sadd("s", "only")
        server.srem("s", "only")
        assert server.exists("s") == 0
