"""Tests for the recovery-oriented substrate commands (SNAPSHOT/RESTORE,
RPUSHSEQ, BLMOVE, LTRIM) and the server-shutdown wakeup semantics."""

import threading
import time

import pytest

from repro.redisim import RedisClient, RedisServer
from repro.redisim.errors import ConnectionError as RedisConnectionError


@pytest.fixture
def server():
    return RedisServer()


@pytest.fixture
def client(server):
    return RedisClient(server)


class TestSnapshotRestore:
    def test_restore_missing_returns_none(self, client):
        assert client.restore("snaps", "pe.0") is None

    def test_round_trip(self, client):
        state = {"counts": {"a": 3}, "last": ("a", 3)}
        assert client.snapshot("snaps", "pe.0", 7, state)
        assert client.restore("snaps", "pe.0") == (7, state)

    def test_round_trip_isolates_payload(self, client):
        state = {"counts": {"a": 3}}
        client.snapshot("snaps", "pe.0", 1, state)
        state["counts"]["a"] = 99  # writer keeps mutating after the save
        _seq, restored = client.restore("snaps", "pe.0")
        assert restored == {"counts": {"a": 3}}

    def test_snapshots_are_per_instance(self, client):
        client.snapshot("snaps", "pe.0", 1, "zero")
        client.snapshot("snaps", "pe.1", 2, "one")
        assert client.restore("snaps", "pe.0") == (1, "zero")
        assert client.restore("snaps", "pe.1") == (2, "one")

    def test_stale_write_rejected(self, client):
        """A presumed-dead worker flushing an old checkpoint after its
        instance advanced elsewhere must not clobber the newer state."""
        assert client.snapshot("snaps", "pe.0", 10, "new")
        assert not client.snapshot("snaps", "pe.0", 4, "stale")
        assert client.restore("snaps", "pe.0") == (10, "new")

    def test_equal_seq_overwrites(self, client):
        client.snapshot("snaps", "pe.0", 5, "first")
        assert client.snapshot("snaps", "pe.0", 5, "second")
        assert client.restore("snaps", "pe.0") == (5, "second")


class TestRpushSeq:
    def test_assigns_monotonic_sequences(self, client):
        assert client.rpush_seq("q", "a", "b") == [1, 2]
        assert client.rpush_seq("q", "c") == [3]

    def test_sequence_survives_emptying(self, client):
        """The replay cursor must not restart after the list drains."""
        client.rpush_seq("q", "a")
        client.blmove_seq("q", "pending", timeout=0.1)
        assert client.rpush_seq("q", "b") == [2]

    def test_lrange_seq_decodes(self, client):
        client.rpush_seq("q", ("data", "port", 1), ("data", "port", 2))
        assert client.lrange_seq("q") == [
            (1, ("data", "port", 1)),
            (2, ("data", "port", 2)),
        ]

    def test_delete_resets_sequence(self, client):
        client.rpush_seq("q", "a")
        client.delete("q")
        assert client.rpush_seq("q", "b") == [1]


class TestBlmove:
    def test_moves_head_to_tail(self, client):
        client.rpush_seq("src", "a", "b")
        assert client.blmove_seq("src", "dst", timeout=0.1) == (1, "a")
        assert client.lrange_seq("dst") == [(1, "a")]
        assert client.lrange_seq("src") == [(2, "b")]

    def test_timeout_returns_none(self, client):
        assert client.blmove_seq("src", "dst", timeout=0.01) is None

    def test_wakes_on_push(self, server, client):
        results = []

        def consumer():
            results.append(client.blmove_seq("src", "dst", timeout=2.0))

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)
        RedisClient(server).rpush_seq("src", "hello")
        thread.join(timeout=2.0)
        assert results == [(1, "hello")]


class TestLtrim:
    def test_trims_prefix(self, client):
        client.rpush("q", "a", "b", "c", "d")
        client.ltrim("q", 2, -1)
        assert client.lrange("q", 0, -1) == ["c", "d"]

    def test_trim_to_empty_removes_key(self, server, client):
        client.rpush("q", "a")
        client.ltrim("q", 1, -1)
        assert server.exists("q") == 0

    def test_missing_key_ok(self, client):
        assert client.ltrim("missing", 0, -1)

    def test_inclusive_range(self, client):
        client.rpush("q", "a", "b", "c", "d")
        client.ltrim("q", 1, 2)
        assert client.lrange("q", 0, -1) == ["b", "c"]


class TestXackDecr:
    """XACK + conditional DECR as one atomic step (the reclaim-race guard)."""

    def _setup_entry(self, client):
        client.xgroup_create("s", "g", id="0", mkstream=True)
        client.set("outstanding", 1)
        entry_id = client.xadd("s", {"task": "t"})
        client.xreadgroup("g", "c0", {"s": ">"})  # deliver into the PEL
        return entry_id

    def test_acked_entry_decrements(self, client):
        entry_id = self._setup_entry(client)
        assert client.xack_decr("s", "g", entry_id, "outstanding") == 1
        assert client.get("outstanding") == 0

    def test_already_acked_entry_does_not_decrement(self, client):
        entry_id = self._setup_entry(client)
        client.xack_decr("s", "g", entry_id, "outstanding")
        assert client.xack_decr("s", "g", entry_id, "outstanding") == 0
        assert client.get("outstanding") == 0  # never goes negative

    def test_usable_in_pipeline(self, client):
        entry_id = self._setup_entry(client)
        pipe = client.pipeline()
        pipe.xack_decr("s", "g", entry_id, "outstanding")
        assert pipe.execute() == [1]
        assert client.get("outstanding") == 0


class TestServerShutdown:
    """Satellite bugfix: readers blocked with ``timeout=None`` must be woken
    with ConnectionError on server close, not hang forever."""

    @pytest.mark.parametrize("timeout", [None, 30.0])
    def test_blpop_woken_on_close(self, server, client, timeout):
        errors = []

        def reader():
            try:
                client.blpop("nothing", timeout=timeout)
            except RedisConnectionError as exc:
                errors.append(exc)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        time.sleep(0.05)
        server.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert len(errors) == 1

    def test_blmove_woken_on_close(self, server, client):
        errors = []

        def reader():
            try:
                client.blmove_seq("nothing", "dst", timeout=None)
            except RedisConnectionError as exc:
                errors.append(exc)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        time.sleep(0.05)
        server.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert len(errors) == 1

    def test_blocking_xread_woken_on_close(self, server, client):
        errors = []

        def reader():
            try:
                client.xread({"stream": "$"}, block=30_000)
            except RedisConnectionError as exc:
                errors.append(exc)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        time.sleep(0.05)
        server.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert len(errors) == 1

    def test_blocking_xreadgroup_woken_on_close(self, server, client):
        client.xgroup_create("stream", "grp", id="0", mkstream=True)
        errors = []

        def reader():
            try:
                client.xreadgroup("grp", "c0", {"stream": ">"}, block=30_000)
            except RedisConnectionError as exc:
                errors.append(exc)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        time.sleep(0.05)
        server.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert len(errors) == 1

    def test_commands_after_close_fail(self, server, client):
        server.close()
        with pytest.raises(RedisConnectionError):
            client.set("k", 1)
        with pytest.raises(RedisConnectionError):
            client.blpop("q", timeout=0.01)

    def test_close_idempotent(self, server):
        server.close()
        server.close()
        assert server.closed
