"""Tests for XCLAIM / XAUTOCLAIM (crash recovery of pending entries)."""

import pytest

from repro.redisim.server import RedisServer


@pytest.fixture
def timeline():
    return {"t": 1.0}


@pytest.fixture
def server(timeline):
    return RedisServer(now=lambda: timeline["t"])


def seed(server, n=3):
    server.xgroup_create("s", "g", entry_id="0", mkstream=True)
    return [server.xadd("s", {"v": i}) for i in range(n)]


class TestXClaim:
    def test_claims_idle_entries(self, server, timeline):
        ids = seed(server)
        server.xreadgroup("g", "dead", {"s": ">"}, count=3)
        timeline["t"] = 10.0  # entries now 9000 ms idle
        claimed = server.xclaim("s", "g", "alive", 5000, ids)
        assert [eid for eid, _f in claimed] == ids
        assert server.xpending("s", "g")["consumers"] == {"alive": 3}

    def test_respects_min_idle(self, server, timeline):
        ids = seed(server, n=1)
        server.xreadgroup("g", "dead", {"s": ">"})
        timeline["t"] = 1.5  # only 500 ms idle
        assert server.xclaim("s", "g", "alive", 5000, ids) == []

    def test_claim_bumps_delivery_count(self, server, timeline):
        ids = seed(server, n=1)
        server.xreadgroup("g", "dead", {"s": ">"})
        timeline["t"] = 10.0
        server.xclaim("s", "g", "alive", 0, ids)
        rows = server.xpending_range("s", "g")
        assert rows[0]["times_delivered"] == 2

    def test_claim_unknown_id_ignored(self, server):
        seed(server, n=1)
        assert server.xclaim("s", "g", "c", 0, ["999-999"]) == []

    def test_claim_trimmed_entry_drops_pel(self, server, timeline):
        ids = seed(server, n=2)
        server.xreadgroup("g", "dead", {"s": ">"}, count=2)
        server.xtrim("s", 1)  # first entry gone from the log
        timeline["t"] = 10.0
        claimed = server.xclaim("s", "g", "alive", 0, ids)
        assert [eid for eid, _f in claimed] == [ids[1]]
        assert server.xpending("s", "g")["pending"] == 1


class TestXAutoClaim:
    def test_scans_and_claims(self, server, timeline):
        ids = seed(server, n=5)
        server.xreadgroup("g", "dead", {"s": ">"}, count=5)
        timeline["t"] = 10.0
        cursor, claimed = server.xautoclaim("s", "g", "alive", 1000, count=3)
        assert len(claimed) == 3
        assert cursor == ids[3]
        cursor, claimed = server.xautoclaim("s", "g", "alive", 1000, start=cursor)
        assert len(claimed) == 2
        assert cursor == "0-0"

    def test_nothing_idle_enough(self, server, timeline):
        seed(server, n=2)
        server.xreadgroup("g", "dead", {"s": ">"}, count=2)
        timeline["t"] = 1.1
        cursor, claimed = server.xautoclaim("s", "g", "alive", 60000)
        assert claimed == [] and cursor == "0-0"
