"""Parity lane: the same facade, driven against *genuine* Redis.

The RESP client in :mod:`repro.net.client` speaks the real wire protocol,
so it can talk to an actual Redis server with no extra dependency.  When
``REPRO_REAL_REDIS_URL`` points at one (``redis://host:port`` or bare
``host:port``), every test here runs each scenario twice -- once against
redisim's TCP front-end, once against Redis itself -- and asserts the
replies are identical.  Without the variable the whole module skips, so
the default suite never needs a Redis install.

Commands specific to redisim (``RPUSHSEQ``, ``SNAPSHOT``, ``XACKDECR``...)
are exercised in :mod:`tests.net.test_tcp` instead: genuine Redis does not
know them, which is exactly the point of keeping them out of this lane.
"""

import os
import uuid

import pytest

from repro.net.client import SocketRedisClient
from repro.net.server import RespTCPServer

pytestmark = [pytest.mark.network, pytest.mark.real_redis]

_URL = os.environ.get("REPRO_REAL_REDIS_URL")

if not _URL:  # pragma: no cover - exercised only with a live Redis
    pytest.skip(
        "set REPRO_REAL_REDIS_URL=redis://host:port to run the parity lane",
        allow_module_level=True,
    )


def _address(url: str) -> str:
    return url.split("://", 1)[-1].rstrip("/")


@pytest.fixture
def pair():
    """(redisim client, real-Redis client), keys namespaced per test."""
    sim_server = RespTCPServer().start()
    sim = SocketRedisClient(address=sim_server.address)
    real = SocketRedisClient(address=_address(_URL))
    real.ping()
    prefix = f"repro-parity:{uuid.uuid4().hex[:8]}"
    yield sim, real, lambda k: f"{prefix}:{k}"
    for key in real.keys(f"{prefix}:*"):
        real.delete(key)
    real.close()
    sim.close()
    sim_server.close()


def both(sim, real, key, op):
    a, b = op(sim, key), op(real, key)
    assert a == b, f"redisim={a!r} real={b!r}"
    return a


class TestParity:
    def test_strings(self, pair):
        sim, real, k = pair
        both(sim, real, k("s"), lambda c, key: c.set(key, "v"))
        both(sim, real, k("s"), lambda c, key: c.get(key))
        both(sim, real, k("n"), lambda c, key: c.incrby(key, 7))
        both(sim, real, k("n"), lambda c, key: c.decr(key))
        both(sim, real, k("s"), lambda c, key: c.exists(key))
        both(sim, real, k("s"), lambda c, key: c.type(key))

    def test_lists(self, pair):
        sim, real, k = pair
        both(sim, real, k("q"), lambda c, key: c.rpush(key, "a", "b", "c"))
        both(sim, real, k("q"), lambda c, key: c.llen(key))
        both(sim, real, k("q"), lambda c, key: c.lpop(key))
        both(sim, real, k("q"), lambda c, key: c.lrange(key, 0, -1))
        both(sim, real, k("q"), lambda c, key: c.blpop([key], timeout=0.1))
        both(sim, real, k("empty"), lambda c, key: c.blpop([key], timeout=0.1))

    def test_hashes(self, pair):
        sim, real, k = pair
        both(sim, real, k("h"), lambda c, key: c.hset(key, "f", b"1"))
        both(sim, real, k("h"), lambda c, key: c.hincrby(key, "f", 4))
        both(sim, real, k("h"), lambda c, key: c.hget(key, "f"))
        both(sim, real, k("h"), lambda c, key: c.hgetall(key))
        both(sim, real, k("h"), lambda c, key: c.hlen(key))
        both(sim, real, k("h"), lambda c, key: c.hdel(key, "f"))

    def test_sets(self, pair):
        sim, real, k = pair
        both(sim, real, k("s"), lambda c, key: c.sadd(key, "x", "y"))
        both(sim, real, k("s"), lambda c, key: c.smembers(key))
        both(sim, real, k("s"), lambda c, key: c.scard(key))
        both(sim, real, k("s"), lambda c, key: c.sismember(key, "x"))
        both(sim, real, k("s"), lambda c, key: c.srem(key, "x"))

    def test_stream_consumer_group_cycle(self, pair):
        sim, real, k = pair

        def cycle(c, key):
            c.xgroup_create(key, "g", mkstream=True)
            c.xadd(key, {"task": "payload"}, entry_id="1-1")
            c.xadd(key, {"task": "other"}, entry_id="2-1")
            [(name, entries)] = c.xreadgroup("g", "w0", {key: ">"}, count=10)
            acked = c.xack(key, "g", entries[0][0])
            pending = c.xpending(key, "g")
            return (
                len(entries),
                [e[1] for e in entries],
                acked,
                pending["pending"],
                pending["consumers"],
                c.xlen(key),
            )

        both(sim, real, k("st"), cycle)

    def test_xautoclaim_adoption(self, pair):
        sim, real, k = pair

        def adopt(c, key):
            c.xgroup_create(key, "g", mkstream=True)
            c.xadd(key, {"t": "1"}, entry_id="1-1")
            c.xreadgroup("g", "dead", {key: ">"}, count=10)
            cursor, claimed = c.xautoclaim(key, "g", "live", min_idle_time=0)
            return [(entry_id, fields) for entry_id, fields in claimed]

        both(sim, real, k("st"), adopt)

    def test_pipeline(self, pair):
        sim, real, k = pair

        def pipelined(c, key):
            pipe = c.pipeline()
            pipe.rpush(key, "a")
            pipe.incrby(key + ":n", 2)
            pipe.set(key + ":s", "v")
            return pipe.execute()[:2]

        both(sim, real, k("p"), pipelined)

    def test_wrongtype_error_code(self, pair):
        sim, real, k = pair

        def wrongtype(c, key):
            from repro.net.client import ReplyError

            c.set(key, "v")
            try:
                c.lpush(key, 1)
            except ReplyError as exc:
                return exc.code
            return None

        both(sim, real, k("w"), wrongtype)
