"""Tests for client pipelines and server transactions (MULTI/EXEC)."""

import threading
import time

import pytest

from repro.redisim.client import RedisClient
from repro.redisim.errors import RedisError
from repro.redisim.server import RedisServer
from repro.runtime.clock import Clock


@pytest.fixture
def server():
    return RedisServer()


@pytest.fixture
def client(server):
    return RedisClient(server)


class TestServerTransaction:
    def test_executes_in_order(self, server):
        results = server.transaction(
            [
                ("incrby", ("n", 2), {}),
                ("incrby", ("n", 3), {}),
                ("get", ("n",), {}),
            ]
        )
        assert results == [2, 5, 5]

    def test_rejects_unlisted_commands(self, server):
        with pytest.raises(RedisError):
            server.transaction([("flushall", (), {})])

    def test_mixed_commands(self, server):
        server.xgroup_create("s", "g", mkstream=True)
        server.transaction(
            [
                ("xadd", ("s", {"v": 1}), {}),
                ("rpush", ("q", "item"), {}),
                ("set", ("k", 9), {}),
            ]
        )
        assert server.xlen("s") == 1
        assert server.llen("q") == 1
        assert server.get("k") == 9

    def test_wakes_blocked_readers(self, server):
        got = []

        def consumer():
            got.append(server.blpop(["q"], timeout=2.0))

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.02)
        server.transaction([("rpush", ("q", "late"), {})])
        t.join(timeout=3)
        assert got == [("q", "late")]


class TestClientPipeline:
    def test_empty_execute(self, client):
        assert client.pipeline().execute() == []

    def test_batched_results(self, client):
        pipe = client.pipeline()
        pipe.incr("n").incr("n").set("k", "v")
        assert pipe.execute() == [1, 2, True]
        assert len(pipe) == 0  # cleared after execute

    def test_payloads_serialized(self, client):
        payload = [1, 2]
        pipe = client.pipeline()
        pipe.rpush("q", payload)
        payload.append(3)  # mutation after queueing must not leak
        pipe.execute()
        assert client.lpop("q") == [1, 2]

    def test_xadd_xack_cycle(self, client):
        client.xgroup_create("s", "g", id="0", mkstream=True)
        pipe = client.pipeline()
        pipe.xadd("s", {"task": "work"})
        pipe.execute()
        [(eid, fields)] = client.xreadgroup("g", "c", {"s": ">"})[0][1]
        assert fields == {"task": "work"}
        pipe = client.pipeline()
        pipe.xack("s", "g", eid).decr("outstanding")
        acked, counter = pipe.execute()
        assert acked == 1 and counter == -1

    def test_single_latency_charge(self, server):
        clock = Clock(0.01)
        client = RedisClient(server, op_latency=1.0, clock=clock)
        pipe = client.pipeline()
        for i in range(10):
            pipe.incr("n")
        start = time.monotonic()
        pipe.execute()
        elapsed = time.monotonic() - start
        # One charge (10 ms) not ten (100 ms).
        assert elapsed < 0.06

    def test_delete_in_pipeline(self, client):
        client.set("a", 1)
        pipe = client.pipeline()
        pipe.delete("a")
        assert pipe.execute() == [1]
