"""Tests for the RedisClient facade (serialization, latency, API parity)."""

import time

import pytest

from repro.redisim.client import RedisClient
from repro.redisim.server import RedisServer
from repro.runtime.clock import Clock


@pytest.fixture
def server():
    return RedisServer()


@pytest.fixture
def client(server):
    return RedisClient(server)


class TestSerializationIsolation:
    def test_list_values_are_isolated(self, client):
        payload = {"nested": [1, 2, 3]}
        client.rpush("q", payload)
        payload["nested"].append(99)  # mutation after send
        received = client.lpop("q")
        assert received == {"nested": [1, 2, 3]}

    def test_stream_fields_are_isolated(self, client):
        payload = [1, 2]
        client.xadd("s", {"task": payload})
        payload.append(3)
        [(_id, fields)] = client.xrange("s")
        assert fields["task"] == [1, 2]

    def test_roundtrip_preserves_types(self, client):
        import numpy as np

        client.rpush("q", ("tuple", np.arange(3)))
        kind, arr = client.lpop("q")
        assert kind == "tuple"
        assert list(arr) == [0, 1, 2]

    def test_serialize_disabled_shares_objects(self, server):
        raw = RedisClient(server, serialize=False)
        payload = [1]
        raw.rpush("q", payload)
        payload.append(2)
        assert raw.lpop("q") == [1, 2]


class TestLatencyInjection:
    def test_requires_clock(self, server):
        with pytest.raises(ValueError):
            RedisClient(server, op_latency=0.01)

    def test_negative_latency_rejected(self, server):
        with pytest.raises(ValueError):
            RedisClient(server, op_latency=-1, clock=Clock())

    def test_latency_charged_per_op(self, server):
        client = RedisClient(server, op_latency=1.0, clock=Clock(0.005))
        start = time.monotonic()
        client.set("a", 1)
        client.get("a")
        elapsed = time.monotonic() - start
        assert elapsed >= 0.008  # 2 ops x 5 ms

    def test_ops_counter(self, client):
        client.set("a", 1)
        client.get("a")
        client.incr("n")
        assert client.ops == 3


class TestClientStreamAPI:
    def test_group_read_ack_cycle(self, client):
        client.xgroup_create("s", "g", id="0", mkstream=True)
        client.xadd("s", {"task": "work"})
        reply = client.xreadgroup("g", "c", {"s": ">"}, count=1)
        [(key, entries)] = reply
        assert key == "s"
        [(eid, fields)] = entries
        assert fields == {"task": "work"}
        assert client.xack("s", "g", eid) == 1

    def test_blpop_tuple(self, client):
        client.rpush("q", "item")
        assert client.blpop("q", timeout=0.1) == ("q", "item")

    def test_blpop_timeout_none(self, client):
        assert client.blpop("q", timeout=0.02) is None

    def test_xinfo_consumers_via_client(self, client):
        client.xgroup_create("s", "g", mkstream=True)
        client.xadd("s", {"v": 1})
        client.xreadgroup("g", "c", {"s": ">"})
        rows = client.xinfo_consumers("s", "g")
        assert rows[0]["name"] == "c"

    def test_xautoclaim_via_client(self, client):
        client.xgroup_create("s", "g", id="0", mkstream=True)
        client.xadd("s", {"task": 1})
        client.xreadgroup("g", "dead", {"s": ">"})
        cursor, claimed = client.xautoclaim("s", "g", "alive", 0)
        assert cursor == "0-0"
        assert claimed[0][1] == {"task": 1}

    def test_hash_and_set_passthrough(self, client):
        client.hset("h", "f", 7)
        assert client.hgetall("h") == {"f": 7}
        client.sadd("s", "m")
        assert client.sismember("s", "m")

    def test_counter_roundtrip(self, client):
        client.set("n", 0)
        client.incr("n")
        client.incr("n")
        client.decr("n")
        assert int(client.get("n")) == 1
