"""Tests for the activity meter (total process time metric)."""

import time

from repro.runtime.accounting import ActivityMeter
from repro.runtime.clock import Clock


class TestActivityMeter:
    def test_empty_meter_zero(self):
        meter = ActivityMeter(Clock())
        assert meter.total() == 0.0
        assert meter.per_worker() == {}

    def test_accumulates_active_time(self):
        meter = ActivityMeter(Clock())
        meter.activate("w0")
        time.sleep(0.02)
        meter.deactivate("w0")
        assert 0.01 < meter.total() < 1.0

    def test_idle_time_not_counted(self):
        meter = ActivityMeter(Clock())
        meter.activate("w0")
        time.sleep(0.01)
        meter.deactivate("w0")
        before = meter.total()
        time.sleep(0.05)  # idle gap
        assert meter.total() == before

    def test_multiple_workers_sum(self):
        meter = ActivityMeter(Clock())
        meter.activate("a")
        meter.activate("b")
        time.sleep(0.02)
        meter.deactivate("a")
        meter.deactivate("b")
        per = meter.per_worker()
        assert set(per) == {"a", "b"}
        assert meter.total() >= 0.03  # both counted

    def test_double_activate_is_noop(self):
        meter = ActivityMeter(Clock())
        meter.activate("w")
        time.sleep(0.01)
        meter.activate("w")  # must not reset the interval start
        time.sleep(0.01)
        meter.deactivate("w")
        assert meter.total() >= 0.015

    def test_deactivate_unknown_is_noop(self):
        meter = ActivityMeter(Clock())
        meter.deactivate("ghost")
        assert meter.total() == 0.0

    def test_open_interval_included_in_total(self):
        meter = ActivityMeter(Clock())
        meter.activate("w")
        time.sleep(0.02)
        assert meter.total() >= 0.015  # still active

    def test_close_folds_open_intervals(self):
        meter = ActivityMeter(Clock())
        meter.activate("w")
        time.sleep(0.01)
        meter.close()
        total = meter.total()
        time.sleep(0.02)
        assert meter.total() == total

    def test_context_manager(self):
        meter = ActivityMeter(Clock())
        with meter.active("w"):
            time.sleep(0.01)
        assert meter.total() >= 0.005
        assert meter.active_workers == 0

    def test_active_workers_count(self):
        meter = ActivityMeter(Clock())
        meter.activate("a")
        meter.activate("b")
        assert meter.active_workers == 2
        meter.deactivate("a")
        assert meter.active_workers == 1
