"""Tests for repro.runtime.cores (the emulated-core limiter)."""

import threading
import time

import pytest

from repro.runtime.clock import Clock
from repro.runtime.cores import CoreLimiter


class TestCoreLimiterBasics:
    def test_unconstrained_allows_everything(self):
        limiter = CoreLimiter(None)
        with limiter.core():
            assert limiter.in_use == 0  # unconstrained doesn't track

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            CoreLimiter(0)

    def test_in_use_tracks_holders(self):
        limiter = CoreLimiter(4)
        with limiter.core():
            assert limiter.in_use == 1
            with limiter.core():
                assert limiter.in_use == 2
        assert limiter.in_use == 0

    def test_compute_sleeps_scaled(self):
        limiter = CoreLimiter(2)
        clock = Clock(0.01)
        start = time.monotonic()
        limiter.compute(clock, 1.0)
        assert 0.005 <= time.monotonic() - start < 0.5


class TestCoreContention:
    def test_oversubscription_serializes(self):
        """4 workers on 2 cores must take ~2x the single-worker time."""
        limiter = CoreLimiter(2)
        clock = Clock(0.01)  # each compute is 10 ms real
        start = time.monotonic()
        threads = [
            threading.Thread(target=limiter.compute, args=(clock, 1.0))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.monotonic() - start
        # 4 jobs x 10ms on 2 cores = 20ms minimum.
        assert elapsed >= 0.018

    def test_enough_cores_run_parallel(self):
        limiter = CoreLimiter(8)
        clock = Clock(0.01)
        start = time.monotonic()
        threads = [
            threading.Thread(target=limiter.compute, args=(clock, 1.0))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All parallel: ~10 ms, allow generous slack.
        assert time.monotonic() - start < 0.5

    def test_release_on_exception(self):
        limiter = CoreLimiter(1)
        with pytest.raises(RuntimeError):
            with limiter.core():
                raise RuntimeError("boom")
        # Token must have been released.
        acquired = threading.Event()

        def grab():
            with limiter.core():
                acquired.set()

        t = threading.Thread(target=grab)
        t.start()
        t.join(timeout=1)
        assert acquired.is_set()
