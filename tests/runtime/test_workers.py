"""Tests for the WorkerPool (apply_async semantics)."""

import threading
import time

import pytest

from repro.runtime.workers import AsyncResult, CallbackError, WorkerPool


class TestAsyncResult:
    def test_not_ready_initially(self):
        assert not AsyncResult().ready()

    def test_successful_before_ready_raises(self):
        with pytest.raises(ValueError):
            AsyncResult().successful()

    def test_get_timeout(self):
        with pytest.raises(TimeoutError):
            AsyncResult().get(timeout=0.01)


class TestWorkerPool:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_apply_async_returns_value(self):
        pool = WorkerPool(2)
        try:
            result = pool.apply_async(lambda a, b: a + b, (2, 3))
            assert result.get(timeout=2) == 5
            assert result.successful()
        finally:
            pool.close()
            pool.join()

    def test_callback_fires_with_value(self):
        pool = WorkerPool(2)
        seen = []
        done = threading.Event()

        def callback(value):
            seen.append(value)
            done.set()

        try:
            pool.apply_async(lambda: 42, callback=callback)
            assert done.wait(timeout=2)
            assert seen == [42]
        finally:
            pool.close()
            pool.join()

    def test_exception_recorded_and_reraised(self):
        pool = WorkerPool(1)

        def boom():
            raise ValueError("kapow")

        try:
            result = pool.apply_async(boom)
            with pytest.raises(ValueError, match="kapow"):
                result.get(timeout=2)
            assert not result.successful()
            assert any(isinstance(e, ValueError) for e in pool.errors)
        finally:
            pool.close()
            pool.join()

    def test_callback_fires_even_on_error(self):
        """active_count accounting must not leak when a session dies."""
        pool = WorkerPool(1)
        done = threading.Event()

        def boom():
            raise RuntimeError("x")

        try:
            pool.apply_async(boom, callback=lambda _v: done.set())
            assert done.wait(timeout=2)
        finally:
            pool.close()
            pool.join()

    def test_parallelism(self):
        pool = WorkerPool(4)
        barrier = threading.Barrier(4, timeout=2)

        def wait_at_barrier():
            barrier.wait()
            return True

        try:
            results = [pool.apply_async(wait_at_barrier) for _ in range(4)]
            assert all(r.get(timeout=3) for r in results)
        finally:
            pool.close()
            pool.join()

    def test_submit_after_close_raises(self):
        pool = WorkerPool(1)
        pool.close()
        pool.join()
        with pytest.raises(RuntimeError):
            pool.apply_async(lambda: 1)

    def test_join_before_close_raises(self):
        pool = WorkerPool(1)
        try:
            with pytest.raises(RuntimeError):
                pool.join()
        finally:
            pool.close()
            pool.join()

    def test_raising_callback_rejects_result(self):
        """A callback failure must surface through get(), not vanish into
        the pool thread while the result reports success."""
        pool = WorkerPool(1)

        def bad_callback(_value):
            raise RuntimeError("callback kapow")

        try:
            result = pool.apply_async(lambda: 42, callback=bad_callback)
            with pytest.raises(CallbackError) as info:
                result.get(timeout=2)
            assert isinstance(info.value.__cause__, RuntimeError)
            assert "callback kapow" in str(info.value.__cause__)
            assert not result.successful()
            assert any(isinstance(e, RuntimeError) for e in pool.errors)
        finally:
            pool.close()
            pool.join()

    def test_raising_callback_does_not_hang_waiters(self):
        """Regression: the result must resolve either way -- a waiter
        blocked in get() would otherwise hang forever."""
        pool = WorkerPool(1)

        def bad_callback(_value):
            raise ValueError("boom")

        try:
            result = pool.apply_async(lambda: 1, callback=bad_callback)
            result.wait(timeout=2)
            assert result.ready()
        finally:
            pool.close()
            pool.join()

    def test_callback_error_after_func_error_keeps_original(self):
        """When func itself failed, get() must re-raise func's error, not
        the callback's."""
        pool = WorkerPool(1)

        def boom():
            raise KeyError("func-error")

        def bad_callback(_value):
            raise ValueError("callback-error")

        try:
            result = pool.apply_async(boom, callback=bad_callback)
            with pytest.raises(KeyError, match="func-error"):
                result.get(timeout=2)
        finally:
            pool.close()
            pool.join()

    def test_backlog_processed_after_close(self):
        pool = WorkerPool(1)
        results = [pool.apply_async(time.sleep, (0.01,)) for _ in range(5)]
        pool.close()
        pool.join(timeout=5)
        assert all(r.ready() for r in results)
