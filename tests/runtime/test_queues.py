"""Tests for repro.runtime.queues."""

import threading

import pytest

from repro.runtime.queues import (
    POISON_PILL,
    Batch,
    BatchingBuffer,
    CloseableQueue,
    Empty,
    TrackedQueue,
    as_envelope,
    batch_items,
    batch_len,
    chunked,
)


class TestCloseableQueue:
    def test_fifo_order(self):
        q = CloseableQueue()
        for i in range(5):
            q.put(i)
        assert [q.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_get_timeout_raises_empty(self):
        q = CloseableQueue()
        with pytest.raises(Empty):
            q.get(timeout=0.01)

    def test_get_nowait_raises_empty(self):
        with pytest.raises(Empty):
            CloseableQueue().get_nowait()

    def test_close_delivers_one_pill_per_consumer(self):
        q = CloseableQueue()
        q.close(consumers=3)
        assert all(q.get() is POISON_PILL for _ in range(3))

    def test_close_negative_rejected(self):
        with pytest.raises(ValueError):
            CloseableQueue().close(consumers=-1)

    def test_close_is_idempotent(self):
        """A second close must not re-broadcast pills: counted-termination
        consumers would misread the extras as more finished producers."""
        q = CloseableQueue()
        q.close(consumers=3)
        q.close(consumers=3)
        assert q.qsize() == 3

    def test_closed_property(self):
        q = CloseableQueue()
        assert not q.closed
        q.close()
        assert q.closed

    def test_reclose_with_different_count_ignored(self):
        q = CloseableQueue()
        q.close(consumers=1)
        q.close(consumers=5)
        assert q.qsize() == 1

    def test_qsize_and_empty(self):
        q = CloseableQueue()
        assert q.empty()
        q.put("x")
        assert q.qsize() == 1 and not q.empty()


class TestBatchEnvelope:
    def test_iteration_and_len(self):
        batch = Batch([1, 2, 3])
        assert len(batch) == 3
        assert list(batch) == [1, 2, 3]

    def test_batch_items_unwraps(self):
        assert batch_items(Batch(["a", "b"])) == ["a", "b"]
        assert batch_items("bare") == ["bare"]

    def test_batch_len(self):
        assert batch_len(Batch([1, 2])) == 2
        assert batch_len(("pe", "port", 1)) == 1

    def test_as_envelope_single_is_bare(self):
        """One tuple travels unwrapped -- the batch_size=1 identity."""
        assert as_envelope(["only"]) == "only"
        assert isinstance(as_envelope([1, 2]), Batch)

    def test_chunked(self):
        assert list(chunked([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]
        assert list(chunked([], 3)) == []
        with pytest.raises(ValueError):
            list(chunked([1], 0))


class TestBatchingBuffer:
    def test_size_triggered_flush(self):
        out = []
        buf = BatchingBuffer(out.append, batch_size=3)
        assert not buf.add("a")
        assert not buf.add("b")
        assert buf.add("c")  # third tuple fills the envelope
        assert len(out) == 1 and isinstance(out[0], Batch)
        assert list(out[0]) == ["a", "b", "c"]
        assert buf.pending == 0

    def test_passthrough_at_size_one(self):
        """batch_size=1 forwards bare items immediately -- no envelope."""
        out = []
        buf = BatchingBuffer(out.append, batch_size=1)
        assert buf.add("x")
        assert out == ["x"]

    def test_flush_single_item_is_bare(self):
        out = []
        buf = BatchingBuffer(out.append, batch_size=4)
        buf.add("solo")
        assert buf.flush()
        assert out == ["solo"]  # no Batch wrapper for one tuple

    def test_flush_empty_is_noop(self):
        out = []
        buf = BatchingBuffer(out.append, batch_size=4)
        assert not buf.flush()
        assert out == []

    def test_linger_triggered_flush(self):
        """The oldest buffered tuple waits at most ``linger`` seconds."""
        out = []
        clock = [0.0]
        buf = BatchingBuffer(out.append, batch_size=10, linger=0.5, now=lambda: clock[0])
        buf.add("a")
        clock[0] = 0.2
        assert not buf.poll()
        clock[0] = 0.6  # past the deadline: next add (or poll) flushes
        assert buf.add("b")
        assert len(out) == 1 and list(out[0]) == ["a", "b"]

    def test_poll_flushes_expired_tail(self):
        out = []
        clock = [0.0]
        buf = BatchingBuffer(out.append, batch_size=10, linger=0.5, now=lambda: clock[0])
        buf.add("tail")
        clock[0] = 1.0
        assert buf.poll()
        assert out == ["tail"]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BatchingBuffer(lambda item: None, batch_size=0)
        with pytest.raises(ValueError):
            BatchingBuffer(lambda item: None, batch_size=2, linger=-1.0)


class TestCloseFlushesBuffers:
    def test_close_flushes_linger_buffered_tail(self):
        """Regression: a linger-buffered tail tuple must never be dropped
        at shutdown -- close() flushes attached buffers *before* the pills,
        so per-queue FIFO puts the data ahead of end-of-stream."""
        q = CloseableQueue()
        buf = q.buffer(batch_size=8, linger=60.0)
        buf.add("tail-tuple")  # would linger for a minute
        q.close(consumers=1)
        assert q.get() == "tail-tuple"
        assert q.get() is POISON_PILL

    def test_close_flushes_multiple_buffers(self):
        q = CloseableQueue()
        first, second = q.buffer(batch_size=4), q.buffer(batch_size=4)
        first.add("a")
        second.add("b")
        second.add("c")
        q.close(consumers=2)
        items = [q.get() for _ in range(4)]
        assert items[0] == "a"
        assert list(items[1]) == ["b", "c"]
        assert items[2] is POISON_PILL and items[3] is POISON_PILL

    def test_reclose_does_not_reflush(self):
        """Close is idempotent for buffers too: a tuple added after the
        first close stays buffered rather than leaking past the pills."""
        q = CloseableQueue()
        buf = q.buffer(batch_size=8)
        buf.add("early")
        q.close(consumers=1)
        buf.add("late")
        q.close(consumers=1)
        assert q.get() == "early"
        assert q.get() is POISON_PILL
        assert q.empty()
        assert buf.pending == 1

    def test_external_buffer_attachable(self):
        q = CloseableQueue()
        buf = BatchingBuffer(q, batch_size=8)  # queue sink auto-attaches
        buf.add("x")
        q.close()
        assert q.get() == "x"


class TestTrackedQueueBatches:
    def test_batch_put_counts_tuples(self):
        q = TrackedQueue()
        q.put(Batch([("t", None, 1), ("t", None, 2), ("t", None, 3)]))
        assert q.outstanding == 3
        assert q.total_put == 3
        assert q.qsize() == 1  # one envelope on the wire

    def test_pending_tasks_gauge_counts_tuples(self):
        """The auto-scaler's backlog signal: tuples enqueued, not items --
        and unlike qsize, pills do not inflate it."""
        q = TrackedQueue()
        q.put(Batch([1, 2, 3]))
        q.put("bare")
        q.put_pill()
        assert q.qsize() == 3
        assert q.pending_tasks == 4
        q.get()  # the envelope leaves the wire, its tasks stay outstanding
        assert q.pending_tasks == 1
        assert q.outstanding == 4

    def test_batch_drains_per_tuple(self):
        q = TrackedQueue()
        q.put(Batch([1, 2]))
        item = q.get()
        assert q.total_got == 2
        for _ in batch_items(item):
            q.mark_done()
        assert q.is_drained()

    def test_batch_settled_as_unit(self):
        q = TrackedQueue()
        q.put(Batch([1, 2, 3]))
        q.get()
        q.mark_done(3)
        assert q.is_drained()

    def test_mark_done_overdraw_raises(self):
        q = TrackedQueue()
        q.put(Batch([1, 2]))
        q.get()
        with pytest.raises(RuntimeError):
            q.mark_done(3)

    def test_mark_done_rejects_nonpositive(self):
        q = TrackedQueue()
        q.put("x")
        q.get()
        with pytest.raises(ValueError):
            q.mark_done(0)


class TestTrackedQueueAccounting:
    def test_starts_drained(self):
        q = TrackedQueue()
        assert q.is_drained()
        assert q.outstanding == 0

    def test_put_makes_outstanding(self):
        q = TrackedQueue()
        q.put("a")
        assert q.outstanding == 1
        assert not q.is_drained()

    def test_get_does_not_drain(self):
        """A fetched-but-unfinished task is still outstanding (the race the
        paper's plain emptiness check loses)."""
        q = TrackedQueue()
        q.put("a")
        q.get()
        assert q.empty()
        assert not q.is_drained()

    def test_mark_done_drains(self):
        q = TrackedQueue()
        q.put("a")
        q.get()
        q.mark_done()
        assert q.is_drained()

    def test_children_keep_queue_undrained(self):
        q = TrackedQueue()
        q.put("parent")
        q.get()
        q.put("child")  # enqueued before parent completes
        q.mark_done()
        assert not q.is_drained()
        q.get()
        q.mark_done()
        assert q.is_drained()

    def test_mark_done_without_get_raises(self):
        with pytest.raises(RuntimeError):
            TrackedQueue().mark_done()

    def test_counters(self):
        q = TrackedQueue()
        q.put("a")
        q.put("b")
        q.get()
        assert q.total_put == 2
        assert q.total_got == 1


class TestTrackedQueuePills:
    def test_pills_bypass_accounting(self):
        q = TrackedQueue()
        q.put_pill(2)
        assert q.is_drained()
        assert q.get() is POISON_PILL
        assert q.get() is POISON_PILL
        assert q.total_got == 0

    def test_put_pill_via_put(self):
        q = TrackedQueue()
        q.put(POISON_PILL)
        assert q.is_drained()
        assert q.get() is POISON_PILL


class TestTrackedQueueWaiting:
    def test_wait_drained_immediate(self):
        assert TrackedQueue().wait_drained(timeout=0.01)

    def test_wait_drained_timeout(self):
        q = TrackedQueue()
        q.put("x")
        assert not q.wait_drained(timeout=0.02)

    def test_wait_drained_wakes_on_completion(self):
        q = TrackedQueue()
        q.put("x")
        woke = threading.Event()

        def waiter():
            if q.wait_drained(timeout=2.0):
                woke.set()

        t = threading.Thread(target=waiter)
        t.start()
        q.get()
        q.mark_done()
        t.join(timeout=2.0)
        assert woke.is_set()

    def test_get_blocking_timeout(self):
        q = TrackedQueue()
        with pytest.raises(Empty):
            q.get(timeout=0.01)
