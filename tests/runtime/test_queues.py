"""Tests for repro.runtime.queues."""

import threading

import pytest

from repro.runtime.queues import POISON_PILL, CloseableQueue, Empty, TrackedQueue


class TestCloseableQueue:
    def test_fifo_order(self):
        q = CloseableQueue()
        for i in range(5):
            q.put(i)
        assert [q.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_get_timeout_raises_empty(self):
        q = CloseableQueue()
        with pytest.raises(Empty):
            q.get(timeout=0.01)

    def test_get_nowait_raises_empty(self):
        with pytest.raises(Empty):
            CloseableQueue().get_nowait()

    def test_close_delivers_one_pill_per_consumer(self):
        q = CloseableQueue()
        q.close(consumers=3)
        assert all(q.get() is POISON_PILL for _ in range(3))

    def test_close_negative_rejected(self):
        with pytest.raises(ValueError):
            CloseableQueue().close(consumers=-1)

    def test_close_is_idempotent(self):
        """A second close must not re-broadcast pills: counted-termination
        consumers would misread the extras as more finished producers."""
        q = CloseableQueue()
        q.close(consumers=3)
        q.close(consumers=3)
        assert q.qsize() == 3

    def test_closed_property(self):
        q = CloseableQueue()
        assert not q.closed
        q.close()
        assert q.closed

    def test_reclose_with_different_count_ignored(self):
        q = CloseableQueue()
        q.close(consumers=1)
        q.close(consumers=5)
        assert q.qsize() == 1

    def test_qsize_and_empty(self):
        q = CloseableQueue()
        assert q.empty()
        q.put("x")
        assert q.qsize() == 1 and not q.empty()


class TestTrackedQueueAccounting:
    def test_starts_drained(self):
        q = TrackedQueue()
        assert q.is_drained()
        assert q.outstanding == 0

    def test_put_makes_outstanding(self):
        q = TrackedQueue()
        q.put("a")
        assert q.outstanding == 1
        assert not q.is_drained()

    def test_get_does_not_drain(self):
        """A fetched-but-unfinished task is still outstanding (the race the
        paper's plain emptiness check loses)."""
        q = TrackedQueue()
        q.put("a")
        q.get()
        assert q.empty()
        assert not q.is_drained()

    def test_mark_done_drains(self):
        q = TrackedQueue()
        q.put("a")
        q.get()
        q.mark_done()
        assert q.is_drained()

    def test_children_keep_queue_undrained(self):
        q = TrackedQueue()
        q.put("parent")
        q.get()
        q.put("child")  # enqueued before parent completes
        q.mark_done()
        assert not q.is_drained()
        q.get()
        q.mark_done()
        assert q.is_drained()

    def test_mark_done_without_get_raises(self):
        with pytest.raises(RuntimeError):
            TrackedQueue().mark_done()

    def test_counters(self):
        q = TrackedQueue()
        q.put("a")
        q.put("b")
        q.get()
        assert q.total_put == 2
        assert q.total_got == 1


class TestTrackedQueuePills:
    def test_pills_bypass_accounting(self):
        q = TrackedQueue()
        q.put_pill(2)
        assert q.is_drained()
        assert q.get() is POISON_PILL
        assert q.get() is POISON_PILL
        assert q.total_got == 0

    def test_put_pill_via_put(self):
        q = TrackedQueue()
        q.put(POISON_PILL)
        assert q.is_drained()
        assert q.get() is POISON_PILL


class TestTrackedQueueWaiting:
    def test_wait_drained_immediate(self):
        assert TrackedQueue().wait_drained(timeout=0.01)

    def test_wait_drained_timeout(self):
        q = TrackedQueue()
        q.put("x")
        assert not q.wait_drained(timeout=0.02)

    def test_wait_drained_wakes_on_completion(self):
        q = TrackedQueue()
        q.put("x")
        woke = threading.Event()

        def waiter():
            if q.wait_drained(timeout=2.0):
                woke.set()

        t = threading.Thread(target=waiter)
        t.start()
        q.get()
        q.mark_done()
        t.join(timeout=2.0)
        assert woke.is_set()

    def test_get_blocking_timeout(self):
        q = TrackedQueue()
        with pytest.raises(Empty):
            q.get(timeout=0.01)
