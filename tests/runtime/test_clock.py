"""Tests for repro.runtime.clock."""

import time

import pytest

from repro.runtime.clock import Clock


class TestClockConstruction:
    def test_default_scale_is_one(self):
        assert Clock().time_scale == 1.0

    def test_rejects_zero_scale(self):
        with pytest.raises(ValueError):
            Clock(0)

    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            Clock(-0.5)

    def test_repr_mentions_scale(self):
        assert "0.25" in repr(Clock(0.25))


class TestClockConversions:
    def test_to_real_scales_down(self):
        assert Clock(0.01).to_real(2.0) == pytest.approx(0.02)

    def test_to_nominal_scales_up(self):
        assert Clock(0.01).to_nominal(0.02) == pytest.approx(2.0)

    def test_roundtrip(self):
        clock = Clock(0.37)
        assert clock.to_nominal(clock.to_real(5.5)) == pytest.approx(5.5)


class TestClockSleep:
    def test_sleep_scales(self):
        clock = Clock(0.01)
        start = time.monotonic()
        clock.sleep(1.0)  # 10 ms real
        elapsed = time.monotonic() - start
        assert 0.005 <= elapsed < 0.5

    def test_tiny_sleep_returns_fast(self):
        clock = Clock(1e-9)
        start = time.monotonic()
        for _ in range(100):
            clock.sleep(1.0)
        assert time.monotonic() - start < 0.2

    def test_zero_sleep_ok(self):
        Clock().sleep(0.0)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Clock().sleep(-1.0)

    def test_now_is_monotonic(self):
        clock = Clock()
        a = clock.now()
        b = clock.now()
        assert b >= a
