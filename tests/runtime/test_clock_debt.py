"""Tests for the clock's sleep-debt batching and overshoot compensation."""

import threading
import time

from repro.runtime.clock import Clock


class TestSleepDebt:
    def test_sub_resolution_sleeps_batched(self):
        """Many tiny sleeps must not each pay the OS sleep floor."""
        clock = Clock(0.0001)  # 1 nominal second -> 0.1 ms (sub-resolution)
        start = time.monotonic()
        for _ in range(50):
            clock.sleep(1.0)  # 50 x 0.1 ms = 5 ms total
        elapsed = time.monotonic() - start
        # Unbatched this would cost 50 sleep floors (~50+ ms).
        assert elapsed < 0.05

    def test_total_sleep_preserved(self):
        """The batched total must converge to the requested total."""
        clock = Clock(0.001)
        start = time.monotonic()
        for _ in range(40):
            clock.sleep(1.0)  # 40 x 1 ms = 40 ms nominal total
        elapsed = time.monotonic() - start
        assert 0.030 <= elapsed <= 0.090

    def test_overshoot_compensated(self):
        """Individual sleeps overshoot (OS timer slack); the carried debt
        must keep the cumulative total near nominal instead of inflating
        by the per-sleep overshoot."""
        clock = Clock(1.0)
        start = time.monotonic()
        for _ in range(20):
            clock.sleep(0.002)  # 20 x 2 ms = 40 ms nominal
        elapsed = time.monotonic() - start
        # Uncompensated this measures ~60+ ms on Linux.
        assert elapsed < 0.058

    def test_debt_is_per_thread(self):
        clock = Clock(0.0001)
        errors = []

        def worker():
            try:
                for _ in range(20):
                    clock.sleep(1.0)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_zero_sleep_no_debt(self):
        clock = Clock(1.0)
        clock.sleep(0.0)
        assert getattr(clock._debt, "value", 0.0) == 0.0
