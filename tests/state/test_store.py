"""Tests for the snapshot stores (repro.state.store)."""

import pytest

from repro.redisim import RedisClient, RedisServer
from repro.state import InMemoryStateStore, RedisSnapshotStore, Snapshot, StateStore


@pytest.fixture(params=["memory", "redis"])
def store(request):
    if request.param == "memory":
        return InMemoryStateStore()
    return RedisSnapshotStore(RedisClient(RedisServer()), namespace="test")


class TestStoreContract:
    def test_implements_protocol(self, store):
        assert isinstance(store, StateStore)

    def test_load_missing(self, store):
        assert store.load("pe.0") is None

    def test_save_load_round_trip(self, store):
        assert store.save("pe.0", 3, {"counts": {"a": 1}})
        snap = store.load("pe.0")
        assert snap == Snapshot(3, {"counts": {"a": 1}})

    def test_newer_seq_wins(self, store):
        store.save("pe.0", 3, {"v": "old"})
        assert store.save("pe.0", 9, {"v": "new"})
        assert store.load("pe.0").state == {"v": "new"}

    def test_stale_save_rejected(self, store):
        store.save("pe.0", 9, {"v": "new"})
        assert not store.save("pe.0", 3, {"v": "stale"})
        assert store.load("pe.0") == Snapshot(9, {"v": "new"})

    def test_delete(self, store):
        store.save("pe.0", 1, {})
        store.delete("pe.0")
        assert store.load("pe.0") is None

    def test_delete_missing_ok(self, store):
        store.delete("ghost")

    def test_instance_ids(self, store):
        store.save("b.1", 1, {})
        store.save("a.0", 1, {})
        assert store.instance_ids() == ["a.0", "b.1"]

    def test_snapshot_isolated_from_live_state(self, store):
        state = {"counts": {"a": 1}}
        store.save("pe.0", 1, state)
        state["counts"]["a"] = 42  # live instance keeps mutating
        assert store.load("pe.0").state == {"counts": {"a": 1}}

    def test_loaded_state_isolated_from_store(self, store):
        store.save("pe.0", 1, {"counts": {"a": 1}})
        first = store.load("pe.0").state
        first["counts"]["a"] = 42
        assert store.load("pe.0").state == {"counts": {"a": 1}}


class TestRedisSnapshotStore:
    def test_namespaced_keys(self):
        server = RedisServer()
        client = RedisClient(server)
        one = RedisSnapshotStore(client, namespace="run1")
        two = RedisSnapshotStore(client, namespace="run2")
        one.save("pe.0", 1, {"run": 1})
        two.save("pe.0", 5, {"run": 2})
        assert one.load("pe.0").state == {"run": 1}
        assert two.load("pe.0").state == {"run": 2}

    def test_for_client_shares_namespace(self):
        server = RedisServer()
        store = RedisSnapshotStore(RedisClient(server), namespace="run")
        other = store.for_client(RedisClient(server))
        store.save("pe.0", 2, {"x": 1})
        assert other.load("pe.0") == Snapshot(2, {"x": 1})
