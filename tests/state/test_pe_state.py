"""Tests for the PE state-capture API (get_state/set_state)."""

from repro.core.pe import GenericPE, IterativePE
from repro.workflows.sentiment.pes import RecoverableHappyState
from tests.conftest import StatefulCounter


class TestDefaultCapture:
    def test_accumulators_captured(self):
        pe = StatefulCounter(name="counter")
        pe.process({"input": ("a", 1)})
        pe.process({"input": ("a", 2)})
        state = pe.get_state()
        assert state["counts"] == {"a": 2}

    def test_structural_attrs_excluded(self):
        pe = StatefulCounter(name="counter")
        state = pe.get_state()
        for key in ("name", "inputconnections", "outputconnections", "ctx",
                    "instance_id", "numprocesses", "_output_buffer"):
            assert key not in state

    def test_round_trip_restores_behaviour(self):
        original = StatefulCounter(name="counter")
        for i in range(5):
            original.process({"input": ("a", i)})
        replacement = StatefulCounter(name="counter")
        replacement.set_state(original.get_state())
        replacement.process({"input": ("a", 99)})
        assert replacement.counts == {"a": 6}

    def test_restore_does_not_touch_wiring(self):
        original = StatefulCounter(name="counter")
        replacement = StatefulCounter(name="other")
        replacement.instance_index = 3
        replacement.set_state(original.get_state())
        assert replacement.name == "other"
        assert replacement.instance_index == 3

    def test_fresh_pe_state_is_plain_dict(self):
        class Plain(IterativePE):
            def __init__(self):
                super().__init__("plain")
                self.seen = 0

            def _process(self, data):
                self.seen += 1
                return data

        pe = Plain()
        pe._process(1)
        assert pe.get_state() == {"seen": 1}


class TestCustomHooks:
    def test_override_narrows_payload(self):
        pe = RecoverableHappyState(name="happy")
        pe.process({"input": ("TX", 4.0)})
        state = pe.get_state()
        assert set(state) == {"totals"}
        assert state["totals"] == {"TX": [4.0, 1.0]}

    def test_override_round_trip(self):
        original = RecoverableHappyState(name="happy")
        original.process({"input": ("TX", 4.0)})
        original.process({"input": ("TX", 2.0)})
        replacement = RecoverableHappyState(name="happy")
        replacement.set_state(original.get_state())
        assert replacement.snapshot() == original.snapshot()

    def test_custom_state_isolated(self):
        pe = RecoverableHappyState(name="happy")
        pe.process({"input": ("TX", 4.0)})
        captured = pe.get_state()
        pe.process({"input": ("TX", 2.0)})
        assert captured["totals"] == {"TX": [4.0, 1.0]}


class TestBaseClassDefaults:
    def test_generic_pe_empty_state(self):
        pe = GenericPE(name="bare")
        assert pe.get_state() == {}

    def test_set_state_accepts_empty(self):
        pe = GenericPE(name="bare")
        pe.set_state({})
