"""Planner end-to-end: plans, explain output, equivalence, engine gating.

The headline contract: ``optimize=True|"auto"`` never changes a
workflow's observable outputs -- only how they are computed.  Every
equivalence test below compares the optimized run against the untouched
graph on the sequential oracle and on parallel mappings.
"""

import pytest

from repro import Engine, run
from repro.core.exceptions import UnsupportedFeatureError
from repro.core.graph import WorkflowGraph
from repro.core.groupings import GroupBy
from repro.core.pe import IterativePE
from repro.mappings.base import Mapping, normalize_inputs
from repro.mappings.registry import Capabilities, register_mapping, unregister_mapping
from repro.planner import Planner
from repro.workflows import (
    build_internal_extinction_workflow,
    build_sentiment_workflow,
)
from tests.conftest import (
    AddOne,
    Collect,
    Double,
    Emit,
    FAST_SCALE,
    PARALLEL_MAPPINGS,
    StatefulCounter,
    linear_graph,
)


def _sorted_outputs(result):
    return {key: sorted(map(repr, values)) for key, values in result.outputs.items()}


class ReplicableEmit(IterativePE):
    replicable = True

    def _process(self, data):
        return data


class KeyedDouble(IterativePE):
    key_preserving = True

    def __init__(self, name=None, instances=2):
        super().__init__(name)
        self.numprocesses = instances

    def _process(self, data):
        key, value = data
        return (key, 2 * value)


def _grouped_graph():
    """Grouping-bearing workflow: GroupBy corridor into a pinned counter."""
    g = WorkflowGraph("grouped")
    src = Emit(name="src")
    kd = KeyedDouble(name="kd", instances=2)
    counter = StatefulCounter(name="counter", instances=2)
    g.connect(src, "output", kd, "input", grouping=GroupBy([0]))
    g.connect(kd, "output", counter, "input", grouping=GroupBy([0]))
    return g


def _fanout_graph():
    g = WorkflowGraph("fanout")
    src = Emit(name="src")
    mid = ReplicableEmit(name="mid")
    g.connect(src, "output", mid, "input")
    g.connect(mid, "output", Double(name="left"), "input")
    g.connect(mid, "output", AddOne(name="right"), "input")
    return g


class TestPlanner:
    def test_fusion_only_matches_classic_fuse_counters(self):
        g = linear_graph(Emit(name="src"), Double(name="d"), AddOne(name="a"))
        plan = Planner.fusion_only().plan(g, profile=False)
        assert plan.counters == {"fused_chains": 1, "fused_members": 3}
        assert plan.cost.source == "uniform"
        assert plan.cost.sampled == 0

    def test_default_planner_annotates(self):
        g = linear_graph(Emit(name="src"), Double(name="d"))
        plan = Planner.default().plan(g, provided={"src": [{"input": 1}]})
        assert plan.counters.get("planner_rules") == 1
        assert plan.cost.source == "profile"

    def test_plan_without_rewrites_is_untransformed(self):
        g = WorkflowGraph("join")
        a, b, sink = Emit(name="a"), Emit(name="b"), Collect(name="sink")
        g.connect(a, "output", sink, "input")
        g.connect(b, "output", sink, "input")
        plan = Planner.default().plan(g, profile=False)
        assert not plan.transformed
        assert plan.graph is g
        assert plan.counters == {}

    def test_rename_inputs_drops_pruned_roots(self):
        g = WorkflowGraph("doe")
        src, dead_src = Emit(name="src"), Emit(name="dead_src")
        g.connect(src, "output", Double(name="keep"), "input")
        g.connect(dead_src, "output", AddOne(name="dead"), "input")
        plan = Planner.default().plan(
            g, profile=False, wanted_outputs={"keep.output"}
        )
        provided = {"src": [{"input": 1}], "dead_src": [{"input": 2}]}
        renamed = plan.rename_inputs(provided)
        assert set(renamed) == {plan.member_to_fused.get("src", "src")}

    def test_suggestions_are_advisory(self):
        graph, inputs = build_sentiment_workflow(articles=20)
        provided = normalize_inputs(graph, inputs)
        plan = Planner.default().plan(graph, provided=provided)
        assert "numprocesses" in plan.suggestions
        # The plan records them but nothing in the graph enforces them.
        for pe in plan.graph.pes.values():
            assert pe.numprocesses != "numprocesses"

    def test_prior_result_overrides_profiled_costs(self):
        g = linear_graph(Emit(name="src"), Double(name="d"))
        prior = run(g, inputs=[1, 2, 3, 4], mapping="simple", fuse=True)
        g2 = linear_graph(Emit(name="src"), Double(name="d"))
        plan = Planner.default().plan(
            g2, provided={"src": [{"input": 1}]}, prior=prior
        )
        assert plan.cost.source.endswith("+metrics")


class TestExplainPlan:
    def test_sentiment_explain_contents(self):
        graph, inputs = build_sentiment_workflow(articles=50)
        provided = normalize_inputs(graph, inputs)
        plan = Planner.default().plan(graph, provided=provided)
        text = plan.explain()
        assert "plan for workflow 'sentiment_news'" in text
        assert "profile" in text
        assert "rules fired" in text
        assert "chain_fusion" in text
        assert "predicted costs" in text
        # Per-PE cost lines mention the fused operators by member names.
        assert "sentimentAFINN" in text
        assert "suggestions" in text and "advisory" in text

    def test_astro_explain_contents(self):
        graph, inputs = build_internal_extinction_workflow(scale=1)
        provided = normalize_inputs(graph, inputs)
        plan = Planner.default().plan(graph, provided=provided)
        text = plan.explain()
        assert "plan for workflow" in text
        assert "chain_fusion" in text
        assert "internalExtinction" in text
        assert "-> 1 PEs / 0 edges" in text

    def test_untransformed_plan_explains_no_rules(self):
        g = WorkflowGraph("join")
        a, b, sink = Emit(name="a"), Emit(name="b"), Collect(name="sink")
        g.connect(a, "output", sink, "input")
        g.connect(b, "output", sink, "input")
        text = Planner.default().plan(g, profile=False).explain()
        assert "rules fired" in text
        assert "chain_fusion" not in text


class TestOptimizedEquivalence:
    """optimize=True computes byte-identical outputs to the plain run."""

    @pytest.mark.parametrize("mapping", ("simple", "multi", "dyn_multi"))
    def test_astro_chain(self, mapping):
        graph, inputs = build_internal_extinction_workflow(scale=1)
        expected = _sorted_outputs(
            run(graph, inputs=inputs, mapping="simple", time_scale=FAST_SCALE)
        )
        graph, inputs = build_internal_extinction_workflow(scale=1)
        optimized = run(
            graph, inputs=inputs, processes=6, mapping=mapping,
            time_scale=FAST_SCALE, optimize=True,
        )
        assert _sorted_outputs(optimized) == expected
        assert optimized.counters["planner_rules"] >= 1

    @pytest.mark.parametrize("mapping", ("simple", "multi", "hybrid_redis"))
    def test_sentiment(self, mapping):
        def make():
            return build_sentiment_workflow(articles=30)

        graph, inputs = make()
        expected = _sorted_outputs(
            run(graph, inputs=inputs, mapping="simple", time_scale=FAST_SCALE)
        )
        graph, inputs = make()
        optimized = run(
            graph, inputs=inputs, processes=12, mapping=mapping,
            time_scale=FAST_SCALE, optimize=True,
        )
        assert _sorted_outputs(optimized) == expected

    @pytest.mark.parametrize("mapping", ("simple", "multi", "hybrid_redis"))
    def test_grouping_corridor(self, mapping):
        """Partial fusion keeps the GroupBy partitioning bit-for-bit."""
        items = [(f"k{i % 5}", i) for i in range(25)]
        expected = _sorted_outputs(
            run(_grouped_graph(), inputs=items, mapping="simple",
                time_scale=FAST_SCALE)
        )
        optimized = run(
            _grouped_graph(), inputs=items, processes=6, mapping=mapping,
            time_scale=FAST_SCALE, optimize=True,
        )
        assert _sorted_outputs(optimized) == expected

    @pytest.mark.parametrize("mapping", ("simple", "dyn_multi"))
    def test_fanout_replication(self, mapping):
        inputs = list(range(20))
        expected = _sorted_outputs(
            run(_fanout_graph(), inputs=inputs, mapping="simple",
                time_scale=FAST_SCALE)
        )
        optimized = run(
            _fanout_graph(), inputs=inputs, processes=4, mapping=mapping,
            time_scale=FAST_SCALE, optimize=True,
        )
        # Replication may or may not fire (cost-gated), but outputs are
        # identical either way -- that is the contract.
        assert _sorted_outputs(optimized) == expected

    @pytest.mark.parametrize("mapping", ("simple", *PARALLEL_MAPPINGS))
    def test_optimize_auto_identical_on_every_mapping(self, mapping):
        """The acceptance contract, on every built-in in-process mapping."""

        def factory():
            return linear_graph(
                Emit(name="src"), Double(name="d"), AddOne(name="a")
            )

        inputs = list(range(12))
        expected = _sorted_outputs(
            run(factory(), inputs=inputs, mapping="simple", time_scale=FAST_SCALE)
        )
        optimized = run(
            factory(), inputs=inputs, processes=4, mapping=mapping,
            time_scale=FAST_SCALE, optimize="auto",
        )
        assert _sorted_outputs(optimized) == expected
        assert optimized.counters["fused_chains"] == 1

    def test_dead_output_elimination_under_enactment(self):
        g = WorkflowGraph("doe")
        src = Emit(name="src")
        g.connect(src, "output", Double(name="keep"), "input")
        g.connect(src, "output", AddOne(name="dead"), "input")
        plain = run(g, inputs=[1, 2, 3], mapping="simple", time_scale=FAST_SCALE)

        g2 = WorkflowGraph("doe")
        src2 = Emit(name="src")
        g2.connect(src2, "output", Double(name="keep"), "input")
        g2.connect(src2, "output", AddOne(name="dead"), "input")
        optimized = run(
            g2, inputs=[1, 2, 3], mapping="simple", time_scale=FAST_SCALE,
            optimize=True, wanted_outputs=["keep.output"],
        )
        # Exactly the wanted key survives, with identical values.
        assert set(optimized.outputs) == {"keep.output"}
        assert sorted(optimized.output("keep")) == sorted(plain.output("keep"))

    def test_optimize_auto_matches_plain_on_streaming_submit(self):
        """The submit path plans without consuming the (lazy) input."""
        engine = Engine(mapping="multi", processes=6, time_scale=FAST_SCALE,
                        optimize="auto")
        job = engine.submit(linear_graph(Emit(name="src"), Double(name="d")))
        job.send("src", iter([1, 2, 3]))
        job.close_input()
        result = job.wait()
        engine.close()
        assert sorted(result.output("d")) == [2, 4, 6]
        assert result.counters["fused_chains"] == 1


class TestEngineGating:
    def _register_unfused_mapping(self):
        class NoFusionMapping(Mapping):
            name = "noopt_test"
            supports_stateful = True

            def _enact(self, state):
                from repro.mappings.simple import SimpleMapping

                return SimpleMapping()._enact(state)

        register_mapping(Capabilities(stateful=True, description="test"))(
            NoFusionMapping
        )
        return NoFusionMapping

    def test_optimize_true_rejected_without_capability(self):
        self._register_unfused_mapping()
        try:
            engine = Engine(mapping="noopt_test", optimize=True)
            with pytest.raises(UnsupportedFeatureError, match="planner"):
                engine.run(linear_graph(Emit(name="s"), Double(name="d")), inputs=[1])
        finally:
            unregister_mapping("noopt_test")

    def test_optimize_auto_skips_without_capability(self):
        self._register_unfused_mapping()
        try:
            engine = Engine(mapping="noopt_test", optimize="auto")
            result = engine.run(
                linear_graph(Emit(name="s"), Double(name="d")), inputs=[1, 2]
            )
            assert "planner_rules" not in result.counters
            assert sorted(result.output("d")) == [2, 4]
        finally:
            unregister_mapping("noopt_test")

    def test_config_emits_optimize_option(self):
        assert Engine().config.fusion_options() == {}
        assert Engine(optimize=True).config.fusion_options() == {"optimize": True}
        assert Engine(fuse="auto", optimize="auto").config.fusion_options() == {
            "fuse": "auto", "optimize": "auto"
        }

    def test_invalid_values_share_one_message_template(self):
        """Satellite of the refactor: the tri-state validation lives in one
        helper, so the two options' errors are identical modulo the name."""
        g = linear_graph(Emit(name="s"))
        with pytest.raises(TypeError) as fuse_err:
            Engine(fuse="bogus").run(g, inputs=[1])
        with pytest.raises(TypeError) as opt_err:
            Engine(optimize="bogus").run(g, inputs=[1])
        assert str(fuse_err.value) == "fuse must be True, False or 'auto', got 'bogus'"
        assert str(opt_err.value) == str(fuse_err.value).replace(
            "fuse", "optimize"
        )

    def test_config_layer_raises_same_message(self):
        with pytest.raises(TypeError, match="fuse must be True, False or 'auto'"):
            Engine(fuse="always").config.fusion_options()
        with pytest.raises(TypeError, match="optimize must be True, False or 'auto'"):
            Engine(optimize="always").config.fusion_options()


class TestResultReporting:
    def test_summary_includes_pe_times(self):
        g = linear_graph(Emit(name="src"), Double(name="d"))
        result = run(g, inputs=[1, 2, 3], mapping="simple", optimize=True)
        summary = result.summary()
        assert set(summary["pe_times"]) == {"src", "d"}

    def test_top_pes_ranks_by_busy_time(self):
        g = linear_graph(Emit(name="src"), Double(name="d"), AddOne(name="a"))
        result = run(g, inputs=list(range(5)), mapping="simple", optimize=True)
        top = result.top_pes(2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]
        assert {name for name, _ in top} <= {"src", "d", "a"}

    def test_top_pes_empty_without_attribution(self):
        g = linear_graph(Emit(name="src"), Double(name="d"))
        result = run(g, inputs=[1], mapping="simple")
        assert result.top_pes() == []
