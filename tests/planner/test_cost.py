"""Unit tests for the planner's cost model and profiling dry-run."""

from repro.core.pe import IterativePE
from repro.metrics.result import RunResult
from repro.planner.cost import DEFAULT_SAMPLE, CostModel, profile_graph
from repro.platforms.profiles import LAPTOP, SERVER
from tests.conftest import AddOne, Collect, Double, Emit, linear_graph


class DropHalf(IterativePE):
    """Emits every second input: selectivity 0.5 on 'output'."""

    def __init__(self, name=None):
        super().__init__(name)
        self._seen = 0

    def _process(self, data):
        self._seen += 1
        return data if self._seen % 2 == 0 else None


class Exploding(IterativePE):
    def _process(self, data):
        raise RuntimeError("boom")


class TestProfileGraph:
    def test_profiles_every_pe_with_positive_costs(self):
        g = linear_graph(Emit(name="src"), Double(name="d"), AddOne(name="a"))
        provided = {"src": [{"input": i} for i in range(10)]}
        model = profile_graph(g, provided=provided)
        assert model.source == "profile"
        assert model.sampled == DEFAULT_SAMPLE
        assert set(model.per_tuple) == {"src", "d", "a"}
        assert all(cost >= 0.0 for cost in model.per_tuple.values())

    def test_measures_selectivity(self):
        g = linear_graph(Emit(name="src"), DropHalf(name="half"), Collect(name="sink"))
        provided = {"src": [{"input": i} for i in range(8)]}
        model = profile_graph(g, provided=provided, sample=8)
        assert model.out_selectivity("src", "output") == 1.0
        assert model.out_selectivity("half", "output") == 0.5

    def test_dry_run_never_mutates_the_template_pes(self):
        half = DropHalf(name="half")
        g = linear_graph(Emit(name="src"), half)
        profile_graph(g, provided={"src": [{"input": i} for i in range(4)]})
        assert half._seen == 0

    def test_failure_degrades_to_uniform(self):
        g = linear_graph(Emit(name="src"), Exploding(name="bad"))
        model = profile_graph(g, provided={"src": [{"input": 1}]})
        assert model.source == "uniform"
        assert model.cost_of("bad") == 1.0

    def test_hop_cost_follows_platform(self):
        g = linear_graph(Emit(name="src"))
        assert profile_graph(g, platform=SERVER).hop_cost == SERVER.queue_latency
        assert profile_graph(g, platform=LAPTOP).hop_cost == LAPTOP.queue_latency


class TestCostModel:
    def test_uniform_prices_every_pe_at_one(self):
        g = linear_graph(Emit(name="src"), Double(name="d"))
        model = CostModel.uniform(g)
        assert model.source == "uniform"
        assert model.cost_of("src") == model.cost_of("d") == 1.0

    def test_replica_clone_falls_back_to_template_cost(self):
        model = CostModel(
            per_tuple={"mid": 0.25}, selectivity={("mid", "output"): 2.0}
        )
        assert model.cost_of("mid~sink") == 0.25
        assert model.out_selectivity("mid~sink", "output") == 2.0
        assert model.cost_of("unknown") == 1.0

    def test_from_result_uses_member_attribution(self):
        result = RunResult(
            mapping="simple", workflow="w", processes=1,
            runtime=1.0, process_time=1.0,
            counters={"member_tasks.a": 10, "member_tasks.b": 5},
            pe_times={"a": 2.0, "b": 1.0},
        )
        model = CostModel.from_result(result)
        assert model.source == "metrics"
        assert model.cost_of("a") == 0.2
        assert model.cost_of("b") == 0.2

    def test_from_result_without_attribution_is_none(self):
        result = RunResult(
            mapping="simple", workflow="w", processes=1,
            runtime=1.0, process_time=1.0,
        )
        assert CostModel.from_result(result) is None

    def test_estimated_invocations_propagate_selectivity(self):
        g = linear_graph(Emit(name="src"), DropHalf(name="half"), Collect(name="sink"))
        model = CostModel(
            per_tuple={"src": 1.0, "half": 1.0, "sink": 1.0},
            selectivity={("src", "output"): 1.0, ("half", "output"): 0.5},
        )
        counts = model.estimated_invocations(g, {"src": 100})
        assert counts["src"] == 100
        assert counts["half"] == 100
        assert counts["sink"] == 50

    def test_estimated_invocations_through_fused_node(self):
        from repro.planner.fusion import fuse_graph

        g = linear_graph(
            Emit(name="src"), DropHalf(name="half"), Double(name="d"),
            Collect(name="sink"),
        )
        model = CostModel(
            per_tuple={n: 1.0 for n in g.pes},
            selectivity={
                ("src", "output"): 1.0,
                ("half", "output"): 0.5,
                ("d", "output"): 1.0,
            },
        )
        plan = fuse_graph(g)
        root = plan.member_to_fused.get("src", "src")
        counts = model.estimated_invocations(plan.graph, {root: 40})
        # The whole chain collapsed into one node fed by the root count.
        assert counts[root] == 40
